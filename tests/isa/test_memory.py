"""Tests for the sparse memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.memory import SparseMemory


def test_default_zero():
    memory = SparseMemory()
    assert memory.load_word(0) == 0
    assert memory.load_byte(12345) == 0
    assert memory.load_halfword(0xFFFF0000) == 0


def test_word_roundtrip_aligned():
    memory = SparseMemory()
    memory.store_word(0x100, 0xDEADBEEF)
    assert memory.load_word(0x100) == 0xDEADBEEF


def test_little_endian_bytes():
    memory = SparseMemory()
    memory.store_word(0x100, 0x11223344)
    assert memory.load_byte(0x100) == 0x44
    assert memory.load_byte(0x101) == 0x33
    assert memory.load_byte(0x102) == 0x22
    assert memory.load_byte(0x103) == 0x11


def test_halfword_roundtrip():
    memory = SparseMemory()
    memory.store_halfword(0x200, 0xABCD)
    assert memory.load_halfword(0x200) == 0xABCD
    assert memory.load_byte(0x200) == 0xCD
    assert memory.load_byte(0x201) == 0xAB


def test_misaligned_word_access():
    memory = SparseMemory()
    memory.store_word(0x101, 0xCAFEBABE)
    assert memory.load_word(0x101) == 0xCAFEBABE
    # Verify the bytes straddle two backing words.
    assert memory.load_byte(0x101) == 0xBE
    assert memory.load_byte(0x104) == 0xCA


def test_misaligned_halfword_across_word_boundary():
    memory = SparseMemory()
    memory.store_halfword(0x103, 0x1234)
    assert memory.load_halfword(0x103) == 0x1234
    assert memory.load_byte(0x103) == 0x34
    assert memory.load_byte(0x104) == 0x12


def test_byte_store_preserves_neighbors():
    memory = SparseMemory()
    memory.store_word(0x100, 0xFFFFFFFF)
    memory.store_byte(0x101, 0x00)
    assert memory.load_word(0x100) == 0xFFFF00FF


def test_generic_load_store_widths():
    memory = SparseMemory()
    memory.store(0x40, 0xAB, 1)
    memory.store(0x44, 0xABCD, 2)
    memory.store(0x48, 0xDEADBEEF, 4)
    assert memory.load(0x40, 1) == 0xAB
    assert memory.load(0x44, 2) == 0xABCD
    assert memory.load(0x48, 4) == 0xDEADBEEF


def test_invalid_width_raises():
    memory = SparseMemory()
    with pytest.raises(ValueError):
        memory.load(0, 3)
    with pytest.raises(ValueError):
        memory.store(0, 0, 8)


def test_address_wraps_32_bits():
    memory = SparseMemory()
    memory.store_word(0x1_0000_0004, 7)
    assert memory.load_word(0x4) == 7


def test_copy_is_independent():
    memory = SparseMemory()
    memory.store_word(0x100, 1)
    clone = memory.copy()
    clone.store_word(0x100, 2)
    assert memory.load_word(0x100) == 1
    assert clone.load_word(0x100) == 2


def test_initial_image():
    memory = SparseMemory({0x100: 42, 0x104: 43})
    assert memory.load_word(0x100) == 42
    assert memory.load_word(0x104) == 43


def test_equality_ignores_zero_words():
    a = SparseMemory()
    b = SparseMemory()
    a.store_word(0x100, 0)  # explicit zero == untouched
    assert a == b
    a.store_word(0x104, 9)
    assert a != b


@given(
    st.integers(0, 0xFFFFFFFF),
    st.integers(0, 0xFFFFFFFF),
    st.sampled_from([1, 2, 4]),
)
def test_store_load_roundtrip_property(address, value, width):
    memory = SparseMemory()
    mask = (1 << (8 * width)) - 1
    memory.store(address, value, width)
    assert memory.load(address, width) == value & mask


@given(st.integers(0, 0xFFFFFFF0), st.integers(0, 0xFFFFFFFF))
def test_word_equals_four_bytes_property(address, value):
    memory = SparseMemory()
    memory.store_word(address, value)
    recombined = sum(memory.load_byte(address + i) << (8 * i) for i in range(4))
    assert recombined == value
