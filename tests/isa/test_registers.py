"""Tests for register naming and parsing."""

import pytest

from repro.isa.registers import ABI_NAMES, REGISTER_COUNT, parse_register, register_name


def test_register_count():
    assert REGISTER_COUNT == 32
    assert len(ABI_NAMES) == 32


def test_abi_names_unique():
    assert len(set(ABI_NAMES)) == 32


@pytest.mark.parametrize("index", range(32))
def test_roundtrip_abi(index):
    assert parse_register(register_name(index, abi=True)) == index


@pytest.mark.parametrize("index", range(32))
def test_roundtrip_numeric(index):
    assert parse_register(register_name(index, abi=False)) == index


def test_known_names():
    assert register_name(0) == "zero"
    assert register_name(1) == "ra"
    assert register_name(2) == "sp"
    assert register_name(10) == "a0"
    assert register_name(10, abi=False) == "x10"


def test_fp_alias():
    assert parse_register("fp") == 8
    assert parse_register("s0") == 8


def test_parse_case_insensitive_and_whitespace():
    assert parse_register(" A0 ") == 10
    assert parse_register("X31") == 31


def test_parse_unknown_raises():
    with pytest.raises(ValueError):
        parse_register("q7")


def test_register_name_out_of_range():
    with pytest.raises(ValueError):
        register_name(32)
    with pytest.raises(ValueError):
        register_name(-1)
