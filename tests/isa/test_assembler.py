"""Assembler and disassembler tests, including round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import AssemblerError, assemble, assemble_program
from repro.isa.disassembler import disassemble, disassemble_program
from repro.isa.instructions import Instruction, InstructionFormat, Opcode, OPCODE_INFO, SHIFT_IMMEDIATE_OPCODES
from repro.isa.program import Program


def test_basic_program():
    program = assemble("addi x1, x0, 5\nadd x2, x1, x1")
    assert len(program) == 2
    assert program[0] == Instruction(Opcode.ADDI, rd=1, rs1=0, imm=5)
    assert program[1] == Instruction(Opcode.ADD, rd=2, rs1=1, rs2=1)


def test_abi_names_accepted():
    program = assemble("add a0, a1, t0")
    assert program[0] == Instruction(Opcode.ADD, rd=10, rs1=11, rs2=5)


def test_memory_operands():
    program = assemble("lw a0, 8(sp)\nsw a0, -4(sp)")
    assert program[0] == Instruction(Opcode.LW, rd=10, rs1=2, imm=8)
    assert program[1] == Instruction(Opcode.SW, rs1=2, rs2=10, imm=-4)


def test_labels_forward_and_backward():
    program = assemble(
        "start: addi x1, x0, 1\n"
        "beq x1, x0, end\n"
        "jal x0, start\n"
        "end: addi x2, x0, 2"
    )
    assert program[1].imm == 8    # branch to end, two instructions ahead
    assert program[2].imm == -8   # jump back to start


def test_label_on_same_line():
    program = assemble("loop: addi x1, x1, 1\nbne x1, x2, loop")
    assert program[1].imm == -4


def test_comments_stripped():
    program = assemble(
        "# leading comment\n"
        "addi x1, x0, 1  # trailing\n"
        "add x2, x1, x1  ; alt comment\n"
        "sub x3, x2, x1  // c-style\n"
    )
    assert len(program) == 3


def test_pseudo_instructions():
    program = assemble("nop\nmv x1, x2\nli x3, -5\nj 8\nret\nnot x4, x5")
    assert program[0] == Instruction(Opcode.ADDI, rd=0, rs1=0, imm=0)
    assert program[1] == Instruction(Opcode.ADDI, rd=1, rs1=2, imm=0)
    assert program[2] == Instruction(Opcode.ADDI, rd=3, rs1=0, imm=-5)
    assert program[3] == Instruction(Opcode.JAL, rd=0, imm=8)
    assert program[4] == Instruction(Opcode.JALR, rd=0, rs1=1, imm=0)
    assert program[5] == Instruction(Opcode.XORI, rd=4, rs1=5, imm=-1)


def test_jalr_both_syntaxes():
    a = assemble("jalr x1, x2, 4")[0]
    b = assemble("jalr x1, 4(x2)")[0]
    assert a == b == Instruction(Opcode.JALR, rd=1, rs1=2, imm=4)


def test_numeric_literals():
    program = assemble("addi x1, x0, 0x10\naddi x2, x0, 0b101\naddi x3, x0, -0o17")
    assert program[0].imm == 16
    assert program[1].imm == 5
    assert program[2].imm == -15


def test_system_instructions():
    program = assemble("fence\necall\nebreak")
    assert [instruction.opcode for instruction in program] == [
        Opcode.FENCE, Opcode.ECALL, Opcode.EBREAK,
    ]


def test_base_address():
    program = assemble("addi x1, x0, 1", base_address=0x8000)
    assert program.base_address == 0x8000
    assert program.address_of(0) == 0x8000


def test_error_reports_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("addi x1, x0, 1\nbogus x1, x2")
    assert "line 2" in str(excinfo.value)


def test_error_wrong_operand_count():
    with pytest.raises(AssemblerError):
        assemble("add x1, x2")


def test_error_bad_register():
    with pytest.raises(AssemblerError):
        assemble("add x1, x2, q9")


def test_error_immediate_out_of_range():
    with pytest.raises(AssemblerError):
        assemble("addi x1, x0, 5000")


def test_error_duplicate_label():
    with pytest.raises(AssemblerError):
        assemble("a: nop\na: nop")


def test_error_li_range():
    with pytest.raises(AssemblerError):
        assemble("li x1, 4096")


def test_assemble_program_list():
    program = assemble_program(["addi x1, x0, 1", "add x2, x1, x1"])
    assert len(program) == 2


def _operand_strategy():
    def build(opcode, rd, rs1, rs2, raw):
        info = OPCODE_INFO[opcode]
        kwargs = {}
        if info.has_rd:
            kwargs["rd"] = rd
        if info.has_rs1:
            kwargs["rs1"] = rs1
        if info.has_rs2:
            kwargs["rs2"] = rs2
        if info.has_imm:
            kwargs["imm"] = _legal_imm(opcode, info.fmt, raw)
        return Instruction(opcode, **kwargs)

    return st.builds(
        build,
        st.sampled_from(sorted(Opcode, key=lambda op: op.value)),
        st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
        st.integers(0, (1 << 20) - 1),
    )


def _legal_imm(opcode, fmt, raw):
    if opcode in SHIFT_IMMEDIATE_OPCODES:
        return raw % 32
    if fmt in (InstructionFormat.I, InstructionFormat.S):
        return raw % 4096 - 2048
    if fmt is InstructionFormat.B:
        return (raw % 4096 - 2048) * 2
    if fmt is InstructionFormat.U:
        return raw % (1 << 20)
    if fmt is InstructionFormat.J:
        return (raw % (1 << 20) - (1 << 19)) * 2
    return 0


@given(st.lists(_operand_strategy(), min_size=1, max_size=8))
def test_disassemble_assemble_roundtrip(instructions):
    program = Program(instructions)
    text = "\n".join(disassemble_program(program))
    assert assemble(text) == program


@given(_operand_strategy())
def test_disassemble_numeric_names_roundtrip(instruction):
    text = disassemble(instruction, abi=False)
    assert assemble(text)[0] == instruction
