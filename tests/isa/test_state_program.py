"""Tests for ArchState and Program containers."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import DEFAULT_BASE_ADDRESS, Program
from repro.isa.state import ArchState


def test_state_defaults():
    state = ArchState()
    assert state.pc == 0
    assert state.regs == [0] * 32


def test_state_x0_hardwired():
    state = ArchState()
    state.write_register(0, 99)
    assert state.regs[0] == 0


def test_state_write_masks_32_bits():
    state = ArchState()
    state.write_register(1, 1 << 35 | 5)
    assert state.regs[1] == 5


def test_state_init_regs_masked_and_x0_cleared():
    regs = [7] * 32
    state = ArchState(regs=regs)
    assert state.regs[0] == 0
    assert state.regs[1] == 7


def test_state_init_wrong_reg_count():
    with pytest.raises(ValueError):
        ArchState(regs=[0] * 31)


def test_state_copy_independent():
    state = ArchState()
    state.write_register(5, 1)
    state.memory.store_word(0x100, 2)
    clone = state.copy()
    clone.write_register(5, 9)
    clone.memory.store_word(0x100, 8)
    assert state.regs[5] == 1
    assert state.memory.load_word(0x100) == 2


def test_state_equality():
    a = ArchState(pc=4)
    b = ArchState(pc=4)
    assert a == b
    b.write_register(3, 1)
    assert a != b


def test_program_fetch():
    nop = Instruction(Opcode.ADDI)
    program = Program([nop, nop, nop])
    base = DEFAULT_BASE_ADDRESS
    assert program.fetch(base) is nop
    assert program.fetch(base + 8) is nop
    assert program.fetch(base + 12) is None
    assert program.fetch(base - 4) is None
    assert program.fetch(base + 2) is None  # misaligned


def test_program_addresses():
    program = Program([Instruction(Opcode.ADDI)] * 3, base_address=0x2000)
    assert program.address_of(0) == 0x2000
    assert program.address_of(2) == 0x2008
    assert program.end_address == 0x200C
    with pytest.raises(IndexError):
        program.address_of(3)


def test_program_base_alignment():
    with pytest.raises(ValueError):
        Program([], base_address=2)


def test_program_replace():
    nop = Instruction(Opcode.ADDI)
    add = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    program = Program([nop, nop])
    replaced = program.replace(1, add)
    assert replaced[1] == add
    assert program[1] == nop  # original untouched
    assert replaced.base_address == program.base_address


def test_program_encoded_words():
    program = Program([Instruction(Opcode.ADDI, rd=1, rs1=2, imm=10)])
    assert program.encoded_words() == [0x00A10093]


def test_program_equality_and_hash():
    a = Program([Instruction(Opcode.ADDI)])
    b = Program([Instruction(Opcode.ADDI)])
    assert a == b
    assert hash(a) == hash(b)
    c = Program([Instruction(Opcode.ADDI)], base_address=0x2000)
    assert a != c


def test_program_iteration():
    instructions = [Instruction(Opcode.ADDI, imm=i) for i in range(5)]
    program = Program(instructions)
    assert list(program) == instructions
    assert len(program) == 5
