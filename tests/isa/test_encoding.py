"""Encode/decode tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    Opcode,
    OPCODE_INFO,
    SHIFT_IMMEDIATE_OPCODES,
)

# Known-good encodings cross-checked against the RISC-V spec / GNU as.
KNOWN_ENCODINGS = [
    (Instruction(Opcode.ADDI, rd=1, rs1=2, imm=10), 0x00A10093),
    (Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2), 0x002081B3),
    (Instruction(Opcode.SUB, rd=3, rs1=1, rs2=2), 0x402081B3),
    (Instruction(Opcode.LUI, rd=5, imm=0x12345), 0x123452B7),
    (Instruction(Opcode.AUIPC, rd=5, imm=0x12345), 0x12345297),
    (Instruction(Opcode.LW, rd=6, rs1=7, imm=-4), 0xFFC3A303),
    (Instruction(Opcode.SW, rs1=7, rs2=6, imm=-4), 0xFE63AE23),
    (Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=8), 0x00208463),
    (Instruction(Opcode.BNE, rs1=1, rs2=2, imm=-8), 0xFE209CE3),
    (Instruction(Opcode.JAL, rd=1, imm=2048), 0x001000EF),
    (Instruction(Opcode.JALR, rd=1, rs1=5, imm=0), 0x000280E7),
    (Instruction(Opcode.SLLI, rd=4, rs1=4, imm=3), 0x00321213),
    (Instruction(Opcode.SRAI, rd=4, rs1=4, imm=3), 0x40325213),
    (Instruction(Opcode.MUL, rd=10, rs1=11, rs2=12), 0x02C58533),
    (Instruction(Opcode.DIV, rd=10, rs1=11, rs2=12), 0x02C5C533),
    (Instruction(Opcode.REMU, rd=10, rs1=11, rs2=12), 0x02C5F533),
    (Instruction(Opcode.ECALL), 0x00000073),
    (Instruction(Opcode.EBREAK), 0x00100073),
]


@pytest.mark.parametrize("instruction,word", KNOWN_ENCODINGS)
def test_known_encodings(instruction, word):
    assert encode_instruction(instruction) == word


@pytest.mark.parametrize("instruction,word", KNOWN_ENCODINGS)
def test_known_decodings(instruction, word):
    assert decode_instruction(word) == instruction


def _instruction_strategy():
    def build(opcode, rd, rs1, rs2, imm_bits):
        info = OPCODE_INFO[opcode]
        kwargs = {}
        if info.has_rd:
            kwargs["rd"] = rd
        if info.has_rs1:
            kwargs["rs1"] = rs1
        if info.has_rs2:
            kwargs["rs2"] = rs2
        if info.has_imm:
            kwargs["imm"] = _immediate_from_bits(opcode, info, imm_bits)
        return Instruction(opcode, **kwargs)

    return st.builds(
        build,
        st.sampled_from(sorted(Opcode, key=lambda op: op.value)),
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(0, (1 << 21) - 1),
    )


def _immediate_from_bits(opcode, info, bits):
    if opcode in SHIFT_IMMEDIATE_OPCODES:
        return bits % 32
    fmt = info.fmt
    if fmt in (InstructionFormat.I, InstructionFormat.S):
        return bits % 4096 - 2048
    if fmt is InstructionFormat.B:
        return (bits % 4096 - 2048) * 2
    if fmt is InstructionFormat.U:
        return bits % (1 << 20)
    if fmt is InstructionFormat.J:
        return (bits % (1 << 20) - (1 << 19)) * 2
    return 0


@given(_instruction_strategy())
def test_roundtrip_property(instruction):
    word = encode_instruction(instruction)
    assert 0 <= word <= 0xFFFFFFFF
    decoded = decode_instruction(word)
    info = OPCODE_INFO[instruction.opcode]
    assert decoded.opcode is instruction.opcode
    if info.has_rd:
        assert decoded.rd == instruction.rd
    if info.has_rs1:
        assert decoded.rs1 == instruction.rs1
    if info.has_rs2:
        assert decoded.rs2 == instruction.rs2
    if info.has_imm:
        assert decoded.imm == instruction.imm


@given(st.integers(0, 0xFFFFFFFF))
def test_decode_never_crashes_unexpectedly(word):
    try:
        instruction = decode_instruction(word)
    except EncodingError:
        return
    # Whatever decodes must re-encode into a decodable word with the
    # same semantics (fields we do not model, e.g. fence sets, may
    # canonicalize, so we compare the decoded forms).
    assert decode_instruction(encode_instruction(instruction)) == instruction


def test_decode_rejects_out_of_range():
    with pytest.raises(EncodingError):
        decode_instruction(-1)
    with pytest.raises(EncodingError):
        decode_instruction(1 << 32)


def test_decode_rejects_unknown_major():
    with pytest.raises(EncodingError):
        decode_instruction(0x0000007F)  # unused major opcode


def test_decode_rejects_bad_funct():
    with pytest.raises(EncodingError):
        decode_instruction(0x00000063 | (0b010 << 12))  # branch funct3=010
    with pytest.raises(EncodingError):
        # OP with funct7 = 0b1111111
        decode_instruction((0b1111111 << 25) | 0x33)


def test_branch_offset_sign():
    word = encode_instruction(Instruction(Opcode.BGE, rs1=3, rs2=4, imm=-4096))
    assert decode_instruction(word).imm == -4096
    word = encode_instruction(Instruction(Opcode.BGE, rs1=3, rs2=4, imm=4094))
    assert decode_instruction(word).imm == 4094


def test_jal_offset_extremes():
    for imm in (-1048576, 1048574, 0, 2):
        word = encode_instruction(Instruction(Opcode.JAL, rd=0, imm=imm))
        assert decode_instruction(word).imm == imm
