"""Tests for the RV32C compressed-encoding layer."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.compressed import (
    CompressionError,
    code_size,
    compress,
    decompress,
    is_compressible,
)
from repro.isa.instructions import Instruction, Opcode

# (base instruction, canonical 16-bit encoding) pairs cross-checked
# against the RVC specification / GNU as.
KNOWN = [
    (Instruction(Opcode.ADDI, rd=0, rs1=0, imm=0), 0x0001),           # c.nop
    (Instruction(Opcode.ADDI, rd=8, rs1=8, imm=1), 0x0405),           # c.addi s0, 1
    (Instruction(Opcode.ADDI, rd=10, rs1=0, imm=-1), 0x557D),         # c.li a0, -1
    (Instruction(Opcode.ADDI, rd=2, rs1=2, imm=16), 0x0141),          # c.addi16sp 16
    (Instruction(Opcode.ADDI, rd=8, rs1=2, imm=4), 0x0040),           # c.addi4spn s0, 4
    (Instruction(Opcode.LUI, rd=10, imm=1), 0x6505),                  # c.lui a0, 1
    (Instruction(Opcode.SLLI, rd=10, rs1=10, imm=3), 0x050E),         # c.slli a0, 3
    (Instruction(Opcode.SRLI, rd=8, rs1=8, imm=3), 0x800D),           # c.srli s0, 3
    (Instruction(Opcode.SRAI, rd=8, rs1=8, imm=3), 0x840D),           # c.srai s0, 3
    (Instruction(Opcode.ANDI, rd=8, rs1=8, imm=3), 0x880D),           # c.andi s0, 3
    (Instruction(Opcode.ADD, rd=10, rs1=0, rs2=11), 0x852E),          # c.mv a0, a1
    (Instruction(Opcode.ADD, rd=10, rs1=10, rs2=11), 0x952E),         # c.add a0, a1
    (Instruction(Opcode.SUB, rd=8, rs1=8, rs2=9), 0x8C05),            # c.sub s0, s1
    (Instruction(Opcode.XOR, rd=8, rs1=8, rs2=9), 0x8C25),            # c.xor s0, s1
    (Instruction(Opcode.OR, rd=8, rs1=8, rs2=9), 0x8C45),             # c.or s0, s1
    (Instruction(Opcode.AND, rd=8, rs1=8, rs2=9), 0x8C65),            # c.and s0, s1
    (Instruction(Opcode.LW, rd=9, rs1=8, imm=4), 0x4044),             # c.lw s1, 4(s0)
    (Instruction(Opcode.SW, rs1=8, rs2=9, imm=4), 0xC044),            # c.sw s1, 4(s0)
    (Instruction(Opcode.LW, rd=10, rs1=2, imm=8), 0x4522),            # c.lwsp a0, 8
    (Instruction(Opcode.SW, rs1=2, rs2=10, imm=8), 0xC42A),           # c.swsp a0, 8
    (Instruction(Opcode.JAL, rd=0, imm=8), 0xA021),                   # c.j 8
    (Instruction(Opcode.JAL, rd=1, imm=8), 0x2021),                   # c.jal 8
    (Instruction(Opcode.JALR, rd=0, rs1=10, imm=0), 0x8502),          # c.jr a0
    (Instruction(Opcode.JALR, rd=1, rs1=10, imm=0), 0x9502),          # c.jalr a0
    (Instruction(Opcode.BEQ, rs1=8, rs2=0, imm=8), 0xC401),           # c.beqz s0, 8
    (Instruction(Opcode.BNE, rs1=8, rs2=0, imm=8), 0xE401),           # c.bnez s0, 8
    (Instruction(Opcode.EBREAK), 0x9002),                             # c.ebreak
]


@pytest.mark.parametrize("instruction,expected", KNOWN, ids=lambda v: hex(v) if isinstance(v, int) else str(v))
def test_known_compressions(instruction, expected):
    assert compress(instruction) == expected


@pytest.mark.parametrize("instruction,word", KNOWN, ids=lambda v: hex(v) if isinstance(v, int) else str(v))
def test_known_decompressions(instruction, word):
    assert decompress(word) == instruction


NOT_COMPRESSIBLE = [
    Instruction(Opcode.ADDI, rd=1, rs1=2, imm=1),      # rd != rs1, rs1 != 0/2
    Instruction(Opcode.ADDI, rd=8, rs1=8, imm=100),    # imm too wide
    Instruction(Opcode.ADD, rd=8, rs1=9, rs2=10),      # rd != rs1
    Instruction(Opcode.SUB, rd=1, rs1=1, rs2=2),       # non-prime registers
    Instruction(Opcode.LW, rd=1, rs1=3, imm=4),        # non-prime base
    Instruction(Opcode.LW, rd=8, rs1=8, imm=2),        # misscaled offset
    Instruction(Opcode.SW, rs1=8, rs2=9, imm=128),     # offset too wide
    Instruction(Opcode.MUL, rd=8, rs1=8, rs2=9),       # no compressed form
    Instruction(Opcode.DIV, rd=8, rs1=8, rs2=9),
    Instruction(Opcode.JAL, rd=5, imm=8),              # link register not ra/zero
    Instruction(Opcode.JALR, rd=1, rs1=10, imm=4),     # nonzero offset
    Instruction(Opcode.BEQ, rs1=8, rs2=9, imm=8),      # rs2 != x0
    Instruction(Opcode.BLT, rs1=8, rs2=0, imm=8),      # no compressed BLT
    Instruction(Opcode.AUIPC, rd=1, imm=1),
    Instruction(Opcode.LUI, rd=2, imm=1),              # rd == sp reserved
    Instruction(Opcode.SLLI, rd=8, rs1=8, imm=0),      # shamt 0 reserved
    Instruction(Opcode.LB, rd=8, rs1=8, imm=0),        # no compressed LB
]


@pytest.mark.parametrize("instruction", NOT_COMPRESSIBLE, ids=str)
def test_not_compressible(instruction):
    assert compress(instruction) is None
    assert not is_compressible(instruction)
    assert code_size(instruction) == 4


def test_code_size_compressed():
    assert code_size(Instruction(Opcode.ADD, rd=10, rs1=10, rs2=11)) == 2


def test_decompress_rejects_uncompressed():
    with pytest.raises(CompressionError):
        decompress(0x0003)  # quadrant 11 = 32-bit instruction
    with pytest.raises(CompressionError):
        decompress(0x10000)
    with pytest.raises(CompressionError):
        decompress(0x0000)  # defined illegal


@given(st.integers(0, 0xFFFF))
def test_decompress_never_crashes_unexpectedly(word):
    try:
        instruction = decompress(word)
    except CompressionError:
        return
    # Whatever decompresses must compress back to the same word or at
    # least be compressible to *a* canonical encoding that decompresses
    # to the same instruction (some encodings are non-canonical).
    recompressed = compress(instruction)
    if recompressed is not None:
        assert decompress(recompressed) == instruction


@pytest.mark.parametrize("instruction,_word", KNOWN, ids=lambda v: str(v))
def test_roundtrip_known(instruction, _word):
    word = compress(instruction)
    assert word is not None
    assert decompress(word) == instruction


def test_compressibility_depends_on_operands():
    # The same operation is compressible or not depending on encoding
    # fields — exactly the property that creates IL leakage through a
    # compressed fetch unit.
    small = Instruction(Opcode.ADDI, rd=8, rs1=8, imm=1)
    large = Instruction(Opcode.ADDI, rd=8, rs1=8, imm=1000)
    assert is_compressible(small)
    assert not is_compressible(large)
