"""Semantic tests for the ISA executor."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.executor import (
    ExecutionLimitExceeded,
    IsaExecutor,
    execute_program,
)
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.state import ArchState


def run_asm(source, regs=None, memory_words=None):
    """Assemble and run, returning (records, final state)."""
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    if regs:
        for index, value in regs.items():
            state.write_register(index, value)
    if memory_words:
        for address, value in memory_words.items():
            state.memory.store_word(address, value)
    records = execute_program(program, state)
    return records, state


def test_addi_and_add():
    records, state = run_asm("addi x1, x0, 5\naddi x2, x0, 7\nadd x3, x1, x2")
    assert state.regs[3] == 12
    assert len(records) == 3
    assert records[2].rd_value == 12


def test_x0_stays_zero():
    _records, state = run_asm("addi x0, x0, 55")
    assert state.regs[0] == 0


def test_sub_wraps():
    _records, state = run_asm("addi x1, x0, 0\naddi x2, x0, 1\nsub x3, x1, x2")
    assert state.regs[3] == 0xFFFFFFFF


def test_logic_ops():
    _records, state = run_asm(
        "addi x1, x0, 0b1100\naddi x2, x0, 0b1010\n"
        "and x3, x1, x2\nor x4, x1, x2\nxor x5, x1, x2"
    )
    assert state.regs[3] == 0b1000
    assert state.regs[4] == 0b1110
    assert state.regs[5] == 0b0110


def test_immediate_logic_sign_extension():
    _records, state = run_asm("andi x1, x0, -1\nori x2, x0, -1\nxori x3, x0, -1")
    assert state.regs[1] == 0
    assert state.regs[2] == 0xFFFFFFFF
    assert state.regs[3] == 0xFFFFFFFF


def test_slt_family():
    _records, state = run_asm(
        "addi x1, x0, -1\naddi x2, x0, 1\n"
        "slt x3, x1, x2\nsltu x4, x1, x2\nslti x5, x1, 0\nsltiu x6, x1, 0"
    )
    assert state.regs[3] == 1  # -1 < 1 signed
    assert state.regs[4] == 0  # 0xFFFFFFFF > 1 unsigned
    assert state.regs[5] == 1
    assert state.regs[6] == 0


def test_shifts():
    _records, state = run_asm(
        "addi x1, x0, -8\n"
        "slli x2, x1, 1\nsrli x3, x1, 1\nsrai x4, x1, 1\n"
        "addi x5, x0, 33\nsll x6, x1, x5"  # shift amount masked to 1
    )
    assert state.regs[2] == 0xFFFFFFF0
    assert state.regs[3] == 0x7FFFFFFC
    assert state.regs[4] == 0xFFFFFFFC
    assert state.regs[6] == 0xFFFFFFF0


def test_lui_auipc():
    records, state = run_asm("lui x1, 0x12345\nauipc x2, 0x1")
    assert state.regs[1] == 0x12345000
    assert state.regs[2] == records[1].pc + 0x1000


def test_mul_family():
    _records, state = run_asm(
        "addi x1, x0, -3\naddi x2, x0, 5\n"
        "mul x3, x1, x2\nmulh x4, x1, x2\nmulhu x5, x1, x2\nmulhsu x6, x1, x2"
    )
    assert state.regs[3] == (-15) & 0xFFFFFFFF
    assert state.regs[4] == 0xFFFFFFFF          # high bits of -15
    assert state.regs[5] == ((0xFFFFFFFD * 5) >> 32)
    assert state.regs[6] == ((-3 * 5) >> 32) & 0xFFFFFFFF


def test_div_semantics():
    _records, state = run_asm(
        "addi x1, x0, -7\naddi x2, x0, 2\n"
        "div x3, x1, x2\nrem x4, x1, x2\ndivu x5, x1, x2\nremu x6, x1, x2"
    )
    assert state.regs[3] == (-3) & 0xFFFFFFFF   # trunc toward zero
    assert state.regs[4] == (-1) & 0xFFFFFFFF
    assert state.regs[5] == 0xFFFFFFF9 // 2
    assert state.regs[6] == 0xFFFFFFF9 % 2


def test_div_by_zero():
    _records, state = run_asm(
        "addi x1, x0, 42\ndiv x2, x1, x0\nrem x3, x1, x0\n"
        "divu x4, x1, x0\nremu x5, x1, x0"
    )
    assert state.regs[2] == 0xFFFFFFFF
    assert state.regs[3] == 42
    assert state.regs[4] == 0xFFFFFFFF
    assert state.regs[5] == 42


def test_div_overflow():
    records, state = run_asm(
        "lui x1, 0x80000\naddi x2, x0, -1\ndiv x3, x1, x2\nrem x4, x1, x2"
    )
    assert state.regs[1] == 0x80000000
    assert state.regs[3] == 0x80000000
    assert state.regs[4] == 0


def test_loads_and_stores():
    records, state = run_asm(
        "addi x1, x0, 0x100\n"
        "addi x2, x0, -1\n"
        "sw x2, 0(x1)\n"
        "lw x3, 0(x1)\n"
        "lh x4, 0(x1)\nlhu x5, 0(x1)\nlb x6, 0(x1)\nlbu x7, 0(x1)"
    )
    assert state.regs[3] == 0xFFFFFFFF
    assert state.regs[4] == 0xFFFFFFFF  # sign-extended
    assert state.regs[5] == 0x0000FFFF
    assert state.regs[6] == 0xFFFFFFFF
    assert state.regs[7] == 0x000000FF
    store_record = records[2]
    assert store_record.mem_write_addr == 0x100
    assert store_record.mem_write_data == 0xFFFFFFFF
    load_record = records[3]
    assert load_record.mem_read_addr == 0x100
    assert load_record.mem_read_data == 0xFFFFFFFF


def test_store_byte_width_data():
    records, _state = run_asm(
        "addi x1, x0, 0x100\naddi x2, x0, 0x7d\nsb x2, 1(x1)"
    )
    record = records[-1]
    assert record.mem_write_addr == 0x101
    assert record.mem_write_data == 0x7D


def test_branch_taken_and_not_taken():
    records, state = run_asm(
        "addi x1, x0, 1\n"
        "beq x1, x0, skip\n"   # not taken
        "addi x2, x0, 2\n"
        "bne x1, x0, skip\n"   # taken
        "addi x3, x0, 3\n"     # skipped
        "skip: addi x4, x0, 4"
    )
    assert state.regs[2] == 2
    assert state.regs[3] == 0
    assert state.regs[4] == 4
    assert records[1].branch_taken is False
    assert records[3].branch_taken is True
    assert records[3].next_pc == records[3].pc + 8


def test_branch_to_next_instruction():
    # The paper's example: BEQ with offset 4 jumps to the next
    # instruction whether taken or not; architectural path is identical.
    records, state = run_asm(
        "addi x1, x0, 1\nbeq x1, x1, 4\naddi x2, x0, 2"
    )
    assert records[1].branch_taken is True
    assert records[1].next_pc == records[1].pc + 4
    assert state.regs[2] == 2


def test_unsigned_branches():
    records, _state = run_asm(
        "addi x1, x0, -1\naddi x2, x0, 1\nbltu x2, x1, 4\nbgeu x1, x2, 4"
    )
    assert records[2].branch_taken is True
    assert records[3].branch_taken is True


def test_jal_links_and_jumps():
    records, state = run_asm(
        "jal x1, target\naddi x2, x0, 9\ntarget: addi x3, x0, 3"
    )
    assert state.regs[2] == 0
    assert state.regs[3] == 3
    assert state.regs[1] == records[0].pc + 4


def test_jalr_clears_low_bit():
    records, state = run_asm(
        "addi x1, x0, 0x100\njalr x2, x1, 13"
    )
    assert records[1].next_pc == (0x100 + 13) & ~1
    assert state.regs[2] == records[1].pc + 4


def test_ecall_halts():
    records, state = run_asm("addi x1, x0, 1\necall\naddi x2, x0, 2")
    assert len(records) == 2
    assert state.regs[2] == 0


def test_fence_is_noop():
    records, state = run_asm("fence\naddi x1, x0, 1")
    assert state.regs[1] == 1
    assert len(records) == 2


def test_fall_through_ends_execution():
    records, _state = run_asm("addi x1, x0, 1")
    assert len(records) == 1


def test_execution_limit():
    # Infinite loop: jal x0, 0 jumps to itself.
    program = Program([Instruction(Opcode.JAL, rd=0, imm=0)])
    with pytest.raises(ExecutionLimitExceeded):
        execute_program(program, max_steps=100)


def test_dependency_annotations():
    records, _state = run_asm(
        "addi x1, x0, 1\n"      # 0: writes x1
        "addi x2, x0, 2\n"      # 1: writes x2
        "add x3, x1, x2\n"      # 2: raw rs1 dist 2, raw rs2 dist 1
        "add x3, x3, x3\n"      # 3: raw both dist 1, waw dist 1
        "add x4, x1, x1"        # 4: raw rs1 dist 4
    )
    assert records[2].raw_rs1_dist == 2
    assert records[2].raw_rs2_dist == 1
    assert records[3].raw_rs1_dist == 1
    assert records[3].raw_rs2_dist == 1
    assert records[3].waw_dist == 1
    assert records[4].raw_rs1_dist == 4
    assert records[4].raw_rs2_dist == 4


def test_dependency_window_cutoff():
    records, _state = run_asm(
        "addi x1, x0, 1\n"
        "nop\nnop\nnop\nnop\n"
        "add x2, x1, x1"
    )
    # distance 5 exceeds the default window of 4
    assert records[5].raw_rs1_dist is None


def test_war_dependency():
    records, _state = run_asm(
        "add x3, x1, x2\n"   # reads x1
        "addi x1, x0, 7"     # writes x1 -> WAR distance 1
    )
    assert records[1].war_rd_dist == 1


def test_x0_dependencies_ignored():
    records, _state = run_asm("addi x0, x0, 1\nadd x1, x0, x0")
    assert records[1].raw_rs1_dist is None
    assert records[1].raw_rs2_dist is None


def test_custom_dependency_window():
    program = assemble("addi x1, x0, 1\nnop\nadd x2, x1, x1")
    state = ArchState(pc=program.base_address)
    records = IsaExecutor(dependency_window=1).run(program, state, 100)
    assert records[2].raw_rs1_dist is None


def test_memory_address_property():
    records, _state = run_asm(
        "addi x1, x0, 0x200\nsw x1, 4(x1)\nlw x2, 4(x1)"
    )
    assert records[1].memory_address == 0x204
    assert records[2].memory_address == 0x204
    assert records[0].memory_address is None
