"""Tests for the instruction model and opcode metadata."""

import pytest

from repro.isa.instructions import (
    Instruction,
    InstructionCategory,
    InstructionFormat,
    MEMORY_ACCESS_WIDTH,
    Opcode,
    OPCODE_INFO,
    SHIFT_IMMEDIATE_OPCODES,
)


def test_every_opcode_has_info():
    assert set(OPCODE_INFO) == set(Opcode)


def test_info_opcode_field_consistent():
    for opcode, info in OPCODE_INFO.items():
        assert info.opcode is opcode


def test_category_partition():
    categories = {
        InstructionCategory.ARITHMETIC: 21,   # LUI, AUIPC, 9 OP-IMM, 10 OP
        InstructionCategory.MULTIPLICATION: 4,
        InstructionCategory.DIVISION: 4,
        InstructionCategory.LOAD: 5,
        InstructionCategory.STORE: 3,
        InstructionCategory.BRANCH: 6,
        InstructionCategory.JUMP: 2,
        InstructionCategory.SYSTEM: 3,
    }
    for category, expected in categories.items():
        actual = sum(1 for info in OPCODE_INFO.values() if info.category is category)
        assert actual == expected, category


def test_r_type_operand_flags():
    info = OPCODE_INFO[Opcode.ADD]
    assert info.has_rd and info.has_rs1 and info.has_rs2 and not info.has_imm
    assert info.fmt is InstructionFormat.R


def test_store_has_no_rd():
    for opcode in (Opcode.SB, Opcode.SH, Opcode.SW):
        info = OPCODE_INFO[opcode]
        assert not info.has_rd
        assert info.has_rs1 and info.has_rs2 and info.has_imm
        assert info.is_memory


def test_branch_flags():
    info = OPCODE_INFO[Opcode.BEQ]
    assert info.is_control and not info.has_rd


def test_memory_widths():
    assert MEMORY_ACCESS_WIDTH[Opcode.LW] == 4
    assert MEMORY_ACCESS_WIDTH[Opcode.SH] == 2
    assert Instruction(Opcode.LB, rd=1, rs1=2, imm=0).memory_width == 1
    assert Instruction(Opcode.ADD).memory_width is None


def test_register_range_validation():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, rd=32)
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, rs1=-1)


def test_immediate_range_i_type():
    Instruction(Opcode.ADDI, rd=1, rs1=1, imm=2047)
    Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-2048)
    with pytest.raises(ValueError):
        Instruction(Opcode.ADDI, rd=1, rs1=1, imm=2048)
    with pytest.raises(ValueError):
        Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-2049)


def test_shift_immediate_range():
    for opcode in SHIFT_IMMEDIATE_OPCODES:
        Instruction(opcode, rd=1, rs1=1, imm=31)
        with pytest.raises(ValueError):
            Instruction(opcode, rd=1, rs1=1, imm=32)
        with pytest.raises(ValueError):
            Instruction(opcode, rd=1, rs1=1, imm=-1)


def test_branch_offset_must_be_even():
    Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=4)
    with pytest.raises(ValueError):
        Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=3)


def test_jump_offset_range():
    Instruction(Opcode.JAL, rd=1, imm=-1048576)
    Instruction(Opcode.JAL, rd=1, imm=1048574)
    with pytest.raises(ValueError):
        Instruction(Opcode.JAL, rd=1, imm=1048575)


def test_u_type_immediate_unsigned():
    Instruction(Opcode.LUI, rd=1, imm=0xFFFFF)
    with pytest.raises(ValueError):
        Instruction(Opcode.LUI, rd=1, imm=-1)


def test_reads_and_writes():
    add = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
    assert add.reads(1) and add.reads(2) and not add.reads(3)
    assert add.writes(3) and not add.writes(1)
    assert add.written_register == 3


def test_x0_never_read_or_written():
    add = Instruction(Opcode.ADD, rd=0, rs1=0, rs2=0)
    assert not add.reads(0)
    assert not add.writes(0)
    assert add.written_register is None


def test_store_written_register_none():
    store = Instruction(Opcode.SW, rs1=1, rs2=2, imm=0)
    assert store.written_register is None
    assert store.reads(1) and store.reads(2)


def test_instruction_is_hashable_and_frozen():
    a = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    b = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(AttributeError):
        a.rd = 5


def test_str_uses_disassembler():
    assert str(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)) == "add ra, sp, gp"
