"""Integration tests for the experiment drivers (small budgets).

These run the full pipeline (generate -> simulate -> evaluate ->
synthesize -> report) at reduced scale and assert the *shape*
properties the paper reports, not absolute values.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.contract_tables import run_table1, run_table2
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.runner import build_core, evaluate_dataset, shared_template
from repro.experiments.table3 import run_table3


@pytest.fixture()
def config(tmp_path):
    return ExperimentConfig(
        scale=1.0,
        synthesis_test_cases=700,
        evaluation_test_cases=1200,
        cva6_synthesis_test_cases=400,
        results_dir=str(tmp_path / "results"),
    )


class TestRunner:
    def test_build_core(self):
        assert build_core("ibex").name == "ibex"
        assert build_core("cva6").name == "cva6"
        with pytest.raises(ValueError):
            build_core("rocket")

    def test_evaluate_dataset_caches(self, tmp_path):
        template = shared_template()
        cache = str(tmp_path)
        first, evaluator = evaluate_dataset("ibex", template, 30, 7, cache)
        assert evaluator is not None
        second, evaluator_2 = evaluate_dataset("ibex", template, 30, 7, cache)
        assert evaluator_2 is None  # cache hit
        assert [r.test_id for r in first] == [r.test_id for r in second]
        assert len(os.listdir(cache)) == 1

    def test_no_cache_dir(self):
        template = shared_template()
        dataset, evaluator = evaluate_dataset("ibex", template, 10, 7, None)
        assert len(dataset) == 10
        assert evaluator is not None

    def test_executor_config_ships_only_the_registered_template(self, tmp_path):
        """Regression: a bespoke template instance that *reuses* a
        registered name (build_riscv_template(max_distance=8) keeps
        'riscv-rv32im') must not be silently swapped for the registry
        default in executor workers — only an instance equal to the
        registered one may travel by name."""
        from repro.contracts.riscv_template import build_riscv_template
        from repro.experiments.runner import experiment_pipeline

        config = ExperimentConfig(
            results_dir=str(tmp_path), executor="serial"
        )
        shipped = experiment_pipeline(
            config, "ibex", shared_template(), 10, 1
        )
        assert shipped._executor == "serial"
        assert shipped._template == "riscv-rv32im"

        bespoke = experiment_pipeline(
            config, "ibex", build_riscv_template(max_distance=8), 10, 1
        )
        assert bespoke._executor is None  # stays on the in-process path
        assert not isinstance(bespoke._template, str)

    def test_cache_distinguishes_attackers(self, tmp_path):
        """Regression: the cache key must include the attacker, so a
        dataset evaluated under one attacker is never served for
        another."""
        template = shared_template()
        cache = str(tmp_path)
        timing, _ = evaluate_dataset(
            "ibex", template, 20, 7, cache, attacker="retirement-timing"
        )
        total, evaluator = evaluate_dataset(
            "ibex", template, 20, 7, cache, attacker="total-time"
        )
        assert evaluator is not None  # fresh evaluation, not a stale hit
        assert len(os.listdir(cache)) == 2
        assert timing.attacker_name == "retirement-timing"
        assert total.attacker_name == "total-time"


class TestConfig:
    def test_scale_multiplies_counts(self):
        small = ExperimentConfig(scale=0.5, synthesis_test_cases=1000,
                                 evaluation_test_cases=2000)
        assert small.synthesis_test_cases == 500
        assert small.evaluation_test_cases == 1000

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)

    def test_prefix_schedules(self):
        config = ExperimentConfig(scale=1.0, synthesis_test_cases=640)
        prefixes = config.synthesis_prefixes()
        assert prefixes[-1] == 640
        assert all(a < b for a, b in zip(prefixes, prefixes[1:]))
        log_prefixes = config.sensitivity_prefixes()
        assert log_prefixes[0] == 1
        assert log_prefixes[-1] == 640


@pytest.mark.slow
class TestFig2:
    def test_shapes(self, config):
        result = run_fig2(config)
        assert len(result.series) == 4  # base + AL + BL + DL
        assert result.series[0].label == "IL+RL+ML"
        assert result.series[-1].label == "IL+RL+ML+AL+BL+DL"
        # Every curve is defined at the final budget.
        finals = [series.points[-1][1] for series in result.series]
        assert all(value is not None for value in finals)
        # Richer templates do not hurt precision at the full budget.
        assert finals[-1] >= finals[0]
        # Output files exist.
        assert os.path.exists(os.path.join(config.results_dir, "fig2_precision.csv"))
        assert "Fig. 2" in result.render()


@pytest.mark.slow
class TestFig3:
    def test_sensitivity_rises_and_saturates(self, config):
        result = run_fig3(config)
        values = [y for _x, y in result.series.points if y is not None]
        assert values, "sensitivity curve empty"
        # At this reduced budget the curve should already be well into
        # its saturation phase (the paper reaches 99.93% at 2M cases).
        assert result.final_sensitivity >= 0.7
        # The curve rises: early sensitivity far below the final value.
        assert values[0] <= 0.5 * result.final_sensitivity
        assert max(values) == pytest.approx(result.final_sensitivity, abs=0.1)
        assert os.path.exists(
            os.path.join(config.results_dir, "fig3_sensitivity.csv")
        )


@pytest.mark.slow
class TestContractTables:
    def test_table1_ibex_headlines(self, config):
        from repro.contracts.atoms import LeakageFamily
        from repro.isa.instructions import InstructionCategory
        from repro.reporting.tables import CellMarker

        result = run_table1(config)
        grid = result.grid
        # Headline finding 1: loads leak alignment, stores do not.
        assert grid[(InstructionCategory.LOAD, LeakageFamily.AL)] in (
            CellMarker.FULL, CellMarker.PARTIAL,
        )
        assert grid[(InstructionCategory.STORE, LeakageFamily.AL)] is CellMarker.NONE
        # Headline finding 2: branch outcome leaks.
        assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] in (
            CellMarker.FULL, CellMarker.PARTIAL,
        )
        # No memory-value leakage on Ibex.
        assert grid[(InstructionCategory.LOAD, LeakageFamily.ML)] is CellMarker.NONE
        assert result.agreement_ratio >= 0.6
        assert result.atom_count > 5
        assert os.path.exists(os.path.join(config.results_dir, "table1_ibex.txt"))

    def test_table2_cva6_headlines(self, config):
        from repro.contracts.atoms import LeakageFamily
        from repro.isa.instructions import InstructionCategory
        from repro.reporting.tables import CellMarker

        result = run_table2(config)
        grid = result.grid
        # CVA6's memory interface hides accesses: ML and AL all empty.
        for family in (LeakageFamily.ML, LeakageFamily.AL):
            for category in (InstructionCategory.LOAD, InstructionCategory.STORE):
                assert grid[(category, family)] is CellMarker.NONE, (category, family)
        # Branch outcome leaks through the predictor.
        assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] in (
            CellMarker.FULL, CellMarker.PARTIAL,
        )
        assert result.agreement_ratio >= 0.5


@pytest.mark.slow
class TestTable3:
    def test_timing_shape(self, config):
        result = run_table3(config, test_cases=100)
        ibex = result.column("ibex")
        cva6 = result.column("cva6")
        assert ibex.test_cases == cva6.test_cases == 100
        for timing in (ibex, cva6):
            assert timing.simulation_per_test_case > 0
            assert timing.extraction_per_test_case > 0
            assert timing.overall_seconds >= timing.contract_computation_seconds
        # The paper's shape: CVA6 simulation costs more than Ibex.
        assert cva6.simulation_per_test_case > ibex.simulation_per_test_case
        text = result.render()
        assert "Table III" in text and "ibex" in text and "cva6" in text
