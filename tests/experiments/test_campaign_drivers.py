"""The experiment drivers rewired through the campaign runner must
reproduce the pre-campaign driver outputs exactly (the acceptance
criterion for the campaign subsystem)."""

import os

import pytest

from repro.contracts.riscv_template import cumulative_family_sets
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import fig2_campaign, run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.experiments.table3 import run_table3
from repro.synthesis.metrics import evaluate_contract

pytestmark = pytest.mark.campaign


def _legacy_fig2_points(config, core_name="ibex"):
    """The pre-campaign Figure 2 computation, replicated verbatim:
    evaluate one full synthesis set, synthesize from its prefixes."""
    template = shared_template()
    synthesis_pipeline = experiment_pipeline(
        config, core_name, template,
        config.synthesis_test_cases, config.synthesis_seed,
    )
    synthesis_set = synthesis_pipeline.evaluate()
    evaluation_set = experiment_pipeline(
        config, core_name, template,
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()
    synthesizer = synthesis_pipeline.synthesizer()
    points = {}
    for families in cumulative_family_sets():
        allowed = template.ids_by_family(families)
        label = "+".join(family.name for family in families)
        for prefix in config.synthesis_prefixes():
            synthesis_result = synthesizer.synthesize(
                synthesis_set.prefix(prefix), allowed_atom_ids=allowed
            )
            counts = evaluate_contract(synthesis_result.contract, evaluation_set)
            points[(label, prefix)] = counts.precision
    return points


class TestFig2ThroughCampaign:
    def test_byte_identical_to_the_legacy_driver_path(self, tmp_path):
        config = ExperimentConfig(scale=0.02, results_dir=str(tmp_path / "campaign"))
        result = run_fig2(config)

        legacy_config = ExperimentConfig(
            scale=0.02, results_dir=str(tmp_path / "legacy")
        )
        legacy = _legacy_fig2_points(legacy_config)

        compared = 0
        for series in result.series:
            for x, y in series.points:
                assert y == legacy[(series.label, int(x))]
                compared += 1
        assert compared == len(legacy) > 0
        assert any(y is not None for series in result.series for _, y in series.points)
        assert os.path.exists(tmp_path / "campaign" / "fig2_precision.csv")

    def test_rerun_resumes_every_cell(self, tmp_path):
        """The driver's campaign manifest makes a re-run pure reuse."""
        config = ExperimentConfig(scale=0.01, results_dir=str(tmp_path))
        run_fig2(config)
        spec = fig2_campaign(config, "ibex")
        from repro.campaign import CampaignRunner

        result = CampaignRunner(
            spec, results_dir=config.results_dir, cache=True
        ).run()
        assert result.resumed_count == len(result.outcomes)

    def test_campaign_grid_matches_the_config(self):
        config = ExperimentConfig(scale=0.01)
        spec = fig2_campaign(config, "ibex")
        cells = spec.expand()
        assert len(cells) == 4 * len(config.synthesis_prefixes())
        assert {cell.restriction for cell in cells} == {
            "IL+RL+ML",
            "IL+RL+ML+AL",
            "IL+RL+ML+AL+BL",
            "IL+RL+ML+AL+BL+DL",
        }


class TestFig3ThroughCampaign:
    def test_curve_shape_and_outputs(self, tmp_path):
        config = ExperimentConfig(scale=0.01, results_dir=str(tmp_path))
        result = run_fig3(config)
        assert len(result.series.points) == len(config.sensitivity_prefixes())
        assert os.path.exists(tmp_path / "fig3_sensitivity.csv")


class TestTable3ThroughCampaign:
    def test_live_timings_per_core(self, tmp_path):
        config = ExperimentConfig(scale=0.01, results_dir=str(tmp_path))
        result = run_table3(config, core_names=["ibex"], test_cases=40)
        column = result.column("ibex")
        assert column.test_cases == 40
        assert column.simulation_per_test_case > 0
        assert column.extraction_per_test_case > 0
        assert column.overall_seconds > 0
        assert "Table III" in result.render()
