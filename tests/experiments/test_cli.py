"""Tests for the repro-synthesize command-line interface."""

import pytest

from repro.experiments.cli import _build_parser, main


def test_parser_accepts_experiments():
    parser = _build_parser()
    for name in ("fig2", "fig3", "table1", "table2", "table3", "all"):
        arguments = parser.parse_args([name])
        assert arguments.experiment == name


def test_parser_rejects_unknown():
    parser = _build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table9"])


def test_parser_options():
    parser = _build_parser()
    arguments = parser.parse_args(
        ["fig2", "--scale", "0.5", "--results-dir", "/tmp/x", "--no-cache"]
    )
    assert arguments.scale == 0.5
    assert arguments.results_dir == "/tmp/x"
    assert arguments.no_cache


def test_parser_accepts_plugin_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "run", "--core", "cva6", "--attacker", "cache-state",
            "--solver", "greedy", "--template", "riscv-rv32im",
            "--restrict", "base", "--count", "42", "--seed", "7",
        ]
    )
    assert arguments.experiment == "run"
    assert arguments.core == "cva6"
    assert arguments.attacker == "cache-state"
    assert arguments.solver == "greedy"
    assert arguments.template == "riscv-rv32im"
    assert arguments.restrict == "base"
    assert arguments.count == 42
    assert arguments.seed == 7


def test_parser_accepts_executor_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "run", "--executor", "futures", "--processes", "4",
            "--shard-size", "100", "--resume", "/tmp/run.shards.jsonl",
        ]
    )
    assert arguments.executor == "futures"
    assert arguments.processes == 4
    assert arguments.shard_size == 100
    assert arguments.resume == "/tmp/run.shards.jsonl"
    # Bare --resume derives the manifest from the dataset cache key.
    bare = parser.parse_args(["run", "--resume"])
    assert bare.resume is True
    assert parser.parse_args(["run"]).resume is None


@pytest.mark.pipeline
def test_main_list_prints_registries(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    sections = (
        "cores:", "attackers:", "solvers:", "templates:",
        "restrictions:", "executors:",
    )
    for section in sections:
        assert section in output
    names = (
        "ibex", "cva6", "retirement-timing", "cache-state", "scipy-milp",
        "serial", "multiprocess", "futures", "threaded",
    )
    for name in names:
        assert name in output


@pytest.mark.pipeline
def test_main_run_ad_hoc_pipeline(tmp_path, capsys):
    exit_code = main(
        [
            "run", "--core", "ibex", "--attacker", "retirement-timing",
            "--solver", "greedy", "--count", "40", "--seed", "5", "--no-cache",
            "--results-dir", str(tmp_path / "results"),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "pipeline: core=ibex attacker=retirement-timing solver=greedy" in output
    assert "contract:" in output and "timings:" in output


@pytest.mark.pipeline
def test_main_run_with_executor_and_resume(tmp_path, capsys):
    """The acceptance scenario: an executor-backed run checkpoints its
    shards, and the same invocation resumes from them."""
    results_dir = str(tmp_path / "results")
    argv = [
        "run", "--core", "ibex", "--solver", "greedy", "--count", "40",
        "--executor", "serial", "--shard-size", "10", "--resume",
        "--results-dir", results_dir,
    ]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "executor serial" in output

    # Second invocation: the dataset cache is warm, so the run is a
    # cache hit; the manifest stays on disk for budget extensions.
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "(cached)" in output

    # Both completed runs landed in the run-history index.
    from repro.metrics import load_runs

    runs = load_runs(results_dir)
    assert len(runs) == 2
    assert all(run["kind"] == "pipeline" for run in runs)


@pytest.mark.pipeline
def test_main_run_cva6_cache_state(tmp_path, capsys):
    """The README/acceptance scenario: an ad-hoc cross-plugin pipeline
    completes end-to-end."""
    exit_code = main(
        ["run", "--core", "cva6", "--attacker", "cache-state",
         "--count", "30", "--no-cache",
         "--results-dir", str(tmp_path / "results")]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "pipeline: core=cva6 attacker=cache-state" in output


@pytest.mark.slow
def test_main_runs_table3(tmp_path, capsys):
    exit_code = main(
        ["table3", "--scale", "0.05", "--results-dir", str(tmp_path / "out")]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Table III" in output
    assert (tmp_path / "out" / "table3_runtime.txt").exists()


def test_parser_accepts_campaign_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "campaign", "run", "--core", "ibex,cva6", "--budgets", "100,200",
            "--seeds", "0,1", "--campaign-name", "sweep",
            "--max-parallel-cells", "3", "--filter", "core=ibex",
            "--filter", "budget=100",
        ]
    )
    assert arguments.experiment == "campaign"
    assert arguments.action == "run"
    assert arguments.core == "ibex,cva6"
    assert arguments.budgets == "100,200"
    assert arguments.seeds == "0,1"
    assert arguments.campaign_name == "sweep"
    assert arguments.max_parallel_cells == 3
    assert arguments.filters == ["core=ibex", "budget=100"]
    # The action defaults to None (campaign treats that as 'run').
    assert parser.parse_args(["campaign"]).action is None


@pytest.mark.pipeline
def test_main_list_filters_to_one_registry(capsys):
    """Registries are individually discoverable: 'list templates'
    prints the template registry and nothing else."""
    assert main(["list", "templates"]) == 0
    output = capsys.readouterr().out
    assert "templates:" in output and "riscv-rv32im" in output
    assert "cores:" not in output and "executors:" not in output

    assert main(["list", "restrictions"]) == 0
    output = capsys.readouterr().out
    assert "restrictions:" in output and "IL+RL+ML" in output

    with pytest.raises(SystemExit, match="unknown registry"):
        main(["list", "gadgets"])


@pytest.mark.campaign
def test_main_campaign_run_status_report(tmp_path, capsys):
    """The acceptance scenario end-to-end from the command line: run a
    grid, inspect its status, re-report from the manifest alone."""
    results_dir = str(tmp_path / "results")
    grid = [
        "--core", "ibex,ibex-dcache", "--budgets", "15,30",
        "--solver", "greedy", "--verify", "0",
        "--campaign-name", "clitest", "--results-dir", results_dir,
    ]
    assert main(["campaign", "run"] + grid) == 0
    output = capsys.readouterr().out
    assert "Campaign 'clitest'" in output
    assert "4 cells (0 resumed)" in output
    assert (tmp_path / "results" / "campaign_clitest.txt").exists()

    assert main(["campaign", "status"] + grid + ["--resume"]) == 0
    output = capsys.readouterr().out
    assert "4/4 cells completed" in output

    assert main(["campaign", "report"] + grid + ["--resume"]) == 0
    output = capsys.readouterr().out
    assert "4 cells (4 resumed)" in output

    # --resume reuses every completed cell on a re-run.
    assert main(["campaign", "run", "--resume"] + grid) == 0
    output = capsys.readouterr().out
    assert "4 cells (4 resumed)" in output


@pytest.mark.campaign
def test_main_campaign_filter_runs_a_slice(tmp_path, capsys):
    results_dir = str(tmp_path / "results")
    argv = [
        "campaign", "run", "--core", "ibex,ibex-dcache", "--budgets", "10",
        "--solver", "greedy", "--verify", "0", "--results-dir", results_dir,
        "--filter", "core=ibex",
    ]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "1 cells (0 resumed)" in output
    assert "ibex-dcache" not in output.split("Campaign")[1]


def test_main_campaign_rejects_bad_action_and_filter(tmp_path):
    with pytest.raises(SystemExit, match="unknown campaign action"):
        main(["campaign", "destroy"])
    with pytest.raises(SystemExit, match="bad --filter"):
        main(["campaign", "run", "--filter", "velocity=9"])


def test_parser_accepts_service_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "service", "worker", "--queue-dir", "/tmp/q", "--worker-id", "w1",
            "--lease", "10", "--poll", "0.1", "--max-jobs", "3",
            "--idle-timeout", "5", "--failure-log", "/tmp/f.jsonl",
            "--fault", "shard-crash", "--fault-state", '{"start_id": 0}',
        ]
    )
    assert arguments.experiment == "service"
    assert arguments.action == "worker"
    assert arguments.queue_dir == "/tmp/q"
    assert arguments.worker_id == "w1"
    assert arguments.lease == 10.0
    assert arguments.max_jobs == 3
    serve = parser.parse_args(
        ["serve", "--service-root", "/tmp/svc", "--executor", "workqueue",
         "--embedded-workers", "2", "--max-requests", "1"]
    )
    assert serve.service_root == "/tmp/svc"
    assert serve.embedded_workers == 2
    submit = parser.parse_args(["submit", "--count", "50", "--wait", "30"])
    assert submit.wait == 30.0


@pytest.mark.service
def test_main_list_executors_includes_workqueue(capsys):
    assert main(["list", "executors"]) == 0
    output = capsys.readouterr().out
    assert "workqueue" in output
    assert "service worker" in output


@pytest.mark.service
def test_main_workqueue_without_broker_fails_actionably(monkeypatch):
    monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
    with pytest.raises(SystemExit, match="REPRO_QUEUE_DIR"):
        main(["run", "--executor", "workqueue", "--count", "10", "--no-cache"])
    with pytest.raises(SystemExit, match="REPRO_QUEUE_DIR"):
        main(["campaign", "run", "--executor", "workqueue", "--budgets", "10"])
    with pytest.raises(SystemExit, match="REPRO_QUEUE_DIR"):
        main(["fig2", "--executor", "workqueue"])
    with pytest.raises(SystemExit, match="queue directory"):
        main(["service", "worker"])


@pytest.mark.service
def test_main_run_on_workqueue_with_embedded_workers(tmp_path, capsys):
    argv = [
        "run", "--core", "ibex", "--solver", "greedy", "--count", "30",
        "--executor", "workqueue", "--queue-dir", str(tmp_path / "q"),
        "--embedded-workers", "1", "--shard-size", "10", "--no-cache",
        "--results-dir", str(tmp_path / "results"),
    ]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "pipeline: core=ibex" in output


@pytest.mark.service
def test_main_submit_serve_status_round_trip(tmp_path, capsys):
    root = str(tmp_path / "svc")
    submit = [
        "submit", "--service-root", root, "--core", "ibex",
        "--solver", "greedy", "--count", "30",
    ]
    assert main(submit) == 0
    request_id = capsys.readouterr().out.split()[1]

    assert main(["serve", "--service-root", root, "--max-requests", "1",
                 "--poll", "0.01"]) == 0
    capsys.readouterr()

    assert main(["status", "--service-root", root]) == 0
    assert "done" in capsys.readouterr().out

    assert main(["status", request_id, "--service-root", root]) == 0
    assert "Ticket %s" % request_id in capsys.readouterr().out

    # Submitting again hits the finished ticket; --wait returns at once.
    assert main(submit + ["--wait", "5"]) == 0
    assert "from store" in capsys.readouterr().out

    with pytest.raises(SystemExit, match="no finished ticket"):
        main(["status", "nonexistent", "--service-root", root])
