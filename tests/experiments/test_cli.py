"""Tests for the repro-synthesize command-line interface."""

import pytest

from repro.experiments.cli import _build_parser, main


def test_parser_accepts_experiments():
    parser = _build_parser()
    for name in ("fig2", "fig3", "table1", "table2", "table3", "all"):
        arguments = parser.parse_args([name])
        assert arguments.experiment == name


def test_parser_rejects_unknown():
    parser = _build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table9"])


def test_parser_options():
    parser = _build_parser()
    arguments = parser.parse_args(
        ["fig2", "--scale", "0.5", "--results-dir", "/tmp/x", "--no-cache"]
    )
    assert arguments.scale == 0.5
    assert arguments.results_dir == "/tmp/x"
    assert arguments.no_cache


@pytest.mark.slow
def test_main_runs_table3(tmp_path, capsys):
    exit_code = main(
        ["table3", "--scale", "0.05", "--results-dir", str(tmp_path / "out")]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Table III" in output
    assert (tmp_path / "out" / "table3_runtime.txt").exists()
