"""Tests for the repro-synthesize command-line interface."""

import pytest

from repro.experiments.cli import _build_parser, main


def test_parser_accepts_experiments():
    parser = _build_parser()
    for name in ("fig2", "fig3", "table1", "table2", "table3", "all"):
        arguments = parser.parse_args([name])
        assert arguments.experiment == name


def test_parser_rejects_unknown():
    parser = _build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table9"])


def test_parser_options():
    parser = _build_parser()
    arguments = parser.parse_args(
        ["fig2", "--scale", "0.5", "--results-dir", "/tmp/x", "--no-cache"]
    )
    assert arguments.scale == 0.5
    assert arguments.results_dir == "/tmp/x"
    assert arguments.no_cache


def test_parser_accepts_plugin_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "run", "--core", "cva6", "--attacker", "cache-state",
            "--solver", "greedy", "--template", "riscv-rv32im",
            "--restrict", "base", "--count", "42", "--seed", "7",
        ]
    )
    assert arguments.experiment == "run"
    assert arguments.core == "cva6"
    assert arguments.attacker == "cache-state"
    assert arguments.solver == "greedy"
    assert arguments.template == "riscv-rv32im"
    assert arguments.restrict == "base"
    assert arguments.count == 42
    assert arguments.seed == 7


def test_parser_accepts_executor_flags():
    parser = _build_parser()
    arguments = parser.parse_args(
        [
            "run", "--executor", "futures", "--processes", "4",
            "--shard-size", "100", "--resume", "/tmp/run.shards.jsonl",
        ]
    )
    assert arguments.executor == "futures"
    assert arguments.processes == 4
    assert arguments.shard_size == 100
    assert arguments.resume == "/tmp/run.shards.jsonl"
    # Bare --resume derives the manifest from the dataset cache key.
    bare = parser.parse_args(["run", "--resume"])
    assert bare.resume is True
    assert parser.parse_args(["run"]).resume is None


@pytest.mark.pipeline
def test_main_list_prints_registries(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    sections = (
        "cores:", "attackers:", "solvers:", "templates:",
        "restrictions:", "executors:",
    )
    for section in sections:
        assert section in output
    names = (
        "ibex", "cva6", "retirement-timing", "cache-state", "scipy-milp",
        "serial", "multiprocess", "futures", "threaded",
    )
    for name in names:
        assert name in output


@pytest.mark.pipeline
def test_main_run_ad_hoc_pipeline(capsys):
    exit_code = main(
        [
            "run", "--core", "ibex", "--attacker", "retirement-timing",
            "--solver", "greedy", "--count", "40", "--seed", "5", "--no-cache",
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "pipeline: core=ibex attacker=retirement-timing solver=greedy" in output
    assert "contract:" in output and "timings:" in output


@pytest.mark.pipeline
def test_main_run_with_executor_and_resume(tmp_path, capsys):
    """The acceptance scenario: an executor-backed run checkpoints its
    shards, and the same invocation resumes from them."""
    results_dir = str(tmp_path / "results")
    argv = [
        "run", "--core", "ibex", "--solver", "greedy", "--count", "40",
        "--executor", "serial", "--shard-size", "10", "--resume",
        "--results-dir", results_dir,
    ]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "executor serial" in output

    # Second invocation: the dataset cache is warm, so the run is a
    # cache hit; the manifest stays on disk for budget extensions.
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "(cached)" in output


@pytest.mark.pipeline
def test_main_run_cva6_cache_state(capsys):
    """The README/acceptance scenario: an ad-hoc cross-plugin pipeline
    completes end-to-end."""
    exit_code = main(
        ["run", "--core", "cva6", "--attacker", "cache-state",
         "--count", "30", "--no-cache"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "pipeline: core=cva6 attacker=cache-state" in output


@pytest.mark.slow
def test_main_runs_table3(tmp_path, capsys):
    exit_code = main(
        ["table3", "--scale", "0.05", "--results-dir", str(tmp_path / "out")]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Table III" in output
    assert (tmp_path / "out" / "table3_runtime.txt").exists()
