"""Tests for ILP-instance construction and its reductions."""

from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.synthesis.ilp import build_ilp_instance as _build_ilp_instance
from repro.synthesis.ilp import eliminate_dominated_atoms


def build_ilp_instance(dataset, allowed_atom_ids=None):
    """Structural tests inspect the un-reduced instance."""
    return _build_ilp_instance(dataset, allowed_atom_ids, reduce_dominated=False)


def make_dataset(entries):
    """entries: list of (test_id, attacker_dist, atom_ids)."""
    return EvaluationDataset(
        [
            TestCaseResult(test_id, dist, frozenset(atoms))
            for test_id, dist, atoms in entries
        ]
    )


def test_candidates_limited_to_cover_atoms():
    dataset = make_dataset(
        [
            (0, True, {1, 2}),
            (1, False, {2, 3}),   # atom 3 appears only here
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.candidate_atom_ids == (1, 2)
    assert instance.cover_sets == (frozenset({1, 2}),)
    assert instance.fp_sets == ((frozenset({2}),  1),)


def test_duplicate_cover_sets_merged():
    dataset = make_dataset(
        [
            (0, True, {1, 2}),
            (1, True, {1, 2}),
            (2, True, {3}),
        ]
    )
    instance = build_ilp_instance(dataset)
    assert len(instance.cover_sets) == 2
    ids = dict(zip(instance.cover_sets, instance.cover_test_ids))
    assert set(ids[frozenset({1, 2})]) == {0, 1}


def test_duplicate_fp_sets_weighted():
    dataset = make_dataset(
        [
            (0, True, {1}),
            (1, False, {1}),
            (2, False, {1}),
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.fp_sets == ((frozenset({1}), 2),)
    assert instance.total_fp_weight == 2


def test_uncoverable_cases_reported():
    dataset = make_dataset(
        [
            (0, True, set()),       # no distinguishing atoms at all
            (1, True, {5}),
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.uncoverable_test_ids == (0,)
    assert instance.cover_sets == (frozenset({5}),)


def test_template_restriction():
    dataset = make_dataset(
        [
            (0, True, {1, 9}),
            (1, True, {9}),
            (2, False, {1, 5}),
        ]
    )
    instance = build_ilp_instance(dataset, allowed_atom_ids={1, 5})
    # Case 1 only distinguishable by atom 9, which is not allowed.
    assert instance.uncoverable_test_ids == (1,)
    assert instance.candidate_atom_ids == (1,)
    assert instance.fp_sets == ((frozenset({1}), 1),)


def test_indist_cases_outside_candidates_dropped():
    dataset = make_dataset(
        [
            (0, True, {1}),
            (1, False, {7, 8}),   # intersects no candidate
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.fp_sets == ()


def test_false_positive_weight_and_covers_all():
    dataset = make_dataset(
        [
            (0, True, {1, 2}),
            (1, True, {3}),
            (2, False, {1}),
            (3, False, {1, 3}),
            (4, False, {2}),
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.covers_all({1, 3})
    assert not instance.covers_all({1})
    assert instance.false_positive_weight({1, 3}) == 2  # cases 2 and 3
    assert instance.false_positive_weight({2, 3}) == 2  # cases 3 and 4
    assert instance.false_positive_weight(set()) == 0


def test_false_positive_test_ids():
    dataset = make_dataset(
        [
            (0, True, {1, 2}),
            (5, False, {1}),
            (6, False, {2}),
        ]
    )
    instance = build_ilp_instance(dataset)
    assert instance.false_positive_test_ids({1}) == [5]
    assert instance.false_positive_test_ids({2}) == [6]
    assert instance.false_positive_test_ids({1, 2}) == [5, 6]


def test_empty_dataset():
    instance = build_ilp_instance(make_dataset([]))
    assert instance.candidate_atom_ids == ()
    assert instance.cover_sets == ()
    assert instance.covers_all(set())
    assert instance.atom_count == 0


class TestDominanceReduction:
    def test_identical_signatures_deduplicated(self):
        dataset = make_dataset([(0, True, {1, 2}), (1, False, {1, 2})])
        instance = eliminate_dominated_atoms(build_ilp_instance(dataset))
        assert instance.candidate_atom_ids == (1,)
        assert instance.cover_sets == (frozenset({1}),)

    def test_strictly_dominated_atom_removed(self):
        # Atom 1 covers the same constraint as atom 2 with fewer FPs.
        dataset = make_dataset(
            [(0, True, {1, 2}), (1, False, {2})]
        )
        instance = eliminate_dominated_atoms(build_ilp_instance(dataset))
        assert instance.candidate_atom_ids == (1,)
        assert instance.fp_sets == ()  # atom 2's FP set lost its atoms

    def test_incomparable_atoms_kept(self):
        # Atom 5 covers more but also costs an FP: incomparable to 1/2.
        dataset = make_dataset(
            [
                (0, True, {1, 5}),
                (1, True, {2, 5}),
                (2, False, {5}),
            ]
        )
        instance = eliminate_dominated_atoms(build_ilp_instance(dataset))
        assert instance.candidate_atom_ids == (1, 2, 5)

    def test_reduction_preserves_optimum(self):
        import random

        from repro.synthesis.solvers import BranchAndBoundSolver

        rng = random.Random(5)
        entries = []
        for test_id in range(14):
            entries.append(
                (
                    test_id,
                    rng.random() < 0.5,
                    set(rng.sample(range(1, 9), rng.randint(1, 3))),
                )
            )
        dataset = make_dataset(entries)
        raw = build_ilp_instance(dataset)
        reduced = eliminate_dominated_atoms(raw)
        assert set(reduced.candidate_atom_ids) <= set(raw.candidate_atom_ids)
        solver = BranchAndBoundSolver()
        assert (
            solver.solve(raw).false_positives
            == solver.solve(reduced).false_positives
        )

    def test_default_build_reduces(self):
        dataset = make_dataset([(0, True, {1, 2}), (1, False, {2})])
        instance = _build_ilp_instance(dataset)
        assert instance.candidate_atom_ids == (1,)
