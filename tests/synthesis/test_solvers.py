"""Tests for the three solver backends, including cross-checks of
exactness on randomized instances."""

import itertools
import random

import pytest

from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.synthesis.ilp import build_ilp_instance
from repro.synthesis.solvers import (
    BranchAndBoundSolver,
    GreedySolver,
    ScipyMilpSolver,
)

ALL_SOLVERS = [ScipyMilpSolver(), BranchAndBoundSolver(), GreedySolver()]
EXACT_SOLVERS = [ScipyMilpSolver(), BranchAndBoundSolver()]


def make_instance(entries, allowed=None):
    dataset = EvaluationDataset(
        [
            TestCaseResult(test_id, dist, frozenset(atoms))
            for test_id, (dist, atoms) in enumerate(entries)
        ]
    )
    return build_ilp_instance(dataset, allowed)


@pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
class TestAllSolvers:
    def test_trivial_single_atom(self, solver):
        instance = make_instance([(True, {3})])
        result = solver.solve(instance)
        assert result.selected_atom_ids == {3}
        assert result.false_positives == 0

    def test_empty_instance(self, solver):
        instance = make_instance([(False, {1})])
        result = solver.solve(instance)
        assert result.selected_atom_ids == frozenset()
        assert result.false_positives == 0

    def test_coverage_always_satisfied(self, solver):
        instance = make_instance(
            [
                (True, {1, 2}),
                (True, {2, 3}),
                (True, {4}),
                (False, {2}),
                (False, {4, 1}),
            ]
        )
        result = solver.solve(instance)
        assert instance.covers_all(result.selected_atom_ids)
        assert result.false_positives == instance.false_positive_weight(
            result.selected_atom_ids
        )

    def test_prefers_precise_atom(self, solver):
        # Atom 1 covers the leak with no FPs; atom 2 covers it with 3.
        instance = make_instance(
            [
                (True, {1, 2}),
                (False, {2}),
                (False, {2}),
                (False, {2}),
            ]
        )
        result = solver.solve(instance)
        assert result.selected_atom_ids == {1}
        assert result.false_positives == 0

    def test_unavoidable_false_positive(self, solver):
        instance = make_instance(
            [
                (True, {1}),
                (False, {1}),
            ]
        )
        result = solver.solve(instance)
        assert result.selected_atom_ids == {1}
        assert result.false_positives == 1

    def test_no_gratuitous_atoms(self, solver):
        # One atom covers everything; adding others is never better.
        instance = make_instance(
            [
                (True, {7, 8}),
                (True, {7, 9}),
            ]
        )
        result = solver.solve(instance)
        assert result.selected_atom_ids == {7}


@pytest.mark.parametrize("solver", EXACT_SOLVERS, ids=lambda s: s.name)
class TestExactSolvers:
    def test_optimal_flag(self, solver):
        result = solver.solve(make_instance([(True, {1})]))
        assert result.optimal

    def test_tradeoff_requires_optimality(self, solver):
        # Greedy ratio heuristics can be lured into picking atom 5
        # (covers both constraints, 2 FPs) over {1, 2} (0 FPs).
        instance = make_instance(
            [
                (True, {1, 5}),
                (True, {2, 5}),
                (False, {5}),
                (False, {5}),
            ]
        )
        result = solver.solve(instance)
        assert result.selected_atom_ids == {1, 2}
        assert result.false_positives == 0

    def test_minimum_fp_choice_among_overlaps(self, solver):
        # Covering {1,2} and {2,3}: atom 2 alone covers both but costs
        # 2 FPs; atoms {1,3} cost 1 FP total... optimal is atom 2? No:
        # {1,3}: FP sets touching 1: one case; touching 3: none -> 1 FP.
        instance = make_instance(
            [
                (True, {1, 2}),
                (True, {2, 3}),
                (False, {2}),
                (False, {2}),
                (False, {1}),
            ]
        )
        result = solver.solve(instance)
        assert result.false_positives == 1
        assert result.selected_atom_ids == {1, 3}


def brute_force_optimum(instance):
    """Reference optimum by exhaustive search."""
    atoms = instance.candidate_atom_ids
    best = None
    for size in range(len(atoms) + 1):
        for subset in itertools.combinations(atoms, size):
            if not instance.covers_all(subset):
                continue
            fp = instance.false_positive_weight(subset)
            key = (fp, size)
            if best is None or key < best:
                best = key
        if best is not None and best[0] == 0:
            break
    return best


@pytest.mark.parametrize("seed", range(12))
def test_exact_solvers_match_brute_force(seed):
    rng = random.Random(seed)
    atom_pool = list(range(1, 9))
    entries = []
    for _ in range(rng.randint(2, 6)):
        entries.append(
            (True, set(rng.sample(atom_pool, rng.randint(1, 3))))
        )
    for _ in range(rng.randint(0, 8)):
        entries.append(
            (False, set(rng.sample(atom_pool, rng.randint(1, 3))))
        )
    instance = make_instance(entries)
    expected = brute_force_optimum(instance)
    assert expected is not None
    for solver in EXACT_SOLVERS:
        result = solver.solve(instance)
        # Both backends are exact in the objective (false positives);
        # only branch & bound also guarantees the minimum atom count
        # (scipy minimizes it heuristically via redundancy elimination).
        assert result.false_positives == expected[0], solver.name
        if isinstance(solver, BranchAndBoundSolver):
            assert len(result.selected_atom_ids) == expected[1], solver.name
        else:
            assert len(result.selected_atom_ids) >= expected[1], solver.name


@pytest.mark.parametrize("seed", range(6))
def test_greedy_feasible_and_not_much_worse(seed):
    rng = random.Random(100 + seed)
    atom_pool = list(range(1, 10))
    entries = [
        (True, set(rng.sample(atom_pool, rng.randint(1, 3))))
        for _ in range(rng.randint(2, 7))
    ] + [
        (False, set(rng.sample(atom_pool, rng.randint(1, 4))))
        for _ in range(rng.randint(0, 10))
    ]
    instance = make_instance(entries)
    greedy = GreedySolver().solve(instance)
    exact = BranchAndBoundSolver().solve(instance)
    assert instance.covers_all(greedy.selected_atom_ids)
    assert greedy.false_positives >= exact.false_positives
    assert greedy.false_positives <= exact.false_positives + len(entries)


def test_branch_and_bound_stats():
    instance = make_instance([(True, {1, 2}), (True, {2, 3})])
    result = BranchAndBoundSolver().solve(instance)
    assert result.stats["nodes"] >= 1


def test_scipy_stats():
    # Incomparable atoms (1, 2 vs 5) survive the dominance reduction.
    instance = make_instance(
        [(True, {1, 5}), (True, {2, 5}), (False, {5})]
    )
    result = ScipyMilpSolver().solve(instance)
    assert result.stats["variables"] >= 3
