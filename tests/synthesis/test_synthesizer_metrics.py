"""Tests for the synthesis front end, metrics, and the FP ranking."""

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.template import Contract
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.synthesis.metrics import (
    ClassificationCounts,
    evaluate_contract,
    verify_contract_correctness,
)
from repro.synthesis.ranking import format_ranking, rank_atoms_by_false_positives
from repro.synthesis.solvers import BranchAndBoundSolver
from repro.synthesis.synthesizer import ContractSynthesizer, synthesize


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def make_dataset(entries):
    return EvaluationDataset(
        [
            TestCaseResult(test_id, dist, frozenset(atoms))
            for test_id, (dist, atoms) in enumerate(entries)
        ]
    )


class TestSynthesizer:
    def test_basic_synthesis(self, template):
        dataset = make_dataset(
            [
                (True, {10, 11}),
                (False, {11}),
            ]
        )
        result = synthesize(dataset, template)
        assert result.contract.atom_ids == {10}
        assert result.false_positives == 0
        assert result.wall_seconds >= 0
        assert result.atom_count == 1

    def test_false_positive_ids_reported(self, template):
        dataset = make_dataset(
            [
                (True, {10}),
                (False, {10}),
                (False, {10}),
            ]
        )
        result = synthesize(dataset, template)
        assert result.false_positives == 2
        assert result.false_positive_test_ids == (1, 2)

    def test_uncoverable_exposed(self, template):
        dataset = make_dataset([(True, set()), (True, {4})])
        result = synthesize(dataset, template)
        assert result.uncoverable_test_ids == (0,)

    def test_restriction_changes_contract(self, template):
        dataset = make_dataset([(True, {10, 20})])
        full = synthesize(dataset, template)
        restricted = synthesize(dataset, template, allowed_atom_ids={20})
        # Both {10} and {20} are optimal singletons for the full
        # template; the restriction must force {20}.
        assert len(full.contract) == 1
        assert full.contract.distinguishes(frozenset({10, 20}))
        assert restricted.contract.atom_ids == {20}

    def test_custom_solver(self, template):
        dataset = make_dataset([(True, {3})])
        synthesizer = ContractSynthesizer(template, solver=BranchAndBoundSolver())
        result = synthesizer.synthesize(dataset)
        assert result.solver_result.solver_name == "branch-and-bound"
        assert result.contract.atom_ids == {3}


class TestMetrics:
    def test_counts_properties(self):
        counts = ClassificationCounts(8, 2, 1, 9)
        assert counts.total == 20
        assert counts.precision == pytest.approx(0.8)
        assert counts.sensitivity == pytest.approx(8 / 9)

    def test_degenerate_precision(self):
        counts = ClassificationCounts(0, 0, 3, 5)
        assert counts.precision is None
        assert counts.sensitivity == 0.0

    def test_degenerate_sensitivity(self):
        counts = ClassificationCounts(0, 1, 0, 5)
        assert counts.sensitivity is None
        assert counts.precision == 0.0

    def test_evaluate_contract(self, template):
        contract = Contract(template, {1})
        dataset = make_dataset(
            [
                (True, {1}),      # TP
                (True, {2}),      # FN
                (False, {1, 3}),  # FP
                (False, {4}),     # TN
            ]
        )
        counts = evaluate_contract(contract, dataset)
        assert (counts.true_positives, counts.false_positives) == (1, 1)
        assert (counts.false_negatives, counts.true_negatives) == (1, 1)

    def test_verify_correctness(self, template):
        dataset = make_dataset(
            [
                (True, {1, 2}),
                (True, {3}),
            ]
        )
        assert verify_contract_correctness(Contract(template, {1, 3}), dataset)
        assert not verify_contract_correctness(Contract(template, {1}), dataset)

    def test_verify_correctness_with_restriction(self, template):
        dataset = make_dataset([(True, {9})])
        # Atom 9 not allowed: the case is unexpressible, vacuously OK.
        assert verify_contract_correctness(
            Contract(template, set()), dataset, allowed_atom_ids={1}
        )

    def test_synthesized_contract_always_correct(self, template):
        import random

        rng = random.Random(0)
        entries = []
        for _ in range(30):
            distinguishable = rng.random() < 0.4
            atoms = set(rng.sample(range(1, 15), rng.randint(1, 4)))
            entries.append((distinguishable, atoms))
        dataset = make_dataset(entries)
        result = synthesize(dataset, template)
        assert verify_contract_correctness(result.contract, dataset)


class TestRanking:
    def test_fp_attribution(self, template):
        contract = Contract(template, {1, 2})
        dataset = make_dataset(
            [
                (True, {1}),
                (True, {2}),
                (False, {1}),        # FP solely from atom 1
                (False, {1, 2}),     # shared FP
                (False, {5}),        # not a contract FP
            ]
        )
        rankings = rank_atoms_by_false_positives(contract, dataset)
        by_id = {ranking.atom_id: ranking for ranking in rankings}
        assert by_id[1].false_positive_count == 2
        assert by_id[1].sole_false_positive_count == 1
        assert by_id[2].false_positive_count == 1
        assert by_id[2].sole_false_positive_count == 0
        assert rankings[0].atom_id == 1  # sorted by FP count

    def test_example_limit(self, template):
        contract = Contract(template, {1})
        dataset = make_dataset([(True, {1})] + [(False, {1})] * 10)
        rankings = rank_atoms_by_false_positives(contract, dataset, max_examples=3)
        assert len(rankings[0].example_test_ids) == 3

    def test_format_ranking(self, template):
        contract = Contract(template, {1})
        dataset = make_dataset([(True, {1}), (False, {1})])
        text = format_ranking(rank_atoms_by_false_positives(contract, dataset))
        assert template.atom(1).name in text
        assert "FPs" in text
