"""The fault registry and the injection seam."""

import pytest

from repro.resilience import (
    FAULT_REGISTRY,
    InjectedFault,
    active_fault,
    clear_fault,
    inject_fault,
    install_fault,
    maybe_inject,
)
from repro.resilience.injection import current_attempt, set_attempts

pytestmark = pytest.mark.faults

EXPECTED_PLANS = {
    "shard-crash",
    "shard-hang",
    "worker-error",
    "torn-checkpoint",
    "pool-broken",
    "cell-crash",
    "round-crash",
}


class TestRegistry:
    def test_every_plan_is_registered(self):
        assert set(FAULT_REGISTRY.names()) == EXPECTED_PLANS

    @pytest.mark.parametrize("name", sorted(EXPECTED_PLANS))
    def test_plans_ship_as_name_plus_json_state(self, name):
        """A plan must round-trip through ``(name, state)`` — the wire
        format a remote worker would receive it as."""
        plan = FAULT_REGISTRY.create(name)
        assert plan.name == name
        clone = FAULT_REGISTRY.create(name, **plan.state())
        assert clone.state() == plan.state()

    def test_registry_describes_each_plan(self):
        for name in FAULT_REGISTRY.names():
            assert FAULT_REGISTRY.describe(name)


class TestInjectionSeam:
    def test_no_plan_is_a_no_op(self):
        clear_fault()
        assert active_fault() is None
        maybe_inject("shard", shard=(0, 10))  # must not raise

    def test_install_and_clear(self):
        plan = install_fault("shard-crash", {"start_id": 10})
        try:
            assert active_fault() is plan
            with pytest.raises(InjectedFault):
                maybe_inject("shard", shard=(10, 10), attempt=1)
            maybe_inject("shard", shard=(0, 10), attempt=1)  # other shards pass
        finally:
            clear_fault()
        assert active_fault() is None

    def test_context_manager_restores_cleanliness(self):
        with inject_fault("worker-error", start_id=0):
            assert active_fault() is not None
            with pytest.raises(RuntimeError):
                maybe_inject("shard", shard=(0, 10), attempt=1)
        assert active_fault() is None

    def test_attempt_bookkeeping_reaches_the_shard_site(self):
        """``set_attempts`` is how attempt-dependent plans see retry
        counts across a fork: the seam fills ``attempt`` from the
        published table when the caller does not pass one."""
        with inject_fault("shard-crash", start_id=10, fail_attempts=1):
            set_attempts({(10, 10): 2})
            assert current_attempt((10, 10)) == 2
            assert current_attempt((0, 10)) == 1  # unpublished → first try
            # Attempt 2 is past fail_attempts=1: the plan stays quiet.
            maybe_inject("shard", shard=(10, 10))
            set_attempts({(10, 10): 1})
            with pytest.raises(InjectedFault):
                maybe_inject("shard", shard=(10, 10))
        assert current_attempt((10, 10)) == 1  # cleared with the plan
