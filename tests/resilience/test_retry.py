"""RetryPolicy: deterministic backoff and the retryable/fatal split."""

from concurrent.futures import BrokenExecutor

import pytest

from repro.checkpoint import CheckpointKeyError
from repro.resilience import (
    FatalInjectedFault,
    InjectedFault,
    PoolBrokenError,
    RetryPolicy,
    ShardExecutionError,
    ShardTimeoutError,
    is_retryable,
)

pytestmark = pytest.mark.faults


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.delay(1) == 0.0  # base 0 → immediate retries

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy.from_retries(-1)

    def test_from_retries_is_the_cli_spelling(self):
        assert RetryPolicy.from_retries(0).max_attempts == 1
        assert RetryPolicy.from_retries(3).max_attempts == 4

    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=1.0, backoff_factor=2.0, backoff_max=3.0
        )
        assert policy.schedule() == (1.0, 2.0, 3.0, 3.0)
        # A pure function of the attempt number: recomputing agrees.
        assert policy.schedule() == tuple(policy.delay(n) for n in range(1, 5))

    def test_identity_has_no_wall_clock_component(self):
        identity = RetryPolicy(max_attempts=2, backoff_base=0.5).identity()
        assert identity == {
            "max_attempts": 2,
            "backoff_base": 0.5,
            "backoff_factor": 2.0,
            "backoff_max": 60.0,
        }


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [
            InjectedFault("transient"),
            ShardExecutionError((0, 10), cause="boom"),
            ShardTimeoutError((0, 10), 0.5),
            PoolBrokenError("pool died"),
            BrokenExecutor("pool died"),
            TimeoutError(),
            ConnectionError(),
            OSError(28, "no space"),
            RuntimeError("maybe transient"),
        ],
    )
    def test_retryable(self, error):
        assert is_retryable(error)

    @pytest.mark.parametrize(
        "error",
        [
            FatalInjectedFault("poison"),
            ShardExecutionError((0, 10), cause="poison", fatal=True),
            CheckpointKeyError("wrong corpus"),
            ValueError("bad configuration"),
            TypeError("bad call"),
            KeyError("missing"),
        ],
    )
    def test_fatal(self, error):
        assert not is_retryable(error)
