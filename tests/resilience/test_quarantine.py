"""FailureRecord round-trips and the FailureLog quarantine manifest."""

import json

import pytest

from repro.resilience import FailureLog, FailureRecord

pytestmark = pytest.mark.faults

KEY = {"core": "ibex", "seed": 3}


def _record(**overrides):
    settings = dict(
        kind="shard",
        unit={"start_id": 20, "count": 10},
        error="ShardExecutionError(...)",
        attempts=3,
    )
    settings.update(overrides)
    return FailureRecord(**settings)


class TestFailureRecord:
    def test_round_trip(self):
        record = _record()
        assert FailureRecord.from_dict(record.to_dict()) == record

    def test_defaults_tolerate_sparse_entries(self):
        record = FailureRecord.from_dict({"kind": "pool"})
        assert record.unit == {}
        assert record.attempts == 1


class TestFailureLog:
    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "quarantine.jsonl")
        log = FailureLog(path, KEY)
        log.append_record(_record())
        log.append_record(_record(kind="downgrade", unit={"to": "serial"}))
        assert len(log) == 2

        reloaded = FailureLog(path, KEY)
        assert [record.kind for record in reloaded.records] == ["shard", "downgrade"]
        assert reloaded.records[0].unit == {"start_id": 20, "count": 10}

    def test_header_binds_the_run_key(self, tmp_path):
        path = str(tmp_path / "quarantine.jsonl")
        FailureLog(path, KEY).append_record(_record())
        with open(path) as stream:
            header = json.loads(stream.readline())
        assert header["manifest"] == "failure-log"
        assert header["key"] == KEY
        with pytest.raises(ValueError, match="different run"):
            FailureLog(path, {"core": "cva6", "seed": 3})

    def test_concurrent_processes_append_without_torn_lines(self, tmp_path):
        """The service's worker processes share one failure log: records
        appended from separate processes at once must all land intact."""
        import os
        import subprocess
        import sys

        path = str(tmp_path / "quarantine.jsonl")
        FailureLog(path, KEY, durable=True)  # one creator writes the header
        source_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = (
            "import sys; sys.path.insert(0, %r); "
            "from repro.resilience import FailureLog, FailureRecord; "
            "log = FailureLog(%r, {'core': 'ibex', 'seed': 3}, durable=True); "
            "[log.append_record(FailureRecord(kind='shard', "
            "unit={'start_id': n, 'count': 10, 'worker': sys.argv[1]}, "
            "error='boom' * 200, attempts=1)) for n in range(25)]"
            % (source_root, path)
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script, "w%d" % index])
            for index in range(2)
        ]
        assert all(proc.wait() == 0 for proc in procs)

        reloaded = FailureLog(path, KEY)
        assert len(reloaded) == 50
        workers = {record.unit["worker"] for record in reloaded.records}
        assert workers == {"w0", "w1"}
        with open(path) as stream:
            for line in stream:
                json.loads(line)  # every line is intact

    def test_torn_final_line_is_recovered(self, tmp_path):
        path = str(tmp_path / "quarantine.jsonl")
        log = FailureLog(path, KEY)
        log.append_record(_record())
        log.append_record(_record(unit={"start_id": 30, "count": 10}))
        with open(path, "a") as stream:
            stream.write('{"kind": "shard", "unit"')  # killed mid-append
        recovered = FailureLog(path, KEY)
        assert len(recovered) == 2
        recovered.append_record(_record(unit={"start_id": 40, "count": 10}))
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 4  # header + 3 intact records
        for line in lines:
            json.loads(line)
