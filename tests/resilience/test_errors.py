"""The error taxonomy: shard attribution, pickling, classification."""

import pickle

import pytest

from repro.evaluation.backends import EvaluationTask
from repro.evaluation.backends.executors import SerialExecutor
from repro.resilience import (
    ShardExecutionError,
    ShardTimeoutError,
    inject_fault,
    is_retryable,
)

pytestmark = pytest.mark.faults


class TestShardExecutionError:
    def test_message_names_the_shard(self):
        error = ShardExecutionError((30, 10), cause="RuntimeError('boom')")
        assert str(error) == (
            "shard (start_id=30, count=10) failed: RuntimeError('boom')"
        )
        assert error.start_id == 30
        assert error.count == 10
        assert not error.fatal

    def test_worker_errors_are_wrapped_with_shard_attribution(self):
        """A bare exception inside ``evaluate`` must surface as a typed
        ShardExecutionError naming ``(start_id, count)`` — the executor
        seam is what pins which test-id window died."""
        task = EvaluationTask(core_name="ibex", seed=3)
        with inject_fault("worker-error", start_id=20, fail_attempts=10**9):
            with pytest.raises(ShardExecutionError) as info:
                list(SerialExecutor().run(task, [(0, 10), (20, 10)]))
        assert "(start_id=20, count=10)" in str(info.value)
        assert info.value.shard == (20, 10)
        assert "RuntimeError" in info.value.cause

    def test_survives_the_pool_pickle_boundary(self):
        original = ShardExecutionError((40, 10), cause="boom", fatal=True)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.shard == (40, 10)
        assert clone.cause == "boom"
        assert clone.fatal
        assert str(clone) == str(original)

    def test_cause_chain_preserved_for_humans(self):
        error = ShardExecutionError((0, 5))
        assert "unknown error" in str(error)


class TestShardTimeoutError:
    def test_message_names_the_deadline(self):
        error = ShardTimeoutError((10, 10), timeout_seconds=0.25)
        assert "exceeded soft deadline of 0.25s" in str(error)
        assert "(start_id=10, count=10)" in str(error)
        assert not error.fatal
        assert is_retryable(error)

    def test_pickles_with_deadline_intact(self):
        clone = pickle.loads(pickle.dumps(ShardTimeoutError((10, 5), 1.5)))
        assert isinstance(clone, ShardTimeoutError)
        assert clone.timeout_seconds == 1.5
        assert clone.shard == (10, 5)
