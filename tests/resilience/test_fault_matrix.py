"""The fault matrix: every registered fault plan, injected into a
pinned pipeline run, must end in a contract byte-identical to the
fault-free reference — fault tolerance may never change the science.

One test per registered plan (a coverage check pins the set), plus the
quarantine path: shards that exhaust their retries land in the
FailureLog and the result's structured failure records, and their
incomplete dataset never reaches the dataset cache.
"""

import json
import os

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.pipeline import SynthesisPipeline
from repro.resilience import (
    ALWAYS,
    FAULT_REGISTRY,
    FailureLog,
    InjectedFault,
    ShardExecutionError,
    inject_fault,
)

pytestmark = pytest.mark.faults

BUDGET = 40
SEED = 11
SHARD = 10


def _pipeline(executor="serial", **executor_settings):
    return (
        SynthesisPipeline()
        .core("ibex")
        .attacker("retirement-timing")
        .template("riscv-rv32im")
        .solver("scipy-milp")
        .budget(BUDGET, seed=SEED)
        .executor(executor, shard_size=SHARD, **executor_settings)
    )


def _adaptive_pipeline():
    return _pipeline().adaptive(rounds=2, batch=20, stop="budget")


def _fingerprint(result):
    """The byte-level identity of a run: dataset and contract."""
    return (result.dataset.to_json(), tuple(sorted(result.contract.atom_ids)))


@pytest.fixture(scope="module")
def reference():
    return _fingerprint(_pipeline().run())


@pytest.fixture(scope="module")
def adaptive_reference():
    return _fingerprint(_adaptive_pipeline().run())


class TestFaultMatrix:
    def test_matrix_covers_every_registered_plan(self):
        """Adding a fault plan without a matrix entry must fail here."""
        assert set(FAULT_REGISTRY.names()) == {
            "shard-crash",  # test_shard_crash_is_retried_to_identity
            "shard-hang",  # test_shard_hang_is_rescheduled_by_the_watchdog
            "worker-error",  # test_worker_error_is_wrapped_and_retried
            "torn-checkpoint",  # test_torn_checkpoint_resumes_to_identity
            "pool-broken",  # test_pool_breakage_downgrades_to_serial
            "cell-crash",  # test_cell_crash_is_retried_to_identity
            "round-crash",  # test_round_crash_is_retried_to_identity
        }

    def test_shard_crash_is_retried_to_identity(self, reference):
        with inject_fault("shard-crash", start_id=10, fail_attempts=1):
            result = _pipeline().retry(3).run()
        assert _fingerprint(result) == reference
        assert [record.kind for record in result.failures] == ["retry"]
        assert result.timings.shards_quarantined == 0

    def test_worker_error_is_wrapped_and_retried(self, reference):
        with inject_fault("worker-error", start_id=20, fail_attempts=1):
            result = _pipeline().retry(3).run()
        assert _fingerprint(result) == reference
        retry = result.failures[0]
        assert retry.kind == "retry"
        assert retry.unit == {"start_id": 20, "count": SHARD}
        assert "(start_id=20, count=10)" in retry.error

    def test_shard_hang_is_rescheduled_by_the_watchdog(self, reference):
        """A hung worker cannot be interrupted; the watchdog abandons
        the pool at the soft deadline and re-sweeps in a fresh one."""
        with inject_fault(
            "shard-hang", start_id=10, delay_seconds=2.0, hang_attempts=1
        ):
            result = (
                _pipeline(executor="threaded", processes=4)
                .retry(3)
                .timeout(0.3)
                .run()
            )
        assert _fingerprint(result) == reference
        assert [record.kind for record in result.failures] == ["retry"]
        assert "deadline" in result.failures[0].error

    def test_pool_breakage_downgrades_to_serial(self, reference):
        """Two pool-level failures hit the breakage threshold: the run
        finishes on the serial fallback and says so, durably."""
        with inject_fault("pool-broken", fail_attempts=ALWAYS):
            result = _pipeline(executor="threaded", processes=4).retry(3).run()
        assert _fingerprint(result) == reference
        kinds = [record.kind for record in result.failures]
        assert kinds == ["pool", "pool", "downgrade"]
        assert result.failures[-1].unit == {"from": "threaded", "to": "serial"}
        assert result.timings.executor_downgraded == "serial"

    def test_torn_checkpoint_resumes_to_identity(self, tmp_path, reference):
        """The two-phase scenario: a run killed mid-append leaves a
        torn manifest line; a clean re-run recovers the intact prefix
        and completes byte-identically."""
        path = str(tmp_path / "shards.jsonl")
        with inject_fault("torn-checkpoint", entry_index=1):
            with pytest.raises(InjectedFault, match="mid-append"):
                _pipeline().resume(path).run()
        with open(path) as stream:
            assert not stream.read().endswith("\n")  # genuinely torn

        resumed = _pipeline().resume(path).run()
        assert _fingerprint(resumed) == reference
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 1 + BUDGET // SHARD
        for line in lines:
            json.loads(line)

    def test_round_crash_is_retried_to_identity(self, adaptive_reference):
        with inject_fault("round-crash", round_index=1, fail_attempts=1):
            result = _adaptive_pipeline().retry(2).run()
        assert _fingerprint(result) == adaptive_reference
        kinds = [record.kind for record in result.failures]
        assert kinds == ["retry"]
        assert result.failures[0].unit["round"] == 1

    def test_cell_crash_is_retried_to_identity(self, tmp_path, reference):
        spec = CampaignSpec(
            name="matrix",
            cores=("ibex",),
            attackers=("retirement-timing",),
            templates=("riscv-rv32im",),
            solvers=("scipy-milp",),
            budgets=(BUDGET,),
            seeds=(SEED,),
            retries=1,
        )
        with inject_fault("cell-crash", match="seed=%d" % SEED, fail_attempts=1):
            campaign = CampaignRunner(
                spec, results_dir=str(tmp_path), executor="serial", cache=False
            ).run()
        assert len(campaign.outcomes) == 1
        assert campaign.outcomes[0].atom_ids == reference[1]
        assert [record.kind for record in campaign.failures] == ["retry"]
        assert not campaign.quarantined_cells


class TestQuarantine:
    def test_exhausted_shard_is_quarantined_and_logged(self, tmp_path):
        """A permanently failing shard ends in the FailureLog and the
        result's failure records; the run continues without its rows
        and the incomplete dataset never reaches the dataset cache."""
        pipeline = _pipeline().retry(2).cache_dir(str(tmp_path))
        with inject_fault("shard-crash", start_id=10, fail_attempts=ALWAYS):
            result = pipeline.run()

        assert len(result.dataset) == BUDGET - SHARD
        assert result.timings.shards_quarantined == 1
        quarantined = result.quarantined_shards
        assert len(quarantined) == 1
        assert quarantined[0].unit == {"start_id": 10, "count": SHARD}
        assert quarantined[0].attempts == 2
        assert "quarantined" in result.render()

        log_path = pipeline.quarantine_path()
        assert log_path is not None and os.path.exists(log_path)
        log = FailureLog(log_path, json.loads(open(log_path).readline())["key"])
        assert [record.kind for record in log.records] == ["shard"]

        # The hole must not persist: no dataset was cached.
        assert not [
            name for name in os.listdir(str(tmp_path)) if name.endswith(".json")
        ]

    def test_fatal_fault_is_never_retried(self):
        with inject_fault("shard-crash", start_id=10, fail_attempts=1, fatal=True):
            with pytest.raises(ShardExecutionError) as info:
                _pipeline().retry(3).run()
        assert info.value.fatal
        assert "(start_id=10, count=10)" in str(info.value)

    def test_exhausted_cell_is_quarantined_and_logged(self, tmp_path):
        spec = CampaignSpec(
            name="matrix-q",
            cores=("ibex",),
            budgets=(BUDGET,),
            seeds=(SEED, SEED + 1),
            retries=1,
        )
        with inject_fault(
            "cell-crash", match="seed=%d" % (SEED + 1), fail_attempts=ALWAYS
        ):
            campaign = CampaignRunner(
                spec, results_dir=str(tmp_path), executor="serial"
            ).run()
        assert len(campaign.outcomes) == 1  # the healthy sibling completed
        assert len(campaign.quarantined_cells) == 1
        assert campaign.quarantined_cells[0].attempts == 2
        log_path = os.path.join(
            str(tmp_path), "campaigns", "matrix-q.quarantine.jsonl"
        )
        assert os.path.exists(log_path)
        log = FailureLog(log_path, {"campaign": "matrix-q"})
        assert [record.kind for record in log.records] == ["cell"]
        assert "quarantined" in campaign.render()
