"""Tests for the CI bench-regression gate
(``benchmarks/check_bench_regression.py``)."""

import importlib.util
import json
import os


def _load_checker():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "check_bench_regression.py",
    )
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestFindRegressions:
    def test_no_regression_within_tolerance(self):
        baseline = {"a": 6.0, "b": 1.8}
        fresh = {"a": 4.6, "b": 1.9}  # a dropped ~23% < 25%
        assert checker.find_regressions(baseline, fresh, 0.25) == []

    def test_regression_beyond_tolerance_is_reported(self):
        problems = checker.find_regressions({"a": 6.0}, {"a": 4.0}, 0.25)
        assert len(problems) == 1
        assert "a" in problems[0] and "4.00x" in problems[0]

    def test_missing_benchmark_counts_as_regression(self):
        problems = checker.find_regressions({"a": 6.0}, {}, 0.25)
        assert len(problems) == 1
        assert "missing" in problems[0]

    def test_new_benchmarks_are_ignored(self):
        assert checker.find_regressions({}, {"new": 9.0}, 0.25) == []

    def test_boundary_is_exclusive(self):
        # Exactly at the floor is allowed; below it is not.
        assert checker.find_regressions({"a": 4.0}, {"a": 3.0}, 0.25) == []
        assert checker.find_regressions({"a": 4.0}, {"a": 2.999}, 0.25)


class TestMain:
    def _document(self, path, speedups):
        with open(path, "w") as stream:
            json.dump({"speedups_vs_reference": speedups, "benchmarks": {}}, stream)

    def test_exit_codes(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        fresh = str(tmp_path / "fresh.json")
        self._document(baseline, {"a": 6.0})
        self._document(fresh, {"a": 5.9})
        assert checker.main([baseline, fresh]) == 0
        assert "no speedup regressed" in capsys.readouterr().out

        self._document(fresh, {"a": 1.0})
        assert checker.main([baseline, fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tighter_threshold_flag(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        fresh = str(tmp_path / "fresh.json")
        self._document(baseline, {"a": 6.0})
        self._document(fresh, {"a": 5.0})
        assert checker.main([baseline, fresh]) == 0
        assert checker.main([baseline, fresh, "--max-regression", "0.1"]) == 1

    def test_empty_baseline_passes(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        fresh = str(tmp_path / "fresh.json")
        self._document(baseline, {})
        self._document(fresh, {"a": 1.0})
        assert checker.main([baseline, fresh]) == 0
