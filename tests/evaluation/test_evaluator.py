"""Tests for the test-case evaluator and result datasets."""

import pytest

from repro.attacker.retirement import TotalTimeAttacker
from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.testgen.generator import TestCaseGenerator
from repro.testgen.testcase import TestCase
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def make_case(source_a, source_b, regs=None, test_id=0, targeted=None):
    program_a = assemble(source_a)
    program_b = assemble(source_b)
    state = ArchState(pc=program_a.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return TestCase(
        test_id=test_id,
        program_a=program_a,
        program_b=program_b,
        initial_state=state,
        targeted_atom_id=targeted,
    )


class TestEvaluator:
    def test_alignment_case_is_attacker_distinguishable_on_ibex(self, template):
        evaluator = TestCaseEvaluator(IbexCore(), template)
        case = make_case(
            "addi x2, x0, 0x100\nlw x1, 0(x2)",
            "addi x2, x0, 0x102\nlw x1, 0(x2)",
        )
        result = evaluator.evaluate(case)
        assert result.attacker_distinguishable
        names = {template.atom(a).name for a in result.distinguishing_atom_ids}
        assert "lw:IS_WORD_ALIGNED" in names

    def test_alignment_case_is_not_distinguishable_on_cva6(self, template):
        evaluator = TestCaseEvaluator(CVA6Core(), template)
        case = make_case(
            "addi x2, x0, 0x100\nlw x1, 0(x2)",
            "addi x2, x0, 0x102\nlw x1, 0(x2)",
        )
        result = evaluator.evaluate(case)
        assert not result.attacker_distinguishable
        # The atoms still distinguish at ISA level.
        assert result.distinguishing_atom_ids

    def test_value_only_case_not_attacker_distinguishable(self, template):
        evaluator = TestCaseEvaluator(IbexCore(), template)
        case = make_case(
            "addi x2, x0, 5\nadd x1, x2, x3",
            "addi x2, x0, 9\nadd x1, x2, x3",
        )
        result = evaluator.evaluate(case)
        assert not result.attacker_distinguishable
        assert result.distinguishing_atom_ids  # REG_RS1/REG_RD etc.

    def test_branch_case_on_both_cores(self, template):
        case = make_case(
            "addi x1, x0, 5\naddi x2, x0, 5\nbeq x1, x2, 4\nnop",
            "addi x1, x0, 5\naddi x2, x0, 6\nbeq x1, x2, 4\nnop",
        )
        for core in (IbexCore(), CVA6Core()):
            result = TestCaseEvaluator(core, template).evaluate(case)
            assert result.attacker_distinguishable

    def test_targeted_atom_propagates(self, template):
        evaluator = TestCaseEvaluator(IbexCore(), template)
        case = make_case("nop", "nop", targeted=42)
        result = evaluator.evaluate(case)
        assert result.targeted_atom_id == 42
        assert not result.attacker_distinguishable
        assert result.distinguishing_atom_ids == frozenset()

    def test_custom_attacker(self, template):
        # Same total time but different retirement profile: the
        # total-time attacker must call this indistinguishable.
        case = make_case(
            "slli x1, x2, 9\nslli x3, x4, 1",
            "slli x1, x2, 1\nslli x3, x4, 9",
        )
        weak = TestCaseEvaluator(IbexCore(), template, attacker=TotalTimeAttacker())
        strong = TestCaseEvaluator(IbexCore(), template)
        assert not weak.evaluate(case).attacker_distinguishable
        assert strong.evaluate(case).attacker_distinguishable

    def test_timers_accumulate(self, template):
        evaluator = TestCaseEvaluator(IbexCore(), template)
        case = make_case("nop", "nop")
        evaluator.evaluate(case)
        evaluator.evaluate(case)
        assert evaluator.simulated_test_cases == 2
        assert evaluator.simulation_seconds > 0
        assert evaluator.extraction_seconds > 0
        evaluator.reset_timers()
        assert evaluator.simulated_test_cases == 0

    def test_evaluate_many_end_to_end(self, template):
        generator = TestCaseGenerator(template, seed=3)
        evaluator = TestCaseEvaluator(IbexCore(), template)
        dataset = evaluator.evaluate_many(generator.iter_generate(80))
        assert len(dataset) == 80
        assert dataset.core_name == "ibex"
        assert dataset.attacker_name == "retirement-timing"
        # Most atoms target value leaks Ibex does not have, so the
        # distinguishable fraction is small but must be non-trivial.
        assert len(dataset.distinguishable) >= 3
        assert len(dataset.indistinguishable) >= 40


class TestDataset:
    def _dataset(self):
        results = [
            TestCaseResult(0, True, frozenset({1, 2}), targeted_atom_id=1),
            TestCaseResult(1, False, frozenset({2}), targeted_atom_id=2),
            TestCaseResult(2, True, frozenset({3})),
        ]
        return EvaluationDataset(
            results, core_name="ibex", template_name="t", attacker_name="a"
        )

    def test_views(self):
        dataset = self._dataset()
        assert [r.test_id for r in dataset.distinguishable] == [0, 2]
        assert [r.test_id for r in dataset.indistinguishable] == [1]

    def test_prefix_and_slice(self):
        dataset = self._dataset()
        prefix = dataset.prefix(2)
        assert len(prefix) == 2
        assert prefix.core_name == "ibex"
        assert dataset[0].test_id == 0

    def test_json_roundtrip(self):
        dataset = self._dataset()
        restored = EvaluationDataset.from_json(dataset.to_json())
        assert len(restored) == len(dataset)
        for original, copy in zip(dataset, restored):
            assert original == copy
        assert restored.core_name == "ibex"

    def test_save_load(self, tmp_path):
        dataset = self._dataset()
        path = str(tmp_path / "dataset.json")
        dataset.save(path)
        restored = EvaluationDataset.load(path)
        assert len(restored) == 3
        assert restored.attacker_name == "a"

    def test_extend(self):
        dataset = self._dataset()
        dataset.extend([TestCaseResult(3, False, frozenset())])
        assert len(dataset) == 4
