"""Executor backends: equivalence, shard planning, and checkpointing.

The executor contract is strict: every registered backend must produce
a dataset *byte-identical* to the sequential
``TestCaseEvaluator.evaluate_many`` output for the same seed, and a
partially checkpointed run must complete to the same dataset while
re-evaluating only the missing shards.
"""

import json

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.backends import (
    EXECUTOR_REGISTRY,
    EvaluationTask,
    ManifestKeyError,
    SerialExecutor,
    ShardManifest,
    plan_shards,
)
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.parallel import evaluate_parallel
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore

COUNT = 48
SEED = 7


@pytest.fixture(scope="module")
def sequential_json():
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=SEED)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    return evaluator.evaluate_many(generator.iter_generate(COUNT)).to_json()


class TestShardPlan:
    def test_covers_range_exactly_with_tail_shard(self):
        shards = plan_shards(47, 10)
        assert shards == [(0, 10), (10, 10), (20, 10), (30, 10), (40, 7)]
        assert sum(count for _start, count in shards) == 47

    def test_single_shard_and_exact_division(self):
        assert plan_shards(10, 250) == [(0, 10)]
        assert plan_shards(20, 10) == [(0, 10), (10, 10)]

    def test_rejects_non_positive_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards(10, 0)


def _in_process_backends():
    """Backends the equivalence suite can drive with no infrastructure:
    external ones (workqueue) pin byte-identity in their own harnesses."""
    return [
        name
        for name in EXECUTOR_REGISTRY.names()
        if not getattr(EXECUTOR_REGISTRY.get(name), "external", False)
    ]


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", _in_process_backends())
    def test_backend_matches_sequential_evaluator(self, name, sequential_json):
        dataset = evaluate_parallel(
            "ibex",
            COUNT,
            seed=SEED,
            processes=2,
            shard_size=11,
            executor=name,
        )
        assert dataset.to_json() == sequential_json

    def test_executor_instance_accepted(self, sequential_json):
        dataset = evaluate_parallel(
            "ibex", COUNT, seed=SEED, shard_size=13, executor=SerialExecutor()
        )
        assert dataset.to_json() == sequential_json

    def test_unknown_executor_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown executor"):
            evaluate_parallel("ibex", 10, seed=1, executor="quantum")


class TestProgressEvents:
    def test_one_event_per_shard_with_running_totals(self):
        events = []
        evaluate_parallel(
            "ibex",
            35,
            seed=2,
            shard_size=10,
            executor="serial",
            progress=events.append,
        )
        assert [event.shard for event in events] == plan_shards(35, 10)
        assert [event.completed_shards for event in events] == [1, 2, 3, 4]
        assert events[-1].completed_cases == events[-1].total_cases == 35
        assert all(not event.resumed for event in events)
        assert all(event.elapsed_seconds >= 0 for event in events)


class TestManifestCheckpointing:
    def _manifest_path(self, tmp_path):
        return str(tmp_path / "run.shards.jsonl")

    def test_interrupted_run_resumes_to_identical_dataset(self, tmp_path):
        """The kill/resume scenario: a run dying after two shards keeps
        them, and the resumed run evaluates only the other three."""
        path = self._manifest_path(tmp_path)

        class Killed(Exception):
            pass

        def kill_after_two(event):
            if event.completed_shards == 2:
                raise Killed()

        with pytest.raises(Killed):
            evaluate_parallel(
                "ibex",
                50,
                seed=3,
                shard_size=10,
                executor="serial",
                manifest_path=path,
                progress=kill_after_two,
            )
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 3  # header + the two completed shards

        events = []
        resumed = evaluate_parallel(
            "ibex",
            50,
            seed=3,
            shard_size=10,
            executor="serial",
            manifest_path=path,
            progress=events.append,
        )
        assert [event.resumed for event in events] == [
            True,
            True,
            False,
            False,
            False,
        ]
        full = evaluate_parallel("ibex", 50, seed=3, shard_size=10, executor="serial")
        assert resumed.to_json() == full.to_json()

    def test_completed_manifest_reuses_every_shard(self, tmp_path):
        path = self._manifest_path(tmp_path)
        first = evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        events = []
        second = evaluate_parallel(
            "ibex",
            30,
            seed=5,
            shard_size=10,
            executor="serial",
            manifest_path=path,
            progress=events.append,
        )
        assert all(event.resumed for event in events)
        assert second.to_json() == first.to_json()

    def test_budget_extension_reuses_completed_shards(self, tmp_path):
        """Shards are keyed by (start, count) and generated per test
        id, so a bigger budget resumes from the same manifest."""
        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        events = []
        extended = evaluate_parallel(
            "ibex",
            50,
            seed=5,
            shard_size=10,
            executor="serial",
            manifest_path=path,
            progress=events.append,
        )
        assert [event.resumed for event in events] == [
            True,
            True,
            True,
            False,
            False,
        ]
        fresh = evaluate_parallel("ibex", 50, seed=5, shard_size=10, executor="serial")
        assert extended.to_json() == fresh.to_json()

    def test_key_mismatch_raises_instead_of_mixing_corpora(self, tmp_path):
        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 20, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        with pytest.raises(ManifestKeyError, match="different evaluation"):
            evaluate_parallel(
                "ibex",
                20,
                seed=6,
                shard_size=10,
                executor="serial",
                manifest_path=path,
            )

    def test_truncated_final_line_is_discarded(self, tmp_path):
        """A run killed mid-append leaves a partial last line; loading
        must drop it and re-evaluate that shard."""
        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        with open(path) as stream:
            lines = stream.read().splitlines()
        with open(path, "w") as stream:
            stream.write("\n".join(lines[:-1]) + "\n")
            stream.write(lines[-1][: len(lines[-1]) // 2])  # torn write
        manifest = ShardManifest(path, EvaluationTask("ibex", seed=5).identity())
        assert len(manifest) == 2  # the two intact shards survive
        assert (20, 10) not in manifest.completed  # the torn one does not

        # Loading must also rewrite the torn bytes away: otherwise the
        # resume run's append would concatenate onto the partial line
        # and permanently corrupt the manifest.
        with open(path) as stream:
            assert len(stream.read().splitlines()) == 3  # header + 2 shards
        events = []
        resumed = evaluate_parallel(
            "ibex",
            30,
            seed=5,
            shard_size=10,
            executor="serial",
            manifest_path=path,
            progress=events.append,
        )
        assert [event.resumed for event in events] == [True, True, False]
        fresh = evaluate_parallel("ibex", 30, seed=5, shard_size=10, executor="serial")
        assert resumed.to_json() == fresh.to_json()
        # The re-appended shard is durable: the next load sees all 3.
        reloaded = ShardManifest(path, EvaluationTask("ibex", seed=5).identity())
        assert len(reloaded) == 3

    def test_fully_resumed_run_builds_no_worker_stack(self, tmp_path, monkeypatch):
        """When every shard comes from the manifest there is nothing to
        evaluate, so the (expensive) per-worker template build must not
        happen at all."""
        import repro.evaluation.backends.executors as executors_module

        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )

        def forbidden(self, task):
            raise AssertionError("ShardEvaluator built with zero pending shards")

        monkeypatch.setattr(executors_module.ShardEvaluator, "__init__", forbidden)
        resumed = evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        assert len(resumed) == 30

    def test_caller_supplied_executor_instance_is_not_mutated(self):
        executor = SerialExecutor()
        evaluate_parallel(
            "ibex", 20, seed=1, shard_size=10, executor=executor, processes=2
        )
        assert executor.processes is None

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 30, seed=5, shard_size=10, executor="serial", manifest_path=path
        )
        with open(path) as stream:
            lines = stream.read().splitlines()
        lines[1] = lines[1][:10]  # corrupt a middle line
        with open(path, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt shard manifest"):
            ShardManifest(path, EvaluationTask("ibex", seed=5).identity())

    def test_manifest_header_key_matches_task_identity(self, tmp_path):
        path = self._manifest_path(tmp_path)
        evaluate_parallel(
            "ibex", 10, seed=1, shard_size=10, executor="serial", manifest_path=path
        )
        with open(path) as stream:
            header = json.loads(stream.readline())
        assert header["manifest"] == "evaluation-shards"
        assert header["key"] == EvaluationTask("ibex", seed=1).identity()
        assert header["key"]["core"] == "ibex"
        assert header["key"]["seed"] == 1

    def test_identity_keys_default_generator_by_absence(self):
        """Back-compat: manifests written before generation strategies
        existed carry no generator key, and the default random strategy
        must keep matching them; non-default strategies (and steered
        states) get their own keys."""
        random_key = EvaluationTask("ibex", seed=1).identity()
        assert "generator" not in random_key
        assert "generator_state" not in random_key
        coverage_key = EvaluationTask(
            "ibex", seed=1, generator_name="coverage"
        ).identity()
        assert coverage_key["generator"] == "coverage"
        steered_key = EvaluationTask(
            "ibex", seed=1, generator_name="coverage", generator_state='{"a": 1}'
        ).identity()
        assert steered_key != coverage_key
        assert steered_key["generator_state"]
