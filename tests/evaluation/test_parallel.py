"""Tests for the multi-process evaluator."""

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.parallel import evaluate_parallel
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore


def sequential_dataset(count, seed):
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    return evaluator.evaluate_many(generator.iter_generate(count))


def test_empty_count():
    dataset = evaluate_parallel("ibex", 0, seed=1)
    assert len(dataset) == 0


def test_single_process_matches_sequential():
    parallel = evaluate_parallel("ibex", 60, seed=9, processes=1, shard_size=25)
    sequential = sequential_dataset(60, seed=9)
    assert len(parallel) == len(sequential)
    for a, b in zip(parallel, sequential):
        assert a == b


def test_multi_process_matches_sequential():
    parallel = evaluate_parallel("ibex", 120, seed=9, processes=2, shard_size=30)
    sequential = sequential_dataset(120, seed=9)
    assert len(parallel) == len(sequential)
    for a, b in zip(parallel, sequential):
        assert a == b


def test_results_ordered_by_test_id():
    dataset = evaluate_parallel("ibex", 80, seed=2, processes=2, shard_size=16)
    ids = [result.test_id for result in dataset]
    assert ids == sorted(ids) == list(range(80))


def test_metadata_fields():
    dataset = evaluate_parallel("ibex", 10, seed=0, processes=1)
    assert dataset.core_name == "ibex"
    assert dataset.attacker_name == "retirement-timing"


def test_tail_shard_identical_across_paths():
    """Regression: the final tail shard (count not divisible by
    shard_size) and the processes=1 path must go through the same shard
    plan and worker loop as the pool path — byte-identical output."""
    single = evaluate_parallel("ibex", 47, seed=4, processes=1, shard_size=10)
    pooled = evaluate_parallel("ibex", 47, seed=4, processes=2, shard_size=10)
    sequential = sequential_dataset(47, seed=4)
    assert single.to_json() == pooled.to_json() == sequential.to_json()
    assert [result.test_id for result in single] == list(range(47))


def test_single_process_uses_the_common_shard_loop(monkeypatch):
    """processes=1 must not grow a bespoke evaluation path: it has to
    degenerate to the registered serial backend's shard loop."""
    from repro.evaluation.backends import executors as executors_module

    calls = []
    original = executors_module.SerialExecutor.run

    def spy(self, task, shards):
        calls.append(list(shards))
        return original(self, task, shards)

    monkeypatch.setattr(executors_module.SerialExecutor, "run", spy)
    evaluate_parallel("ibex", 25, seed=1, processes=1, shard_size=10)
    assert calls == [[(0, 10), (10, 10), (20, 5)]]
