"""Tests for attacker models."""

from repro.attacker.base import Attacker
from repro.attacker.cache_state import CacheStateAttacker
from repro.attacker.retirement import RetirementTimingAttacker, TotalTimeAttacker
from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.uarch.ibex import IbexCore


def simulate(source, regs=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return IbexCore().simulate(program, state)


def test_retirement_attacker_observation_is_cycle_sequence():
    result = simulate("nop\nnop")
    attacker = RetirementTimingAttacker()
    assert attacker.observe(result) == result.trace.retirement_cycles


def test_retirement_attacker_distinguishes_alignment():
    attacker = RetirementTimingAttacker()
    a = simulate("lw x1, 0(x2)", regs={2: 0x100})
    b = simulate("lw x1, 0(x2)", regs={2: 0x102})
    assert attacker.distinguishes(a, b)


def test_retirement_attacker_ignores_data_values():
    attacker = RetirementTimingAttacker()
    a = simulate("add x1, x2, x3", regs={2: 1, 3: 2})
    b = simulate("add x1, x2, x3", regs={2: 1000, 3: 2000})
    assert not attacker.distinguishes(a, b)


def test_retirement_attacker_sees_intermediate_timing():
    # Same total time, different per-instruction retirement profile.
    attacker = RetirementTimingAttacker()
    total = TotalTimeAttacker()
    a = simulate("slli x1, x2, 9\nslli x3, x4, 1")
    b = simulate("slli x1, x2, 1\nslli x3, x4, 9")
    assert total.observe(a) == total.observe(b)
    assert attacker.distinguishes(a, b)


def test_total_time_attacker_weaker():
    total = TotalTimeAttacker()
    a = simulate("slli x1, x2, 1")
    b = simulate("slli x1, x2, 31")
    assert total.distinguishes(a, b)


def test_cache_attacker_defaults_empty():
    attacker = CacheStateAttacker()
    a = simulate("lw x1, 0(x2)", regs={2: 0x100})
    b = simulate("lw x1, 0(x2)", regs={2: 0x200})
    assert attacker.observe(a) == ()
    assert not attacker.distinguishes(a, b)


def test_cache_attacker_reads_uarch_state():
    attacker = CacheStateAttacker()
    a = simulate("nop")
    b = simulate("nop")
    a.uarch_state["dcache_tags"] = (1, None)
    b.uarch_state["dcache_tags"] = (2, None)
    assert attacker.distinguishes(a, b)


def test_base_attacker_is_abstract():
    import pytest

    with pytest.raises(NotImplementedError):
        Attacker().observe(simulate("nop"))
