"""Cross-cutting property-based and differential tests.

These pin down system-level invariants: all cores implement the same
architectural semantics as the pure ISA executor; timing models are
deterministic; synthesis is deterministic and always yields correct
contracts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.isa.executor import execute_program
from repro.isa.instructions import Instruction, Opcode, OPCODE_INFO
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.synthesis.metrics import verify_contract_correctness
from repro.synthesis.synthesizer import synthesize
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexConfig, IbexCore

TEMPLATE = build_riscv_template()

_STRAIGHT_LINE_OPCODES = [
    opcode
    for opcode, info in OPCODE_INFO.items()
    if not info.is_control and info.category.value != "system"
]


def _instruction_from_seed(seed: int) -> Instruction:
    rng = random.Random(seed)
    opcode = _STRAIGHT_LINE_OPCODES[rng.randrange(len(_STRAIGHT_LINE_OPCODES))]
    info = OPCODE_INFO[opcode]
    kwargs = {}
    if info.has_rd:
        kwargs["rd"] = rng.randint(0, 31)
    if info.has_rs1:
        kwargs["rs1"] = rng.randint(0, 31)
    if info.has_rs2:
        kwargs["rs2"] = rng.randint(0, 31)
    if info.has_imm:
        if opcode in (Opcode.SLLI, Opcode.SRLI, Opcode.SRAI):
            kwargs["imm"] = rng.randint(0, 31)
        elif opcode in (Opcode.LUI, Opcode.AUIPC):
            kwargs["imm"] = rng.getrandbits(20)
        else:
            kwargs["imm"] = rng.randint(-2048, 2047)
    return Instruction(opcode, **kwargs)


_program_strategy = st.lists(
    st.integers(0, 2**32 - 1).map(_instruction_from_seed),
    min_size=1,
    max_size=12,
).map(Program)

_regs_strategy = st.lists(
    st.integers(0, 2**32 - 1), min_size=32, max_size=32
)


@given(_program_strategy, _regs_strategy)
@settings(max_examples=60, deadline=None)
def test_cores_architecturally_equivalent_to_isa(program, regs):
    """Differential test: both timing models retire exactly the ISA
    execution (straight-line programs)."""
    reference_state = ArchState(pc=program.base_address, regs=regs)
    reference_records = execute_program(program, reference_state)

    for core in (IbexCore(), CVA6Core()):
        state = ArchState(pc=program.base_address, regs=regs)
        result = core.simulate(program, state)
        assert result.final_state == reference_state
        core_records = result.trace.exec_records
        assert len(core_records) == len(reference_records)
        for mine, reference in zip(core_records, reference_records):
            assert mine.instruction == reference.instruction
            assert mine.rd_value == reference.rd_value
            assert mine.next_pc == reference.next_pc


@given(_program_strategy, _regs_strategy)
@settings(max_examples=40, deadline=None)
def test_timing_deterministic(program, regs):
    for core in (
        IbexCore(),
        IbexCore(IbexConfig(compressed_fetch=True)),
        IbexCore(IbexConfig(dcache=True)),
        CVA6Core(),
    ):
        state = ArchState(pc=program.base_address, regs=regs)
        first = core.simulate(program, state).trace.retirement_cycles
        second = core.simulate(program, state).trace.retirement_cycles
        assert first == second


@given(_program_strategy, _regs_strategy)
@settings(max_examples=40, deadline=None)
def test_retirement_cycles_non_decreasing(program, regs):
    for core in (IbexCore(), CVA6Core()):
        state = ArchState(pc=program.base_address, regs=regs)
        cycles = core.simulate(program, state).trace.retirement_cycles
        assert all(b >= a for a, b in zip(cycles, cycles[1:]))
        assert cycles[0] >= 1


@st.composite
def _dataset_strategy(draw):
    entries = draw(
        st.lists(
            st.tuples(
                st.booleans(),
                st.sets(st.integers(0, 20), min_size=0, max_size=4),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return EvaluationDataset(
        [
            TestCaseResult(index, distinguishable, frozenset(atoms))
            for index, (distinguishable, atoms) in enumerate(entries)
        ]
    )


@given(_dataset_strategy())
@settings(max_examples=40, deadline=None)
def test_synthesis_always_correct_and_deterministic(dataset):
    first = synthesize(dataset, TEMPLATE)
    second = synthesize(dataset, TEMPLATE)
    assert first.contract == second.contract
    assert verify_contract_correctness(first.contract, dataset)
    # Objective consistency: reported FPs equal recomputed FPs.
    assert first.false_positives == first.instance.false_positive_weight(
        first.contract.atom_ids
    )


@given(_dataset_strategy())
@settings(max_examples=30, deadline=None)
def test_restricted_synthesis_never_more_precise(dataset):
    """A restricted template cannot beat the full template's optimum
    on the same data (it searches a subset of contracts)."""
    full = synthesize(dataset, TEMPLATE)
    restricted_ids = frozenset(range(0, 10))
    restricted = synthesize(dataset, TEMPLATE, allowed_atom_ids=restricted_ids)
    # The restricted objective counts only coverable cases; compare on
    # the restricted instance's own terms: its optimum cannot have
    # fewer FPs than the full optimum restricted to the same cases.
    assert restricted.contract.atom_ids <= restricted_ids
    assert verify_contract_correctness(
        restricted.contract, dataset, allowed_atom_ids=restricted_ids
    )
