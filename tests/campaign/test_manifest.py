"""Tests for the campaign cell manifest (JSONL checkpointing)."""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignKeyError,
    CampaignManifest,
    CellOutcome,
    load_outcomes,
)
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.template import template_digest

#: Digest of the registered template the test cells name; outcomes
#: must carry it or stored() treats them as computed under a
#: differently-defined template.
_DIGEST = template_digest(TEMPLATE_REGISTRY.create("riscv-rv32im"))


def _cell(**overrides):
    defaults = dict(
        core="ibex",
        attacker="retirement-timing",
        template="riscv-rv32im",
        restriction=None,
        solver="greedy",
        budget=10,
        seed=0,
        verify=0,
    )
    defaults.update(overrides)
    return CampaignCell(**defaults)


def _outcome(cell, atom_ids=(1, 2, 3), digest=_DIGEST):
    return CellOutcome(
        cell=cell,
        atom_ids=tuple(atom_ids),
        false_positives=0,
        test_cases=cell.budget,
        distinguishable=4,
        optimal=True,
        solver_name=cell.solver,
        satisfied=None,
        timings={"total": 0.5, "synthesis": 0.1},
        cache_hit=False,
        dataset_reused=False,
        template_digest=digest,
    )


class TestRoundTrip:
    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        cells = [_cell(budget=10), _cell(budget=20)]
        for cell in cells:
            manifest.append_cell(_outcome(cell))

        reloaded = CampaignManifest(path, "sweep")
        assert len(reloaded) == 2
        stored = reloaded.stored(cells)
        outcome = stored[cells[0].key()]
        assert outcome.resumed  # loaded outcomes are marked resumed
        assert outcome.cell == cells[0]
        assert outcome.atom_ids == (1, 2, 3)
        assert outcome.timings["total"] == 0.5

    def test_stored_matches_by_full_identity(self, tmp_path):
        """A cell whose solver or budget changed reuses nothing."""
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        manifest.append_cell(_outcome(_cell(budget=10)))
        assert manifest.stored([_cell(budget=10)])
        assert not manifest.stored([_cell(budget=11)])
        assert not manifest.stored([_cell(solver="scipy-milp")])
        assert not manifest.stored([_cell(verify=None)])

    def test_stale_template_digest_is_not_reused(self, tmp_path):
        """A cell names its template by registry name only; an outcome
        whose stored atom-list digest no longer matches the registered
        template (the template definition changed between runs) must be
        re-run, not resumed.  Outcomes from pre-digest manifests
        (empty digest) are likewise dropped."""
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        current = _cell(budget=10)
        stale = _cell(budget=20)
        legacy = _cell(budget=30)
        manifest.append_cell(_outcome(current))
        manifest.append_cell(_outcome(stale, digest="00000000"))
        manifest.append_cell(_outcome(legacy, digest=""))
        stored = CampaignManifest(path, "sweep").stored([current, stale, legacy])
        assert set(stored) == {current.key()}

    def test_grid_extension_keeps_stored_cells(self, tmp_path):
        """The campaign analogue of budget extension: growing the grid
        reuses every stored cell still present in the plan."""
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        manifest.append_cell(_outcome(_cell(budget=10)))
        extended_plan = [_cell(budget=10), _cell(budget=20), _cell(core="cva6")]
        stored = CampaignManifest(path, "sweep").stored(extended_plan)
        assert set(stored) == {_cell(budget=10).key()}

    def test_load_outcomes_in_plan_order(self, tmp_path):
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        first, second, third = _cell(budget=10), _cell(budget=20), _cell(budget=30)
        manifest.append_cell(_outcome(third))
        manifest.append_cell(_outcome(first))
        outcomes = load_outcomes(path, "sweep", [first, second, third])
        assert [outcome.cell.budget for outcome in outcomes] == [10, 30]


class TestRobustness:
    def test_campaign_name_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "c.cells.jsonl")
        CampaignManifest(path, "sweep").append_cell(_outcome(_cell()))
        with pytest.raises(CampaignKeyError, match="different campaign"):
            CampaignManifest(path, "other-sweep")

    def test_torn_trailing_line_is_discarded_and_rewritten(self, tmp_path):
        """A campaign killed mid-append leaves a partial final line;
        loading must drop that cell, keep the intact ones, and rewrite
        the torn bytes so the next append lands cleanly."""
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        kept = _cell(budget=10)
        torn = _cell(budget=20)
        manifest.append_cell(_outcome(kept))
        manifest.append_cell(_outcome(torn))
        with open(path) as stream:
            lines = stream.read().splitlines()
        with open(path, "w") as stream:
            stream.write("\n".join(lines[:-1]) + "\n")
            stream.write(lines[-1][: len(lines[-1]) // 2])  # torn write

        recovered = CampaignManifest(path, "sweep")
        assert len(recovered) == 1
        assert kept.key() in recovered.completed
        assert torn.key() not in recovered.completed
        with open(path) as stream:
            assert len(stream.read().splitlines()) == 2  # header + intact cell

        # Re-appending after recovery is durable and parseable.
        recovered.append_cell(_outcome(torn))
        reloaded = CampaignManifest(path, "sweep")
        assert len(reloaded) == 2

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        manifest.append_cell(_outcome(_cell(budget=10)))
        manifest.append_cell(_outcome(_cell(budget=20)))
        with open(path) as stream:
            lines = stream.read().splitlines()
        lines[1] = lines[1][:10]
        with open(path, "w") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt campaign manifest"):
            CampaignManifest(path, "sweep")

    def test_reset_drops_every_stored_cell(self, tmp_path):
        path = str(tmp_path / "c.cells.jsonl")
        manifest = CampaignManifest(path, "sweep")
        manifest.append_cell(_outcome(_cell()))
        manifest.reset()
        assert len(manifest) == 0
        assert len(CampaignManifest(path, "sweep")) == 0
        with open(path) as stream:
            header = json.loads(stream.readline())
        assert header["key"] == {"campaign": "sweep"}
