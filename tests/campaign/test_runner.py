"""End-to-end tests for the campaign runner: grid execution,
cell-granularity kill/resume, and cross-cell dataset-cache reuse.

These are the ``campaign``-marked CI smoke suite
(``pytest -m campaign``): tiny budgets, every feature exercised.
"""

import os
import time

import pytest

import repro.pipeline.pipeline as pipeline_module
from repro.campaign import CampaignRunner, CampaignSpec, run_campaign
from repro.pipeline import SynthesisPipeline

pytestmark = pytest.mark.campaign


def _spec(**overrides):
    settings = dict(
        name="test-sweep",
        cores=("ibex",),
        solvers=("greedy",),
        budgets=(30,),
        verify=0,
    )
    settings.update(overrides)
    return CampaignSpec(**settings)


class _GeneratorCounter:
    """Counts evaluation-stack constructions inside the pipeline — one
    per dataset actually generated, zero on cache hits."""

    def __init__(self, monkeypatch):
        self.count = 0
        original = pipeline_module.SynthesisPipeline.resolve_generator

        def counting(pipeline, template):
            self.count += 1
            return original(pipeline, template)

        monkeypatch.setattr(
            pipeline_module.SynthesisPipeline, "resolve_generator", counting
        )


class TestGridExecution:
    def test_two_by_two_grid_completes(self, tmp_path):
        """The acceptance grid: 2 cores x 2 attackers x 2 budgets."""
        spec = _spec(
            cores=("ibex", "ibex-dcache"),
            attackers=("retirement-timing", "total-time"),
            budgets=(20, 40),
        )
        result = run_campaign(spec, results_dir=str(tmp_path))
        assert len(result.outcomes) == 8
        # Result order is plan order regardless of execution order.
        assert [o.cell.budget for o in result.outcomes[:2]] == [20, 40]
        assert all(o.atom_count > 0 for o in result.outcomes)
        assert os.path.exists(result.manifest_path)
        table = result.render()
        for column in ("core", "attacker", "budget", "atoms"):
            assert column in table
        # Single-valued axes (template, solver, seed) are not columns.
        assert "solver" not in table.splitlines()[1]

    def test_outcomes_match_standalone_pipelines(self, tmp_path):
        spec = _spec(cores=("ibex",), budgets=(25,), seeds=(3,))
        result = run_campaign(spec, results_dir=str(tmp_path))
        standalone = (
            SynthesisPipeline()
            .core("ibex")
            .solver("greedy")
            .budget(25, 3)
            .verify(0)
            .run()
        )
        assert result.outcomes[0].atom_ids == tuple(
            sorted(standalone.contract.atom_ids)
        )

    def test_adaptive_cells_sweep_like_any_other(self, tmp_path):
        """A generators-axis campaign with adaptive cells: outcomes
        match the standalone adaptive pipeline, and the generator
        becomes a comparison column."""
        spec = _spec(
            cores=("ibex-dcache",),
            attackers=("cache-state",),
            templates=("riscv-mem",),
            generators=("random", "coverage"),
            budgets=(120,),
            seeds=(7,),
            adaptive_rounds=3,
        )
        result = run_campaign(spec, results_dir=str(tmp_path))
        assert len(result.outcomes) == 2
        standalone = (
            SynthesisPipeline()
            .core("ibex-dcache")
            .attacker("cache-state")
            .template("riscv-mem")
            .solver("greedy")
            .budget(120, 7)
            .adaptive(generator="coverage", rounds=3, batch=40)
            .verify(0)
            .run()
        )
        coverage_outcome = result.outcome(generator="coverage")
        assert coverage_outcome.atom_ids == tuple(
            sorted(standalone.contract.atom_ids)
        )
        assert coverage_outcome.test_cases == len(standalone.dataset)
        assert "generator" in result.comparison_table()
        # Adaptive cells resume at cell granularity like any other.
        resumed = run_campaign(spec, results_dir=str(tmp_path))
        assert resumed.resumed_count == 2

    def test_parallel_cells_match_serial(self, tmp_path):
        spec = _spec(
            cores=("ibex", "ibex-dcache"), budgets=(15, 30), solvers=("greedy",)
        )
        serial = run_campaign(
            spec, results_dir=str(tmp_path / "serial"), max_parallel_cells=1
        )
        parallel = run_campaign(
            spec, results_dir=str(tmp_path / "parallel"), max_parallel_cells=4
        )
        assert [o.atom_ids for o in serial.outcomes] == [
            o.atom_ids for o in parallel.outcomes
        ]

    def test_filters_restrict_the_plan(self, tmp_path):
        runner = CampaignRunner(
            _spec(cores=("ibex", "ibex-dcache"), budgets=(10, 20)),
            results_dir=str(tmp_path),
            filters={"core": "ibex", "budget": "20"},
        )
        assert [cell.label() for cell in runner.cells()] == [
            "core=ibex attacker=retirement-timing template=riscv-rv32im "
            "restrict=- solver=greedy budget=20 seed=0"
        ]
        with pytest.raises(ValueError, match="match none"):
            CampaignRunner(
                _spec(), results_dir=str(tmp_path), filters={"core": "cva6"}
            ).cells()


class TestKillResume:
    def test_killed_campaign_resumes_at_cell_granularity(self, tmp_path):
        """A campaign killed after two cells keeps them; the resumed
        run re-executes only the other two and reproduces a fresh
        run's outcomes exactly."""
        spec = _spec(cores=("ibex", "ibex-dcache"), budgets=(10, 20))

        class Killed(Exception):
            pass

        def kill_after_two(event):
            if event.completed_cells == 2:
                raise Killed()

        with pytest.raises(Killed):
            run_campaign(spec, results_dir=str(tmp_path), progress=kill_after_two)

        events = []
        resumed = run_campaign(spec, results_dir=str(tmp_path), progress=events.append)
        assert [event.resumed for event in events] == [True, True, False, False]
        assert resumed.resumed_count == 2

        fresh = run_campaign(spec, results_dir=str(tmp_path / "fresh"))
        assert [o.atom_ids for o in resumed.outcomes] == [
            o.atom_ids for o in fresh.outcomes
        ]

    def test_parallel_campaign_checkpoints_cells_as_they_complete(self, tmp_path):
        """With max_parallel_cells > 1, every cell handled before the
        kill is in the manifest — a parallel campaign must not defer
        checkpointing to the end of the run."""
        spec = _spec(cores=("ibex", "ibex-dcache"), budgets=(10, 20))

        class Killed(Exception):
            pass

        def kill_after_two(event):
            if event.completed_cells == 2:
                raise Killed()

        with pytest.raises(Killed):
            run_campaign(
                spec,
                results_dir=str(tmp_path),
                max_parallel_cells=2,
                progress=kill_after_two,
            )
        status = CampaignRunner(spec, results_dir=str(tmp_path)).status()
        assert len(status.completed) >= 2

        events = []
        resumed = run_campaign(
            spec,
            results_dir=str(tmp_path),
            max_parallel_cells=2,
            progress=events.append,
        )
        assert sum(1 for event in events if event.resumed) >= 2
        fresh = run_campaign(spec, results_dir=str(tmp_path / "fresh"))
        assert [o.atom_ids for o in resumed.outcomes] == [
            o.atom_ids for o in fresh.outcomes
        ]

    def test_parallel_cell_failure_keeps_completed_siblings(
        self, tmp_path, monkeypatch
    ):
        """A failing cell re-raises, but siblings that finished before
        it stay checkpointed."""
        spec = _spec(cores=("ibex", "ibex-dcache"), budgets=(10,))
        runner = CampaignRunner(
            spec, results_dir=str(tmp_path), max_parallel_cells=2
        )
        original = runner._execute

        def flaky(cell, concurrent, group_max):
            if cell.core == "ibex-dcache":
                time.sleep(0.2)  # let the sibling finish first
                raise RuntimeError("boom")
            return original(cell, concurrent, group_max)

        monkeypatch.setattr(runner, "_execute", flaky)
        with pytest.raises(RuntimeError, match="boom"):
            runner.run()
        status = CampaignRunner(spec, results_dir=str(tmp_path)).status()
        assert [cell.core for cell in status.completed] == ["ibex"]

    def test_resume_false_reexecutes_every_cell(self, tmp_path):
        spec = _spec(budgets=(10, 20))
        run_campaign(spec, results_dir=str(tmp_path))
        events = []
        run_campaign(
            spec, results_dir=str(tmp_path), resume=False, progress=events.append
        )
        assert [event.resumed for event in events] == [False, False]

    def test_status_reports_completed_and_pending(self, tmp_path):
        spec = _spec(cores=("ibex", "ibex-dcache"), budgets=(10,))
        runner = CampaignRunner(
            spec, results_dir=str(tmp_path), filters={"core": "ibex"}
        )
        runner.run()
        status = CampaignRunner(spec, results_dir=str(tmp_path)).status()
        assert len(status.completed) == 1 and len(status.pending) == 1
        assert status.completed[0].core == "ibex"
        assert "1/2 cells completed" in status.render()

    def test_report_reads_only_the_manifest(self, tmp_path):
        spec = _spec(budgets=(10, 20))
        executed = run_campaign(spec, results_dir=str(tmp_path))
        report = CampaignRunner(spec, results_dir=str(tmp_path)).report()
        assert [o.atom_ids for o in report.outcomes] == [
            o.atom_ids for o in executed.outcomes
        ]
        assert all(o.resumed for o in report.outcomes)


class TestDatasetReuse:
    def test_shared_key_second_cell_does_zero_generation_work(
        self, tmp_path, monkeypatch
    ):
        """Two cells differing only in a synthesis axis (solver) share
        one dataset cache entry: exactly one generation happens."""
        counter = _GeneratorCounter(monkeypatch)
        spec = _spec(solvers=("greedy", "branch-and-bound"), budgets=(25,))
        result = run_campaign(spec, results_dir=str(tmp_path))
        assert counter.count == 1
        reused = {o.cell.solver: o.dataset_reused for o in result.outcomes}
        assert reused == {"greedy": False, "branch-and-bound": True}
        # Both solved the *same* corpus.
        sizes = {o.test_cases for o in result.outcomes}
        assert sizes == {25}

    def test_smaller_budget_derives_prefix_of_larger_cached_budget(
        self, tmp_path, monkeypatch
    ):
        """Budgets sharing a stream are generated once at the largest
        budget; smaller cells take a byte-identical prefix."""
        counter = _GeneratorCounter(monkeypatch)
        spec = _spec(budgets=(40, 20))
        result = run_campaign(spec, results_dir=str(tmp_path))
        assert counter.count == 1  # only the 40-case corpus is generated
        small = result.outcome(budget=20)
        assert small.dataset_reused
        # The derived prefix equals a from-scratch 20-case evaluation.
        cache_file = small.cell.pipeline(
            cache_dir=os.path.join(str(tmp_path), "cache")
        ).cache_path()
        with open(cache_file) as stream:
            derived = stream.read()
        fresh = SynthesisPipeline().core("ibex").budget(20, 0).evaluate()
        assert derived == fresh.to_json()

    def test_small_budget_provisioning_first_still_generates_group_max(
        self, tmp_path, monkeypatch
    ):
        """Under parallel scheduling a small-budget cell can win the
        group lock before its larger sibling; provisioning must then
        evaluate the group's largest *pending* budget once (serving
        itself a prefix) rather than generating the small corpus and
        forcing the sibling to regenerate from scratch."""
        counter = _GeneratorCounter(monkeypatch)
        spec = _spec(budgets=(40, 20))
        runner = CampaignRunner(spec, results_dir=str(tmp_path))
        small = next(cell for cell in runner.cells() if cell.budget == 20)
        big = next(cell for cell in runner.cells() if cell.budget == 40)
        group_max = {small.dataset_group(): 40}

        # Simulate the race: the small cell provisions first.
        reused = runner._provision_dataset(
            runner.cell_pipeline(small), small, group_max
        )
        assert not reused  # the small cell did the (group-max) work
        assert counter.count == 1
        # Both cache entries now exist; the big cell does nothing new.
        assert runner._provision_dataset(runner.cell_pipeline(big), big, group_max)
        assert counter.count == 1
        with open(runner.cell_pipeline(small).cache_path()) as stream:
            derived = stream.read()
        fresh = SynthesisPipeline().core("ibex").budget(20, 0).evaluate()
        assert derived == fresh.to_json()

    def test_parallel_prefix_reuse_generates_once(self, tmp_path, monkeypatch):
        """The end-to-end invariant: however the scheduler interleaves
        a (40, 20) group with max_parallel_cells=2, exactly one corpus
        is generated."""
        counter = _GeneratorCounter(monkeypatch)
        spec = _spec(budgets=(40, 20))
        result = run_campaign(
            spec, results_dir=str(tmp_path), max_parallel_cells=2
        )
        assert counter.count == 1
        assert result.outcome(budget=20).test_cases == 20

    def test_cache_off_disables_reuse(self, tmp_path, monkeypatch):
        counter = _GeneratorCounter(monkeypatch)
        spec = _spec(solvers=("greedy", "branch-and-bound"), budgets=(15,))
        result = run_campaign(spec, results_dir=str(tmp_path), cache=False)
        assert counter.count == 2
        assert not any(o.dataset_reused for o in result.outcomes)

    def test_result_for_returns_full_pipeline_results(self, tmp_path):
        spec = _spec(budgets=(20,))
        result = run_campaign(spec, results_dir=str(tmp_path))
        cell = result.cells[0]
        pipeline_result = result.result_for(cell)
        assert len(pipeline_result.dataset) == 20
        # A resumed campaign rebuilds the result through the factory.
        resumed = run_campaign(spec, results_dir=str(tmp_path))
        rebuilt = resumed.result_for(cell)
        assert rebuilt.contract.atom_ids == pipeline_result.contract.atom_ids
        assert rebuilt.timings.cache_hit
