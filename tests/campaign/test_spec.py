"""Tests for CampaignSpec expansion: grids, overrides, excludes."""

import pytest

from repro.campaign import CampaignCell, CampaignSpec, filter_cells


def _cell(**overrides):
    defaults = dict(
        core="ibex",
        attacker="retirement-timing",
        template="riscv-rv32im",
        restriction=None,
        solver="greedy",
        budget=10,
        seed=0,
    )
    defaults.update(overrides)
    return CampaignCell(**defaults)


class TestExpansion:
    def test_cross_product_in_axis_order(self):
        spec = CampaignSpec(
            name="grid",
            cores=("ibex", "cva6"),
            budgets=(10, 20),
            seeds=(0, 1),
        )
        cells = spec.expand()
        assert len(cells) == 8
        # Later axes vary fastest: seed, then budget, then core.
        assert [(c.core, c.budget, c.seed) for c in cells[:4]] == [
            ("ibex", 10, 0),
            ("ibex", 10, 1),
            ("ibex", 20, 0),
            ("ibex", 20, 1),
        ]
        assert cells[4].core == "cva6"

    def test_spec_settings_reach_every_cell(self):
        spec = CampaignSpec(name="s", verify=0, fastpath=False, budgets=(5,))
        (cell,) = spec.expand()
        assert cell.verify == 0
        assert not cell.fastpath

    def test_override_rewrites_matching_cells(self):
        spec = CampaignSpec(
            name="s",
            cores=("ibex", "cva6"),
            budgets=(100,),
            overrides={"cva6": {"budget": 30}},
        )
        budgets = {cell.core: cell.budget for cell in spec.expand()}
        assert budgets == {"ibex": 100, "cva6": 30}

    def test_override_collapse_deduplicates_cells(self):
        """Two budgets collapsed to one by an override leave one cell."""
        spec = CampaignSpec(
            name="s",
            cores=("ibex", "cva6"),
            budgets=(10, 20),
            overrides={"cva6": {"budget": 5}},
        )
        cells = spec.expand()
        assert len([c for c in cells if c.core == "ibex"]) == 2
        assert len([c for c in cells if c.core == "cva6"]) == 1

    def test_exclude_predicate_and_dicts(self):
        predicate = CampaignSpec(
            name="s",
            cores=("ibex", "cva6"),
            budgets=(10, 20),
            exclude=lambda cell: cell.core == "cva6" and cell.budget == 20,
        )
        assert len(predicate.expand()) == 3
        dicts = CampaignSpec(
            name="s",
            cores=("ibex", "cva6"),
            budgets=(10, 20),
            exclude=[{"core": "cva6", "budget": 20}],
        )
        assert [c.identity() for c in dicts.expand()] == [
            c.identity() for c in predicate.expand()
        ]

    def test_all_cells_excluded_raises(self):
        spec = CampaignSpec(name="s", exclude=lambda cell: True)
        with pytest.raises(ValueError, match="zero cells"):
            spec.expand()


class TestGeneratorAxis:
    def test_generators_expand_like_any_axis(self):
        spec = CampaignSpec(
            name="gen",
            generators=("random", "coverage"),
            budgets=(10, 20),
        )
        cells = spec.expand()
        assert len(cells) == 4
        assert [(c.generator, c.budget) for c in cells] == [
            ("random", 10),
            ("random", 20),
            ("coverage", 10),
            ("coverage", 20),
        ]
        assert spec.grid_shape()["generator"] == 2

    def test_unknown_generator_fails_fast(self):
        with pytest.raises(ValueError, match="unknown generator"):
            CampaignSpec(name="g", generators=("genetic",)).expand()

    def test_adaptive_settings_reach_every_cell(self):
        spec = CampaignSpec(
            name="gen",
            generators=("coverage",),
            adaptive_rounds=5,
            batch=13,
        )
        (cell,) = spec.expand()
        assert cell.adaptive_rounds == 5 and cell.batch == 13

    def test_adaptive_cell_builds_an_adaptive_pipeline(self):
        (cell,) = CampaignSpec(
            name="gen",
            generators=("coverage",),
            budgets=(60,),
            adaptive_rounds=3,
        ).expand()
        pipeline = cell.pipeline()
        assert pipeline.generator_name() == "coverage"
        assert pipeline._adaptive == {
            "rounds": 3,
            "batch": 20,
            "stop": "contract-stable",
        }

    def test_stop_reaches_the_cell_pipeline(self):
        (cell,) = CampaignSpec(
            name="gen",
            generators=("coverage",),
            budgets=(60,),
            adaptive_rounds=3,
            stop="full-coverage",
        ).expand()
        assert cell.stop == "full-coverage"
        assert cell.pipeline()._adaptive["stop"] == "full-coverage"

    def test_unknown_stop_fails_fast(self):
        with pytest.raises(ValueError, match="unknown stopping rule"):
            CampaignSpec(name="g", adaptive_rounds=2, stop="gut-feeling").expand()

    def test_generator_override_is_applicable(self):
        spec = CampaignSpec(
            name="gen",
            generators=("random", "coverage"),
            overrides={"coverage": {"adaptive_rounds": 4}},
        )
        by_generator = {cell.generator: cell for cell in spec.expand()}
        assert by_generator["random"].adaptive_rounds is None
        assert by_generator["coverage"].adaptive_rounds == 4

    def test_bad_adaptive_settings_raise(self):
        with pytest.raises(ValueError, match="adaptive_rounds"):
            CampaignSpec(name="g", adaptive_rounds=0).expand()
        with pytest.raises(ValueError, match="batch"):
            CampaignSpec(name="g", batch=0, adaptive_rounds=2).expand()
        # batch/stop without adaptive_rounds would be silently inert.
        with pytest.raises(ValueError, match="adaptive_rounds"):
            CampaignSpec(name="g", batch=10).expand()
        with pytest.raises(ValueError, match="adaptive_rounds"):
            CampaignSpec(name="g", stop="budget").expand()
        # A derived batch needs a positive budget ceiling.
        with pytest.raises(ValueError, match="positive"):
            CampaignSpec(name="g", adaptive_rounds=2, budgets=(0,)).expand()
        assert _cell(adaptive_rounds=2, budget=0, batch=5).effective_batch() == 5


class TestValidation:
    def test_unknown_plugin_names_fail_fast(self):
        with pytest.raises(ValueError, match="axis 'cores'.*unknown core 'rocket'"):
            CampaignSpec(name="s", cores=("ibex", "rocket")).expand()
        with pytest.raises(ValueError, match="unknown attacker"):
            CampaignSpec(name="s", attackers=("oscilloscope",)).expand()
        with pytest.raises(ValueError, match="unknown restriction"):
            CampaignSpec(name="s", restrictions=("everything",)).expand()

    def test_none_restriction_is_the_unrestricted_template(self):
        cells = CampaignSpec(name="s", restrictions=(None, "base")).expand()
        assert [cell.restriction for cell in cells] == [None, "base"]

    def test_bad_overrides_fail_fast(self):
        with pytest.raises(ValueError, match="matches no declared axis value"):
            CampaignSpec(name="s", overrides={"rocket": {"budget": 1}}).expand()
        with pytest.raises(ValueError, match="unknown cell field"):
            CampaignSpec(
                name="s",
                cores=("ibex",),
                overrides={"ibex": {"budgett": 1}},
            ).expand()

    def test_empty_axes_and_name_raise(self):
        with pytest.raises(ValueError, match="non-empty name"):
            CampaignSpec(name="").expand()
        with pytest.raises(ValueError, match="axis 'cores' is empty"):
            CampaignSpec(name="s", cores=()).expand()
        with pytest.raises(ValueError, match="non-negative"):
            CampaignSpec(name="s", budgets=(-1,)).expand()


class TestCells:
    def test_identity_round_trips_through_cell_fields(self):
        cell = _cell(restriction="base", verify=5)
        assert CampaignCell(**cell.identity()) == cell

    def test_key_is_canonical_and_axis_lookup_works(self):
        cell = _cell()
        assert cell.key() == CampaignCell(**cell.identity()).key()
        assert cell.axis("budget") == 10
        with pytest.raises(ValueError, match="unknown campaign axis"):
            cell.axis("flux")

    def test_dataset_group_ignores_synthesis_axes(self):
        base = _cell()
        assert base.dataset_group() == _cell(solver="scipy-milp").dataset_group()
        assert base.dataset_group() == _cell(restriction="base").dataset_group()
        assert base.dataset_group() == _cell(budget=99).dataset_group()
        assert base.dataset_group() != _cell(seed=1).dataset_group()
        assert base.dataset_group() != _cell(core="cva6").dataset_group()

    def test_pipeline_reflects_the_cell(self, tmp_path):
        cell = _cell(restriction="base", budget=25, seed=3)
        pipeline = cell.pipeline(cache_dir=str(tmp_path))
        assert pipeline.core_name() == "ibex"
        assert pipeline.solver_name() == "greedy"
        assert "seed3-n25" in pipeline.cache_path()

    def test_dataset_group_includes_generator(self):
        """Regression companion to the pipeline cache-key test: cells
        with different strategies must never share a dataset group (a
        group shares cached corpora by prefix)."""
        assert _cell().dataset_group() != _cell(generator="coverage").dataset_group()
        assert _cell().dataset_group() != _cell(adaptive_rounds=4).dataset_group()

    def test_effective_batch_splits_the_budget(self):
        assert _cell().effective_batch() is None
        assert _cell(adaptive_rounds=4, budget=100).effective_batch() == 25
        assert _cell(adaptive_rounds=4, budget=100, batch=10).effective_batch() == 10
        assert _cell(adaptive_rounds=7, budget=3).effective_batch() == 1

    def test_effective_rounds_respect_the_budget_ceiling(self):
        """A derived batch never lets rounds * batch exceed the cell
        budget — tiny budgets clamp the round count instead."""
        assert _cell().effective_rounds() is None
        assert _cell(adaptive_rounds=4, budget=100).effective_rounds() == 4
        small = _cell(adaptive_rounds=7, budget=3)
        assert small.effective_rounds() == 3
        assert small.effective_rounds() * small.effective_batch() <= small.budget
        # An explicit batch is the user's own ceiling.
        assert _cell(adaptive_rounds=7, budget=3, batch=2).effective_rounds() == 7

    def test_filter_cells_matches_axis_strings(self):
        cells = CampaignSpec(
            name="s",
            cores=("ibex", "cva6"),
            budgets=(10, 20),
            restrictions=(None, "base"),
        ).expand()
        assert all(c.core == "cva6" for c in filter_cells(cells, {"core": "cva6"}))
        assert len(filter_cells(cells, {"budget": "20"})) == 4
        unrestricted = filter_cells(cells, {"restriction": "-"})
        assert all(c.restriction is None for c in unrestricted)
        assert filter_cells(cells, {"core": "rocket"}) == []
