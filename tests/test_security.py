"""Tests for the contract-based program-security auditor."""

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.template import Contract
from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.security.audit import audit_program, ground_truth_leakage
from repro.security.policy import SecurityPolicy, registers
from repro.uarch.ibex import IbexCore


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


@pytest.fixture(scope="module")
def ibex_contract(template):
    """A contract synthesized for Ibex once per test module."""
    from repro.evaluation.evaluator import TestCaseEvaluator
    from repro.synthesis.synthesizer import synthesize
    from repro.testgen.generator import TestCaseGenerator

    generator = TestCaseGenerator(template, seed=77)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    dataset = evaluator.evaluate_many(generator.iter_generate(2500))
    return synthesize(dataset, template).contract


class TestPolicy:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SecurityPolicy()

    def test_rejects_x0(self):
        with pytest.raises(ValueError):
            SecurityPolicy(secret_registers=frozenset({0}))

    def test_rejects_misaligned_memory(self):
        with pytest.raises(ValueError):
            SecurityPolicy(secret_memory_words=frozenset({0x101}))

    def test_sampling_and_apply(self):
        import random

        policy = SecurityPolicy(
            secret_registers=registers(10),
            secret_memory_words=frozenset({0x100}),
        )
        assignment = policy.sample_assignment(random.Random(0))
        state = policy.apply(ArchState(), assignment)
        assert state.regs[10] == assignment["registers"][10]
        assert state.memory.load_word(0x100) == assignment["memory"][0x100]

    def test_value_pool(self):
        import random

        policy = SecurityPolicy(
            secret_registers=registers(5), value_pool=(1, 2)
        )
        values = {
            policy.sample_assignment(random.Random(i))["registers"][5]
            for i in range(20)
        }
        assert values <= {1, 2}


class TestAudit:
    def test_branch_on_secret_flagged(self, ibex_contract):
        program = assemble("beq a0, zero, 8\nnop\nadd a1, a2, a3")
        policy = SecurityPolicy(
            secret_registers=registers(10), value_pool=(0, 1)
        )
        result = audit_program(program, ibex_contract, policy, samples=8)
        assert not result.secure
        assert result.counterexample is not None
        # The divergence is at the branch (step 0).
        assert result.counterexample.first_divergence_step == 0

    def test_division_by_secret_flagged(self, ibex_contract):
        # Nonzero public dividend: with a zero dividend the early-exit
        # divider is genuinely constant-time and the audit would
        # rightly report "secure".
        program = assemble("div a1, a2, a0")
        base = ArchState()
        base.write_register(12, 0x4000_0000)
        policy = SecurityPolicy(secret_registers=registers(10))
        result = audit_program(
            program, ibex_contract, policy, base_state=base, samples=8
        )
        assert not result.secure

    def test_linear_arithmetic_on_secret_is_safe(self, ibex_contract):
        # add/xor do not leak operands on Ibex; the contract knows it.
        program = assemble("add a1, a0, a2\nxor a3, a1, a4\nand a5, a3, a6")
        policy = SecurityPolicy(secret_registers=registers(10))
        result = audit_program(program, ibex_contract, policy, samples=12)
        assert result.secure
        assert result.samples == 12

    def test_contract_verdicts_sound_on_core(self, ibex_contract):
        """Whatever the audit clears must be attacker-indistinguishable
        on the core (on the sampled secrets)."""
        policy = SecurityPolicy(secret_registers=registers(10))
        sources = [
            "add a1, a0, a2\nsub a3, a1, a0",
            "mul a1, a0, a2",                     # data-independent mult
            "sll a1, a2, a0",                     # shift amount = secret
            "lw a1, 0(a0)",                       # address = secret
            "beq a0, a2, 4\nnop",
        ]
        core = IbexCore()
        for source in sources:
            program = assemble(source)
            audit = audit_program(program, ibex_contract, policy, samples=10, seed=3)
            leaks = ground_truth_leakage(program, core, policy, samples=10, seed=3)
            if audit.secure:
                assert not leaks, "contract cleared a leaking program: %r" % source

    def test_requires_two_samples(self, ibex_contract):
        program = assemble("nop")
        policy = SecurityPolicy(secret_registers=registers(10))
        with pytest.raises(ValueError):
            audit_program(program, ibex_contract, policy, samples=1)

    def test_empty_contract_clears_everything(self, template):
        empty = Contract(template, [])
        program = assemble("div a1, a2, a0")
        policy = SecurityPolicy(secret_registers=registers(10))
        assert audit_program(program, empty, policy, samples=4).secure

    def test_base_state_fixes_public_inputs(self, ibex_contract):
        program = assemble("lw a1, 0(a2)")  # address from PUBLIC a2
        base = ArchState()
        base.write_register(12, 0x100)
        policy = SecurityPolicy(secret_registers=registers(10))
        result = audit_program(
            program, ibex_contract, policy, base_state=base, samples=6
        )
        assert result.secure


class TestGroundTruth:
    def test_branch_on_secret_leaks(self):
        program = assemble("beq a0, zero, 8\nnop\nadd a1, a2, a3")
        policy = SecurityPolicy(
            secret_registers=registers(10), value_pool=(0, 1)
        )
        assert ground_truth_leakage(program, IbexCore(), policy, samples=8)

    def test_add_does_not_leak(self):
        program = assemble("add a1, a0, a2")
        policy = SecurityPolicy(secret_registers=registers(10))
        assert not ground_truth_leakage(program, IbexCore(), policy, samples=8)
