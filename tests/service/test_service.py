"""ContractService and the file-based serve/submit/status front-end."""

import json
import os

import pytest

from repro.service import (
    ContractRequest,
    ContractServer,
    ContractService,
    ContractStore,
    ServiceTicket,
    WorkQueueExecutor,
)
from repro.service.service import (
    load_ticket,
    render_status,
    request_states,
    submit_request,
)

pytestmark = pytest.mark.service


def _service(tmp_path, **overrides):
    store = ContractStore(str(tmp_path / "store"))
    settings = dict(executor="serial")
    settings.update(overrides)
    return ContractService(store, **settings)


def _workqueue_service(tmp_path):
    executor = WorkQueueExecutor(
        queue_dir=str(tmp_path / "queue"),
        embedded_workers=2,
        poll_seconds=0.01,
        wait_for_workers=15.0,
    )
    return _service(tmp_path, executor=executor), executor


class TestContractRequest:
    def test_digest_normalizes_scalars_and_lists(self):
        assert (
            ContractRequest(core="ibex").digest()
            == ContractRequest(core=["ibex"]).digest()
        )
        assert ContractRequest(budget=10).digest() != ContractRequest(budget=20).digest()

    def test_round_trips_through_dict(self):
        request = ContractRequest(core=["ibex", "cva6"], budget=[100, 200], seed=3)
        rebuilt = ContractRequest.from_dict(request.to_dict())
        assert rebuilt.digest() == request.digest()
        assert len(rebuilt.cells()) == 4

    def test_cells_expand_the_cross_product(self):
        request = ContractRequest(budget=[50, 100], seed=[0, 1])
        labels = {(cell.budget, cell.seed) for cell in request.cells()}
        assert labels == {(50, 0), (50, 1), (100, 0), (100, 1)}


class TestContractService:
    def test_miss_executes_then_repeat_serves_from_store(self, tmp_path):
        service = _service(tmp_path)
        request = ContractRequest(budget=40, seed=1, solver="greedy")

        first = service.request(request)
        assert first.executed == 1 and first.from_store == 0
        assert [outcome.resumed for outcome in first.outcomes] == [False]

        second = service.request(request)
        assert second.executed == 0 and second.from_store == 1
        assert [outcome.resumed for outcome in second.outcomes] == [True]
        assert (
            second.outcomes[0].atom_ids == first.outcomes[0].atom_ids
        )

    def test_smaller_budget_schedules_zero_jobs(self, tmp_path):
        service, executor = _workqueue_service(tmp_path)
        big = service.request(ContractRequest(budget=80, seed=1, solver="greedy"))
        assert big.jobs_enqueued > 0

        # The smaller budget is a new cell (executed=1) whose dataset
        # is a prefix of the cached 80-case corpus: the runner derives
        # it without scheduling any evaluation work.
        small = service.request(ContractRequest(budget=40, seed=1, solver="greedy"))
        assert small.executed == 1
        assert small.jobs_enqueued == 0

    def test_partial_hit_executes_only_missing_cells(self, tmp_path):
        service = _service(tmp_path)
        service.request(ContractRequest(budget=40, seed=0, solver="greedy"))
        both = service.request(
            ContractRequest(budget=40, seed=[0, 1], solver="greedy")
        )
        assert both.from_store == 1
        assert both.executed == 1
        # Ticket outcomes follow cell order regardless of how each was
        # served.
        assert [outcome.cell.seed for outcome in both.outcomes] == [0, 1]


class TestServiceTicket:
    def test_round_trips_and_renders(self, tmp_path):
        service = _service(tmp_path)
        ticket = service.request(ContractRequest(budget=40, solver="greedy"))
        rebuilt = ServiceTicket.from_dict(
            json.loads(json.dumps(ticket.to_dict()))
        )
        assert rebuilt.request_id == ticket.request_id
        assert rebuilt.outcomes[0].atom_ids == ticket.outcomes[0].atom_ids
        rendered = rebuilt.render()
        assert ticket.request_id in rendered
        assert "served from" in rendered


class TestFileFrontEnd:
    def test_submit_serve_status_round_trip(self, tmp_path):
        root = str(tmp_path / "svc")
        service = _service(tmp_path)
        request = ContractRequest(budget=40, solver="greedy")

        request_id = submit_request(root, request)
        assert request_states(root)["pending"] == [request_id]

        server = ContractServer(service, root)
        assert server.poll_once() == 1
        assert request_states(root)["pending"] == []
        ticket = load_ticket(root, request_id)
        assert ticket is not None and ticket.executed == 1
        assert request_id in render_status(root)

        # Resubmitting a finished request is a no-op: the done ticket
        # already answers it.
        assert submit_request(root, request) == request_id
        assert server.poll_once() == 0

    def test_failed_requests_land_in_failed_with_the_error(self, tmp_path):
        root = str(tmp_path / "svc")
        service = _service(tmp_path)
        request = ContractRequest(core="no-such-core", budget=10)
        request_id = submit_request(root, request)

        server = ContractServer(service, root)
        assert server.poll_once() == 1
        assert request_states(root)["failed"] == [request_id]
        assert load_ticket(root, request_id) is None
        with open(os.path.join(root, "requests", "failed", request_id + ".json")) as f:
            assert "no-such-core" in json.load(f)["error"]

    def test_serve_exits_on_max_requests(self, tmp_path):
        root = str(tmp_path / "svc")
        service = _service(tmp_path)
        submit_request(root, ContractRequest(budget=40, solver="greedy"))
        server = ContractServer(service, root, max_requests=1, poll_seconds=0.01)
        assert server.serve() == 1
