"""ContractStore: key-addressed persistence plus pipeline integration."""

import pytest

from repro.campaign import CampaignCell, CellOutcome
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.template import template_digest
from repro.pipeline import SynthesisPipeline
from repro.service.store import ContractStore, ContractStoreKeyError

pytestmark = pytest.mark.service

_DIGEST = template_digest(TEMPLATE_REGISTRY.create("riscv-rv32im"))


def _cell(**overrides):
    defaults = dict(
        core="ibex",
        attacker="retirement-timing",
        template="riscv-rv32im",
        restriction=None,
        solver="greedy",
        budget=10,
        seed=0,
        verify=0,
    )
    defaults.update(overrides)
    return CampaignCell(**defaults)


def _outcome(cell, atom_ids=(1, 2, 3), digest=_DIGEST):
    return CellOutcome(
        cell=cell,
        atom_ids=tuple(atom_ids),
        false_positives=0,
        test_cases=cell.budget,
        distinguishable=4,
        optimal=True,
        solver_name=cell.solver,
        satisfied=None,
        timings={"total": 0.5},
        cache_hit=False,
        dataset_reused=False,
        template_digest=digest,
    )


class TestStore:
    def test_put_get_and_persistence(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        cell = _cell()
        assert store.get(cell) is None
        assert store.put(_outcome(cell))
        assert store.get(cell).atom_ids == (1, 2, 3)

        # A fresh handle on the same directory sees the contract, and
        # loaded outcomes are marked as served from the store.
        reopened = ContractStore(str(tmp_path / "store"))
        assert len(reopened) == 1
        assert reopened.get(cell).resumed

    def test_first_write_wins(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        cell = _cell()
        assert store.put(_outcome(cell, atom_ids=(1,)))
        assert not store.put(_outcome(cell, atom_ids=(9, 9)))
        assert store.get(cell).atom_ids == (1,)

    def test_keyed_by_full_cell_identity(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        store.put(_outcome(_cell(budget=10)))
        assert store.get(_cell(budget=10)) is not None
        assert store.get(_cell(budget=20)) is None
        assert store.get(_cell(seed=1)) is None
        assert store.get(_cell(solver="scipy-milp")) is None

    def test_stale_template_digest_misses(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        cell = _cell()
        store.put(_outcome(cell, digest="0" * 40))
        # The registered riscv-rv32im template no longer matches the
        # digest the outcome was computed under: serving it would hand
        # back a contract over different atoms.
        assert store.get(cell) is None

    def test_reload_sees_other_writers(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        other = ContractStore(str(tmp_path / "store"))
        other.put(_outcome(_cell()))
        assert store.get(_cell()) is None  # stale in-memory view
        store.reload()
        assert store.get(_cell()) is not None

    def test_foreign_file_raises_key_error(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "contracts.jsonl").write_text(
            '{"manifest": "contract-store", "version": 1, "key": {"store": "x"}}\n'
        )
        with pytest.raises(ContractStoreKeyError):
            ContractStore(str(root))


class TestPipelineIntegration:
    def test_pipeline_store_persists_result_and_dataset(self, tmp_path):
        store = ContractStore(str(tmp_path / "store"))
        result = (
            SynthesisPipeline()
            .budget(30, seed=2)
            .solver("greedy")
            .store(store)
            .run()
        )
        cell = _cell(budget=30, seed=2, verify=None)
        stored = store.get(cell)
        assert stored is not None
        assert stored.atom_ids == tuple(
            sorted(atom.atom_id for atom in result.contract.atoms)
        )
        # The store's cache directory doubles as the dataset cache.
        import os

        assert os.listdir(store.datasets_dir)

    def test_store_requires_name_addressed_plugins(self, tmp_path):
        from repro.uarch.ibex import IbexCore

        store = ContractStore(str(tmp_path / "store"))
        pipeline = SynthesisPipeline().budget(10).core(IbexCore()).store(store)
        with pytest.raises(ValueError, match="registry name"):
            pipeline.run()
