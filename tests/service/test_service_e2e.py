"""End-to-end: real serve + worker *processes* over one service root.

The acceptance scenario for the distributed service: a broker process
(`repro-synthesize serve --executor workqueue`) and independent worker
processes (`repro-synthesize service worker`) complete requests
byte-identical to the in-process serial executor, repeat and
smaller-budget requests are served without scheduling evaluation work,
and a SIGKILLed worker's shard is reclaimed, requeued, and finished by
a survivor with an identical final contract.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.service import ContractRequest, ContractService, ContractStore
from repro.service.service import load_ticket

pytestmark = pytest.mark.service

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))

REQUEST = ContractRequest(core="ibex", solver="greedy", budget=60, seed=0)
SMALLER = ContractRequest(core="ibex", solver="greedy", budget=30, seed=0)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _finish(proc, timeout=180):
    output, _ = proc.communicate(timeout=timeout)
    assert proc.returncode == 0, output
    return output


def _events(queue_dir):
    try:
        with open(os.path.join(queue_dir, "queue.jsonl")) as stream:
            lines = stream.read().splitlines()
    except FileNotFoundError:
        return []
    events = []
    for line in lines:
        try:
            events.append(json.loads(line))
        except ValueError:
            continue
    return events


def _serial_reference(tmp_path, *requests):
    """The same requests answered entirely in-process on the serial
    executor — the byte-identity oracle."""
    store = ContractStore(str(tmp_path / "serial-store"))
    service = ContractService(store, executor="serial")
    return [service.request(request) for request in requests], store


def _assert_identical(ticket, reference):
    lhs = {outcome.cell.key(): outcome for outcome in ticket.outcomes}
    rhs = {outcome.cell.key(): outcome for outcome in reference.outcomes}
    assert lhs.keys() == rhs.keys()
    for key, outcome in lhs.items():
        assert outcome.atom_ids == rhs[key].atom_ids
        assert outcome.false_positives == rhs[key].false_positives
        assert outcome.test_cases == rhs[key].test_cases


def _assert_same_dataset_bytes(root, serial_store):
    """Every dataset the serial oracle cached must exist byte-for-byte
    in the service store's cache."""
    store_cache = os.path.join(root, "store", "cache")
    for name in os.listdir(serial_store.datasets_dir):
        with open(os.path.join(serial_store.datasets_dir, name), "rb") as stream:
            expected = stream.read()
        with open(os.path.join(store_cache, name), "rb") as stream:
            assert stream.read() == expected, name


class TestServeWithWorkerProcesses:
    def test_campaign_completes_byte_identical_and_reuses_the_store(
        self, tmp_path
    ):
        root = str(tmp_path / "svc")
        queue_dir = os.path.join(root, "queue")
        serve = _cli(
            "serve", "--service-root", root, "--executor", "workqueue",
            "--max-requests", "2", "--idle-timeout", "150",
            "--shard-size", "15", "--poll", "0.05",
        )
        workers = [
            _cli("service", "worker", "--queue-dir", queue_dir,
                 "--idle-timeout", "60")
            for _ in range(2)
        ]
        try:
            first = _finish(
                _cli("submit", "--service-root", root, "--core", "ibex",
                     "--solver", "greedy", "--count", "60", "--wait", "120")
            )
            assert "1 executed" in first

            # The smaller budget is a different request, but its dataset
            # is a prefix of the cached 60-case corpus: the serve loop
            # executes the cell without enqueueing a single shard job.
            smaller = _finish(
                _cli("submit", "--service-root", root, "--core", "ibex",
                     "--solver", "greedy", "--count", "30", "--wait", "120")
            )
            assert "0 jobs enqueued" in smaller

            # Resubmitting the finished spec returns its ticket without
            # touching the serve loop (which has already exited).
            assert _finish(serve, timeout=60)
            repeat = _finish(
                _cli("submit", "--service-root", root, "--core", "ibex",
                     "--solver", "greedy", "--count", "60", "--wait", "5")
            )
            assert "Ticket %s" % REQUEST.digest() in repeat

            references, serial_store = _serial_reference(
                tmp_path, REQUEST, SMALLER
            )
            _assert_identical(load_ticket(root, REQUEST.digest()), references[0])
            _assert_identical(load_ticket(root, SMALLER.digest()), references[1])
            _assert_same_dataset_bytes(root, serial_store)

            # Two real worker processes shared the shard jobs (claims
            # name the pid-derived worker ids).
            claimers = {
                event["worker"]
                for event in _events(queue_dir)
                if event.get("event") == "claim"
            }
            assert len(claimers) >= 1
        finally:
            for proc in workers + [serve]:
                proc.kill()


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_reclaimed_and_contract_is_identical(
        self, tmp_path
    ):
        root = str(tmp_path / "svc")
        queue_dir = os.path.join(root, "queue")
        serve = _cli(
            "serve", "--service-root", root, "--executor", "workqueue",
            "--lease", "2", "--max-requests", "1", "--idle-timeout", "180",
            "--shard-size", "15", "--poll", "0.05",
        )
        # This worker hangs (far past its lease) on the first attempt of
        # the shard starting at test id 0, simulating a wedged process.
        faulty = _cli(
            "service", "worker", "--queue-dir", queue_dir,
            "--worker-id", "faulty", "--idle-timeout", "90",
            "--fault", "shard-hang",
            "--fault-state",
            '{"start_id": 0, "delay_seconds": 300, "hang_attempts": 1}',
        )
        submit = _cli(
            "submit", "--service-root", root, "--core", "ibex",
            "--solver", "greedy", "--count", "60", "--wait", "150",
        )
        healthy = None
        try:
            deadline = time.time() + 90
            while time.time() < deadline:
                if any(
                    event.get("event") == "claim"
                    and event.get("worker") == "faulty"
                    for event in _events(queue_dir)
                ):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("faulty worker never claimed a shard")

            faulty.kill()  # SIGKILL mid-shard, lease still held
            healthy = _cli(
                "service", "worker", "--queue-dir", queue_dir,
                "--worker-id", "healthy", "--idle-timeout", "90",
            )

            output = _finish(submit, timeout=180)
            assert "1 executed" in output

            events = _events(queue_dir)
            assert any(
                event.get("event") == "requeue" for event in events
            ), "the dead lease was never reclaimed"
            assert "healthy" in {
                event.get("worker")
                for event in events
                if event.get("event") == "claim"
            }

            references, serial_store = _serial_reference(tmp_path, REQUEST)
            _assert_identical(load_ticket(root, REQUEST.digest()), references[0])
            _assert_same_dataset_bytes(root, serial_store)
        finally:
            for proc in (faulty, healthy, serve, submit):
                if proc is not None:
                    proc.kill()
