"""WorkQueueExecutor: byte-identity, reuse, retries, and liveness.

These run self-contained with embedded (in-thread) workers; the
subprocess story — real worker processes, SIGKILL recovery — lives in
``test_service_e2e.py``.
"""

import pytest

from repro.evaluation.backends import EXECUTOR_REGISTRY
from repro.evaluation.parallel import evaluate_parallel
from repro.resilience.errors import ShardExecutionError
from repro.resilience.injection import inject_fault
from repro.resilience.retry import RetryPolicy
from repro.service.queue import QueueUnavailableError
from repro.service.workqueue import WorkQueueExecutor

pytestmark = pytest.mark.service

COUNT = 48
SEED = 7


def _executor(tmp_path, **overrides):
    settings = dict(
        queue_dir=str(tmp_path / "queue"),
        embedded_workers=2,
        poll_seconds=0.01,
        wait_for_workers=15.0,
    )
    settings.update(overrides)
    return WorkQueueExecutor(**settings)


@pytest.fixture(scope="module")
def serial_json():
    dataset = evaluate_parallel(
        "ibex", COUNT, seed=SEED, shard_size=11, executor="serial"
    )
    return dataset.to_json()


class TestRegistration:
    def test_registered_with_doc_line(self):
        assert "workqueue" in EXECUTOR_REGISTRY.names()
        assert "service worker" in EXECUTOR_REGISTRY.describe("workqueue")

    def test_marked_external_on_factory_and_instance(self):
        assert getattr(EXECUTOR_REGISTRY.get("workqueue"), "external", False)
        assert WorkQueueExecutor.external

    def test_unbound_queue_raises_actionably(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        executor = WorkQueueExecutor(embedded_workers=1)
        with pytest.raises(QueueUnavailableError, match="REPRO_QUEUE_DIR"):
            list(executor.run(_task(), [(0, 10)]))

    def test_environment_binds_the_queue(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", str(tmp_path / "env-queue"))
        dataset = evaluate_parallel(
            "ibex",
            22,
            seed=1,
            shard_size=11,
            executor=WorkQueueExecutor(embedded_workers=1, poll_seconds=0.01),
        )
        assert len(dataset) == 22


def _task():
    from repro.evaluation.backends.base import EvaluationTask

    return EvaluationTask(core_name="ibex", seed=SEED)


class TestByteIdentity:
    def test_matches_serial_with_embedded_workers(self, tmp_path, serial_json):
        dataset = evaluate_parallel(
            "ibex",
            COUNT,
            seed=SEED,
            shard_size=11,
            executor=_executor(tmp_path),
        )
        assert dataset.to_json() == serial_json

    def test_broker_restart_reuses_finished_jobs(self, tmp_path, serial_json):
        first = _executor(tmp_path)
        evaluate_parallel(
            "ibex", COUNT, seed=SEED, shard_size=11, executor=first
        )
        assert first.last_enqueued == 5  # 48 cases / 11 per shard

        # A fresh broker on the same queue directory: every job id is
        # already done, so nothing is enqueued and the results stream
        # straight from the result files.
        second = _executor(tmp_path, embedded_workers=0, wait_for_workers=0.5)
        dataset = evaluate_parallel(
            "ibex", COUNT, seed=SEED, shard_size=11, executor=second
        )
        assert second.last_enqueued == 0
        assert dataset.to_json() == serial_json


class TestFailureHandling:
    def test_transient_crash_is_requeued_then_succeeds(
        self, tmp_path, serial_json
    ):
        # One embedded worker so the module-global attempt bookkeeping
        # is unambiguous: attempt 1 crashes, the requeue's attempt 2
        # recovers, and the final dataset is still byte-identical.
        executor = _executor(tmp_path, embedded_workers=1)
        with inject_fault("shard-crash", start_id=11, fail_attempts=1):
            dataset = evaluate_parallel(
                "ibex", COUNT, seed=SEED, shard_size=11, executor=executor
            )
        assert dataset.to_json() == serial_json

    def test_permanent_crash_exhausts_the_retry_policy(self, tmp_path):
        executor = _executor(
            tmp_path,
            embedded_workers=1,
            retry=RetryPolicy(max_attempts=2),
        )
        with inject_fault("shard-crash", start_id=0, fail_attempts=10**9):
            with pytest.raises(ShardExecutionError, match="after 2 attempts"):
                evaluate_parallel(
                    "ibex", COUNT, seed=SEED, shard_size=11, executor=executor
                )

    def test_fatal_fault_is_not_retried(self, tmp_path):
        executor = _executor(tmp_path, embedded_workers=1)
        with inject_fault("shard-crash", start_id=0, fatal=True):
            with pytest.raises(ShardExecutionError) as info:
                evaluate_parallel(
                    "ibex", COUNT, seed=SEED, shard_size=11, executor=executor
                )
        assert info.value.fatal


class TestLiveness:
    def test_no_workers_raises_actionably(self, tmp_path):
        executor = _executor(
            tmp_path,
            embedded_workers=0,
            wait_for_workers=0.2,
        )
        with pytest.raises(QueueUnavailableError, match="service worker"):
            list(executor.run(_task(), [(0, 10)]))
