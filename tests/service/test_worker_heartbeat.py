"""The worker's trace-heartbeat interval is configurable end to end."""

import json

import pytest

from repro.service.queue import JobQueue
from repro.service.worker import DEFAULT_HEARTBEAT_INTERVAL, JobWorker
from repro.trace import Tracer

pytestmark = pytest.mark.service


def _records(path):
    with open(path) as stream:
        return [json.loads(line) for line in stream if line.strip()]


class TestHeartbeatInterval:
    def test_defaults_to_the_module_constant(self, tmp_path):
        worker = JobWorker(JobQueue(str(tmp_path / "queue")))
        assert worker.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL == 2.0

    def test_constructor_overrides_the_throttle(self, tmp_path):
        worker = JobWorker(
            JobQueue(str(tmp_path / "queue")), heartbeat_interval=0.25
        )
        assert worker.heartbeat_interval == 0.25

    def test_fast_interval_beats_often_on_an_idle_queue(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        worker = JobWorker(
            JobQueue(str(tmp_path / "queue")),
            worker_id="w-fast",
            poll_seconds=0.01,
            idle_timeout=0.3,
            heartbeat_interval=0.05,
            tracer=Tracer(trace),
        )
        assert worker.run() == 0
        beats = [
            record
            for record in _records(trace)
            if record.get("kind") == "heartbeat"
        ]
        # 0.3s idle window / 0.05s throttle: several beats, not the one
        # a default 2.0s interval would allow.
        assert len(beats) >= 3

    def test_cli_threads_the_flag_into_the_worker(self):
        from repro.experiments.cli import _build_parser

        arguments = _build_parser().parse_args(
            ["service", "worker", "--heartbeat-interval", "0.5"]
        )
        assert arguments.heartbeat_interval == 0.5

    def test_final_snapshot_carries_worker_gauges(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        worker = JobWorker(
            JobQueue(str(tmp_path / "queue")),
            worker_id="w-gauges",
            poll_seconds=0.01,
            idle_timeout=0.05,
            heartbeat_interval=10.0,
            tracer=Tracer(trace),
        )
        worker.run()
        snapshots = [
            record
            for record in _records(trace)
            if record.get("kind") == "metric" and "start_ts" not in record
        ]
        assert snapshots, "worker exit must flush a final metric snapshot"
        gauges = snapshots[-1]["gauges"]
        assert gauges["worker.jobs.completed"] == 0
        assert "worker.utilization" in gauges
