"""JobQueue: the event-sourced claim protocol, leases, and the log.

The queue's correctness story is a pure fold over an append-only event
log, so most tests drive the fold directly: append events (through the
public API or raw ``_emit``) and assert the folded state.
"""

import json

import pytest

from repro.evaluation.backends.base import EvaluationTask
from repro.service.queue import (
    JobQueue,
    QueueUnavailableError,
    job_id_for,
    resolve_queue_root,
    task_from_payload,
    task_to_payload,
)

pytestmark = pytest.mark.service

TASK = EvaluationTask(core_name="ibex", seed=3)
ROWS = [(0, True, (1, 2), "h"), (1, False, (3,), "m")]


def _queue(tmp_path) -> JobQueue:
    return JobQueue(str(tmp_path / "q")).ensure()


class TestTaskPayload:
    def test_payload_round_trips(self):
        payload = task_to_payload(TASK)
        assert task_to_payload(task_from_payload(payload)) == payload

    def test_job_id_is_budget_free_and_stable(self):
        # Nothing in the id depends on the run's total budget or on
        # queue identity — any broker enqueueing the same (task, shard)
        # lands on the same id, which is what makes results reusable.
        assert job_id_for(TASK, (0, 10)) == job_id_for(TASK, (0, 10))
        assert job_id_for(TASK, (0, 10)) != job_id_for(TASK, (10, 10))
        other = EvaluationTask(core_name="ibex", seed=4)
        assert job_id_for(TASK, (0, 10)) != job_id_for(other, (0, 10))


class TestClaimProtocol:
    def test_enqueue_claim_complete(self, tmp_path):
        queue = _queue(tmp_path)
        (job_id,) = queue.enqueue_all(TASK, [(0, 10)])
        assert queue.load().jobs[job_id].status == "pending"

        job = queue.claim("w1", lease_seconds=30.0, now=100.0)
        assert job is not None and job.job_id == job_id
        assert job.status == "running"
        assert job.worker == "w1"
        assert job.lease_until == 130.0
        assert job.attempts == 1
        assert queue.claim("w2", lease_seconds=30.0) is None  # nothing pending

        queue.complete(job, ROWS)
        state = queue.load()
        assert state.jobs[job_id].status == "done"
        assert queue.read_result(job_id) == ROWS

    def test_enqueue_is_idempotent(self, tmp_path):
        queue = _queue(tmp_path)
        first = queue.enqueue_all(TASK, [(0, 10), (10, 10)])
        second = queue.enqueue_all(TASK, [(0, 10), (10, 10)])
        assert first == second
        with open(queue.log_path) as stream:
            events = [json.loads(line) for line in stream]
        assert sum(1 for event in events if event.get("event") == "enqueue") == 2

    def test_first_claim_in_file_order_wins(self, tmp_path):
        queue = _queue(tmp_path)
        (job_id,) = queue.enqueue_all(TASK, [(0, 10)])
        # Two workers race: both observed epoch 0 and appended claims.
        queue._emit(
            {"event": "claim", "job": job_id, "epoch": 0, "worker": "w1", "lease": 1e9}
        )
        queue._emit(
            {"event": "claim", "job": job_id, "epoch": 0, "worker": "w2", "lease": 1e9}
        )
        job = queue.load().jobs[job_id]
        assert job.worker == "w1"
        assert job.attempts == 1  # the losing claim is not charged

    def test_stale_epoch_claim_is_ignored(self, tmp_path):
        queue = _queue(tmp_path)
        (job_id,) = queue.enqueue_all(TASK, [(0, 10)])
        job = queue.claim("w1", lease_seconds=0.0, now=100.0)
        queue.requeue(job)  # lease expired -> epoch 1, pending again
        # w1's world ended at epoch 0; its late claim must not apply.
        queue._emit(
            {"event": "claim", "job": job_id, "epoch": 0, "worker": "w1", "lease": 1e9}
        )
        assert queue.load().jobs[job_id].status == "pending"

    def test_requeue_bumps_epoch_and_charges_attempts(self, tmp_path):
        queue = _queue(tmp_path)
        (job_id,) = queue.enqueue_all(TASK, [(0, 10)])
        job = queue.claim("w1", lease_seconds=30.0)
        queue.fail(job, error="boom")
        failed = queue.load().jobs[job_id]
        assert failed.status == "failed" and failed.error == "boom"
        queue.requeue(failed)
        job = queue.claim("w2", lease_seconds=30.0)
        assert job.epoch == 1
        assert job.attempts == 2  # both winning claims count

    def test_done_is_terminal_even_from_a_stale_worker(self, tmp_path):
        # A SIGKILL-survivor finishing after its lease was reclaimed is
        # harmless: per-test-id generation makes its result file
        # byte-identical, so its late done event just settles the job.
        queue = _queue(tmp_path)
        (job_id,) = queue.enqueue_all(TASK, [(0, 10)])
        stale = queue.claim("w1", lease_seconds=0.0, now=100.0)
        queue.requeue(stale)
        queue.complete(stale, ROWS)  # stale epoch 0 completion
        assert queue.load().jobs[job_id].status == "done"
        assert queue.read_result(job_id) == ROWS

    def test_reclaim_expired_requeues_only_overdue_leases(self, tmp_path):
        queue = _queue(tmp_path)
        ids = queue.enqueue_all(TASK, [(0, 10), (10, 10)])
        overdue = queue.claim("w1", lease_seconds=10.0, now=100.0)
        queue.claim("w2", lease_seconds=10.0, now=1e9)
        reclaimed = queue.reclaim_expired(now=200.0)
        assert [job.job_id for job in reclaimed] == [overdue.job_id]
        state = queue.load()
        assert state.jobs[overdue.job_id].status == "pending"
        running = [job_id for job_id in ids if state.jobs[job_id].status == "running"]
        assert len(running) == 1

    def test_shutdown_event_reaches_every_reader(self, tmp_path):
        queue = _queue(tmp_path)
        assert not queue.load().shutdown
        queue.request_shutdown()
        assert JobQueue(queue.root).load().shutdown


class TestLogRobustness:
    def test_torn_final_line_is_tolerated_and_overwritten_by_nothing(
        self, tmp_path
    ):
        queue = _queue(tmp_path)
        queue.enqueue_all(TASK, [(0, 10)])
        with open(queue.log_path, "a") as stream:
            stream.write('{"event": "claim", "job"')  # writer died mid-append
        assert len(queue.load().jobs) == 1  # fold just skips the torn tail
        # The log is append-only: the next event lands after the torn
        # line and the fold keeps working.
        queue.request_shutdown()
        assert queue.load().shutdown

    def test_racing_appenders_terminate_a_torn_tail(self, tmp_path):
        # Two appenders both found the torn tail: each contributed a
        # terminating newline, leaving a blank line the fold skips.
        queue = _queue(tmp_path)
        with open(queue.log_path, "a") as stream:
            stream.write('{"event": "claim", "job"')
        queue.enqueue_all(TASK, [(0, 10)])
        queue.request_shutdown()
        with open(queue.log_path, "a") as stream:
            stream.write("\n")  # the second racer's redundant terminator
        queue.enqueue_all(TASK, [(10, 10)])
        state = queue.load()
        assert state.shutdown
        assert len(state.jobs) == 2

    def test_version_mismatch_raises(self, tmp_path):
        root = tmp_path / "q"
        root.mkdir()
        (root / "queue.jsonl").write_text('{"event": "init", "version": 99}\n')
        with pytest.raises(ValueError, match="version-1"):
            JobQueue(str(root)).load()

    def test_ensure_races_write_exactly_one_header(self, tmp_path):
        queue = _queue(tmp_path)
        JobQueue(queue.root).ensure()  # a second process arriving late
        with open(queue.log_path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 1


class TestWorkerLiveness:
    def test_heartbeats_age_out(self, tmp_path):
        queue = _queue(tmp_path)
        queue.heartbeat("w1")
        assert queue.live_workers(stale_seconds=60.0) == ["w1"]
        assert queue.live_workers(stale_seconds=60.0, now=1e12) == []

    def test_staleness_window_is_two_leases(self):
        assert JobQueue.heartbeat_stale_after(30.0) == 60.0


class TestResolveQueueRoot:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", "/from/env")
        assert resolve_queue_root("/explicit") == "/explicit"

    def test_environment_binds_when_no_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_DIR", "/from/env")
        assert resolve_queue_root(None) == "/from/env"

    def test_unbound_raises_actionably_and_fatally(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        with pytest.raises(QueueUnavailableError, match="REPRO_QUEUE_DIR"):
            resolve_queue_root(None)
        # A ValueError, so the retry layer classifies it as fatal
        # configuration instead of backing off on it.
        assert issubclass(QueueUnavailableError, ValueError)
