"""End-to-end tests for the SynthesisPipeline builder API.

These are the ``pipeline``-marked fast smoke suite
(``pytest -m pipeline``): tiny budgets, every phase exercised.
"""

import os

import pytest

from repro.contracts.atoms import LeakageFamily
from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.pipeline import SynthesisPipeline
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore

pytestmark = pytest.mark.pipeline

BUDGET = 60
SEED = 9


def legacy_evaluate(count=BUDGET, seed=SEED):
    """The pre-pipeline evaluation path, verbatim: explicit generator,
    evaluator, and core construction (what runner.evaluate_dataset did
    before it became a pipeline wrapper)."""
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    return evaluator.evaluate_many(generator.iter_generate(count))


class TestEndToEnd:
    def test_run_produces_full_result(self):
        result = (
            SynthesisPipeline()
            .core("ibex")
            .attacker("retirement-timing")
            .template("riscv-rv32im")
            .budget(BUDGET, seed=SEED)
            .solver("scipy-milp")
            .run()
        )
        assert result.core_name == "ibex"
        assert result.attacker_name == "retirement-timing"
        assert result.solver_name == "scipy-milp"
        assert result.template_name == "riscv-rv32im"
        assert len(result.dataset) == BUDGET
        assert result.atom_count == len(result.contract) > 0
        assert result.synthesis.solver_result.optimal
        # The synthesized contract covers its own synthesis set.
        assert result.verification is not None and result.satisfied
        timings = result.timings
        assert timings.setup_seconds > 0
        assert timings.evaluation_seconds > 0
        assert timings.synthesis_seconds > 0
        assert timings.total_seconds >= (
            timings.setup_seconds
            + timings.evaluation_seconds
            + timings.synthesis_seconds
        )
        assert "core=ibex" in result.render()

    def test_dataset_byte_identical_to_legacy_path(self):
        pipeline_dataset = (
            SynthesisPipeline().core("ibex").budget(BUDGET, seed=SEED).evaluate()
        )
        assert pipeline_dataset.to_json() == legacy_evaluate().to_json()

    def test_runner_evaluate_dataset_byte_identical(self):
        from repro.experiments.runner import evaluate_dataset, shared_template

        dataset, evaluator = evaluate_dataset(
            "ibex", shared_template(), BUDGET, SEED
        )
        assert evaluator is not None
        assert dataset.to_json() == legacy_evaluate().to_json()

    def test_instances_accepted_in_place_of_names(self):
        template = build_riscv_template()
        result = (
            SynthesisPipeline()
            .core(IbexCore())
            .template(template)
            .budget(30, seed=1)
            .run()
        )
        assert result.core_name == "ibex"
        assert result.synthesis.contract.template is template

    def test_restriction_limits_atom_families(self):
        result = (
            SynthesisPipeline()
            .core("ibex")
            .budget(150, seed=4)
            .restrict("base")
            .run()
        )
        assert result.restriction == "IL+RL+ML"
        families = {atom.family for atom in result.contract.atoms}
        assert families <= {LeakageFamily.IL, LeakageFamily.RL, LeakageFamily.ML}

    def test_alternate_solver_and_verify_budget(self):
        result = (
            SynthesisPipeline()
            .core("ibex")
            .budget(BUDGET, seed=SEED)
            .solver("greedy")
            .verify(40, seed=123)
            .run()
        )
        assert result.solver_name == "greedy"
        assert result.verification.test_cases == 40
        # verify(0) skips verification entirely.
        skipped = (
            SynthesisPipeline().core("ibex").budget(30, seed=1).verify(0).run()
        )
        assert skipped.verification is None and skipped.satisfied is None

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(ValueError, match="unknown core"):
            SynthesisPipeline().core("rocket").run()
        with pytest.raises(ValueError, match="unknown attacker"):
            SynthesisPipeline().attacker("oscilloscope").budget(5).run()
        with pytest.raises(ValueError, match="unknown solver"):
            SynthesisPipeline().solver("cplex").budget(5).run()


class TestDatasetCache:
    def test_cache_round_trip(self, tmp_path):
        pipeline = (
            SynthesisPipeline()
            .core("ibex")
            .budget(25, seed=3)
            .cache_dir(str(tmp_path))
        )
        first, evaluator = pipeline.evaluate_with_stats()
        assert evaluator is not None  # cache miss
        second, evaluator_2 = pipeline.evaluate_with_stats()
        assert evaluator_2 is None  # cache hit
        assert first.to_json() == second.to_json()
        assert len(os.listdir(str(tmp_path))) == 1

    def test_cache_key_includes_attacker(self, tmp_path):
        """Regression: switching attackers must not reuse a stale
        cached dataset evaluated under a different attacker."""
        timing = (
            SynthesisPipeline()
            .core("ibex-dcache")
            .attacker("retirement-timing")
            .budget(40, seed=2)
            .cache_dir(str(tmp_path))
            .evaluate()
        )
        cache_state = (
            SynthesisPipeline()
            .core("ibex-dcache")
            .attacker("cache-state")
            .budget(40, seed=2)
            .cache_dir(str(tmp_path))
            .evaluate()
        )
        assert len(os.listdir(str(tmp_path))) == 2  # two distinct cache entries
        assert timing.attacker_name == "retirement-timing"
        assert cache_state.attacker_name == "cache-state"
        verdicts_timing = [r.attacker_distinguishable for r in timing]
        verdicts_cache = [r.attacker_distinguishable for r in cache_state]
        assert verdicts_timing != verdicts_cache

    def test_cache_key_includes_generator(self, tmp_path):
        """Regression: cached corpora from different generation
        strategies must never be conflated — same core, attacker, and
        seed, but the strategies emit different test-case streams."""
        base = lambda: (  # noqa: E731 - concise per-call builder
            SynthesisPipeline().core("ibex").budget(20, seed=3).cache_dir(str(tmp_path))
        )
        random_dataset, evaluator = base().evaluate_with_stats()
        assert evaluator is not None  # cache miss, evaluated fresh
        coverage_dataset, evaluator = (
            base().generator("coverage").evaluate_with_stats()
        )
        assert evaluator is not None  # cache MISS again: new strategy
        assert len(os.listdir(str(tmp_path))) == 2  # two distinct entries
        atoms_random = [sorted(r.distinguishing_atom_ids) for r in random_dataset]
        atoms_coverage = [sorted(r.distinguishing_atom_ids) for r in coverage_dataset]
        assert atoms_random != atoms_coverage
        # And the same strategy hits its own entry.
        _again, evaluator = base().generator("coverage").evaluate_with_stats()
        assert evaluator is None

    def test_generator_instances_disable_caching(self, tmp_path):
        """A strategy instance may carry feedback state its name does
        not express, so it cannot key a cache entry."""
        from repro.contracts.riscv_template import build_riscv_template
        from repro.testgen import CoverageStrategy

        strategy = CoverageStrategy(build_riscv_template(), seed=3)
        pipeline = (
            SynthesisPipeline()
            .core("ibex")
            .budget(10, seed=3)
            .generator(strategy)
            .cache_dir(str(tmp_path))
        )
        assert pipeline.cache_path() is None

    def test_adaptive_mode_bypasses_the_dataset_cache(self, tmp_path):
        pipeline = (
            SynthesisPipeline()
            .core("ibex")
            .budget(10, seed=3)
            .adaptive(rounds=2, batch=5)
            .cache_dir(str(tmp_path))
        )
        assert pipeline.cache_path() is None

    def test_adaptive_batch_derives_from_the_budget(self):
        """Without an explicit batch the configured budget stays the
        adaptive case ceiling: split across rounds, rounds clamped for
        tiny budgets, and a zero budget rejected."""
        plan = SynthesisPipeline().budget(1000).adaptive(rounds=8)._adaptive_plan()
        assert plan == (8, 125)
        tiny = SynthesisPipeline().budget(3).adaptive(rounds=8)._adaptive_plan()
        assert tiny == (3, 1)
        explicit = (
            SynthesisPipeline().budget(1000).adaptive(rounds=8, batch=40)
        )._adaptive_plan()
        assert explicit == (8, 40)
        with pytest.raises(ValueError, match="positive"):
            SynthesisPipeline().budget(0).adaptive(rounds=8)._adaptive_plan()

    def test_cache_key_includes_fastpath_flag(self, tmp_path):
        pipeline = (
            SynthesisPipeline().core("ibex").budget(10, seed=1).cache_dir(str(tmp_path))
        )
        fast_path = pipeline.cache_path()
        reference_path = pipeline.fastpath(False).cache_path()
        assert fast_path != reference_path
        assert reference_path.endswith("-ref.json")

    def test_instance_configured_core_is_never_cached(self, tmp_path):
        """A core instance may carry config its name does not express
        (IbexCore(IbexConfig(dcache=True)).name is still 'ibex'), so
        instance-configured pipelines must bypass the cache."""
        from repro.uarch.ibex import IbexConfig

        named = (
            SynthesisPipeline().core("ibex").budget(20, seed=2).cache_dir(str(tmp_path))
        )
        assert named.cache_path() is not None
        named.evaluate()
        instance = (
            SynthesisPipeline()
            .core(IbexCore(IbexConfig(dcache=True)))
            .budget(20, seed=2)
            .cache_dir(str(tmp_path))
        )
        assert instance.cache_path() is None
        _dataset, evaluator = instance.evaluate_with_stats()
        assert evaluator is not None  # evaluated live, not served stale

    def test_directed_verify_defaults_to_disjoint_seed(self, monkeypatch):
        """verify(n) without a seed must not replay the synthesis
        stream (which the contract trivially satisfies)."""
        import repro.pipeline.pipeline as pipeline_module

        seen = []
        original = pipeline_module.check_contract_satisfaction

        def spy(*args, **kwargs):
            seen.append(kwargs["seed"])
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "check_contract_satisfaction", spy)
        SynthesisPipeline().core("ibex").budget(20, seed=9).verify(10).run()
        assert seen == [10]  # synthesis seed 9 + 1, not 0 and not 9

    def test_run_uses_cache(self, tmp_path):
        pipeline = (
            SynthesisPipeline().core("ibex").budget(25, seed=3).cache_dir(str(tmp_path))
        )
        first = pipeline.run()
        assert not first.timings.cache_hit
        second = pipeline.run()
        assert second.timings.cache_hit
        assert second.dataset.to_json() == first.dataset.to_json()
        assert second.contract.atom_ids == first.contract.atom_ids


class TestExecutorBackends:
    def test_executor_dataset_byte_identical_to_in_process(self):
        sharded = (
            SynthesisPipeline()
            .core("ibex")
            .budget(BUDGET, seed=SEED)
            .executor("serial", shard_size=13)
            .evaluate()
        )
        assert sharded.to_json() == legacy_evaluate().to_json()

    def test_run_records_executor_shard_stats(self):
        events = []
        result = (
            SynthesisPipeline()
            .core("ibex")
            .budget(40, seed=2)
            .solver("greedy")
            .executor("serial", shard_size=10)
            .on_shard(events.append)
            .run()
        )
        timings = result.timings
        assert timings.executor_name == "serial"
        assert timings.shards_total == 4
        assert timings.shards_resumed == 0
        assert "executor serial" in timings.render()
        assert [event.completed_shards for event in events] == [1, 2, 3, 4]

    def test_resume_checkpoints_under_the_cache_key(self, tmp_path):
        pipeline = (
            SynthesisPipeline()
            .core("ibex")
            .budget(30, seed=3)
            .solver("greedy")
            .executor("serial", shard_size=10)
            .cache_dir(str(tmp_path))
            .resume()
        )
        manifest_path = pipeline.manifest_path()
        assert manifest_path.startswith(str(tmp_path))
        assert manifest_path.endswith(".shards.jsonl")
        first = pipeline.run()
        assert os.path.exists(manifest_path)
        assert first.timings.shards_resumed == 0

        # Drop the cached dataset (not the manifest): the re-run must
        # resume every shard from the checkpoint.
        os.unlink(pipeline.cache_path())
        second = pipeline.run()
        assert second.timings.shards_resumed == second.timings.shards_total == 3
        assert second.dataset.to_json() == first.dataset.to_json()

    def test_resume_implies_an_executor(self, tmp_path):
        pipeline = (
            SynthesisPipeline()
            .core("ibex")
            .budget(20, seed=1)
            .solver("greedy")
            .cache_dir(str(tmp_path))
            .resume()
        )
        result = pipeline.run()
        assert result.timings.executor_name == "multiprocess"
        assert os.path.exists(pipeline.manifest_path())

    def test_resume_without_cache_dir_requires_explicit_path(self, tmp_path):
        with pytest.raises(ValueError, match="resume"):
            SynthesisPipeline().core("ibex").budget(10).resume().run()
        explicit = str(tmp_path / "manifest.jsonl")
        result = (
            SynthesisPipeline()
            .core("ibex")
            .budget(20, seed=1)
            .solver("greedy")
            .executor("serial")
            .resume(explicit)
            .run()
        )
        assert result.atom_count > 0
        assert os.path.exists(explicit)

    def test_executor_requires_name_configured_plugins(self):
        with pytest.raises(ValueError, match="registry name"):
            (
                SynthesisPipeline()
                .core(IbexCore())
                .budget(10)
                .executor("serial")
                .evaluate()
            )
