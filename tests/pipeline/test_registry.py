"""Tests for the generic plugin registry and the built-in registries."""

import pytest

from repro.attacker import ATTACKER_REGISTRY
from repro.attacker.base import Attacker
from repro.contracts.riscv_template import (
    BASE_FAMILIES,
    FULL_FAMILIES,
    RESTRICTION_REGISTRY,
    TEMPLATE_REGISTRY,
)
from repro.contracts.template import ContractTemplate
from repro.registry import Registry
from repro.synthesis import SOLVER_REGISTRY
from repro.synthesis.solvers import IlpSolver
from repro.uarch import CORE_REGISTRY
from repro.uarch.core import Core

pytestmark = pytest.mark.pipeline


class TestRegistry:
    def test_register_create_list_round_trip(self):
        registry = Registry("widget")
        registry.register("a", lambda: "made-a", description="first")
        registry.register("b", lambda: "made-b")
        assert registry.names() == ["a", "b"]
        assert registry.create("a") == "made-a"
        assert registry.create("b") == "made-b"
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert list(registry) == ["a", "b"]
        assert registry.describe("a") == "first"

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("decorated")
        def factory():
            """A decorated factory."""
            return 42

        assert factory() == 42  # decorator returns the factory unchanged
        assert registry.create("decorated") == 42
        assert registry.describe("decorated") == "A decorated factory."

    def test_create_forwards_arguments(self):
        registry = Registry("widget")
        registry.register("adder", lambda a, b=0: a + b)
        assert registry.create("adder", 2, b=3) == 5

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: 2)
        # Explicit overwrite is allowed.
        registry.register("x", lambda: 2, overwrite=True)
        assert registry.create("x") == 2

    def test_unknown_name_lists_choices(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: 1)
        registry.register("beta", lambda: 2)
        with pytest.raises(ValueError) as excinfo:
            registry.create("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("x", lambda: 1)
        registry.unregister("x")
        assert "x" not in registry
        with pytest.raises(ValueError):
            registry.unregister("x")


class TestBuiltinRegistries:
    def test_core_registry(self):
        assert {"ibex", "cva6", "ibex-dcache"} <= set(CORE_REGISTRY.names())
        for name in ("ibex", "cva6"):
            core = CORE_REGISTRY.create(name)
            assert isinstance(core, Core)
            assert core.name == name

    def test_attacker_registry(self):
        assert {"retirement-timing", "total-time", "cache-state"} <= set(
            ATTACKER_REGISTRY.names()
        )
        for name in ATTACKER_REGISTRY.names():
            attacker = ATTACKER_REGISTRY.create(name)
            assert isinstance(attacker, Attacker)
            assert attacker.name == name

    def test_solver_registry(self):
        assert {"scipy-milp", "branch-and-bound", "greedy"} <= set(
            SOLVER_REGISTRY.names()
        )
        for name in SOLVER_REGISTRY.names():
            solver = SOLVER_REGISTRY.create(name)
            assert isinstance(solver, IlpSolver)
            assert solver.name == name

    def test_template_registry(self):
        template = TEMPLATE_REGISTRY.create("riscv-rv32im")
        assert isinstance(template, ContractTemplate)
        assert template.name == "riscv-rv32im"
        zref = TEMPLATE_REGISTRY.create("riscv-rv32im-zref")
        assert len(zref) > len(template)

    def test_restriction_registry(self):
        assert tuple(RESTRICTION_REGISTRY.create("base")) == BASE_FAMILIES
        assert tuple(RESTRICTION_REGISTRY.create("full")) == FULL_FAMILIES
        assert tuple(RESTRICTION_REGISTRY.create("IL+RL+ML")) == BASE_FAMILIES
        assert (
            tuple(RESTRICTION_REGISTRY.create("IL+RL+ML+AL+BL+DL")) == FULL_FAMILIES
        )

    def test_build_core_goes_through_registry(self):
        from repro.experiments.runner import build_core

        assert build_core("ibex").name == "ibex"
        with pytest.raises(ValueError) as excinfo:
            build_core("rocket")
        # Unknown-core errors list the registered choices.
        assert "ibex" in str(excinfo.value) and "cva6" in str(excinfo.value)
