"""The shared JSONL checkpoint mechanics: atomic appends + durability."""

import json
import os

import pytest

from repro.checkpoint import JsonlCheckpoint, append_jsonl_line


class _Log(JsonlCheckpoint):
    kind = "test-log"

    def __init__(self, path, durable=False):
        self.entries = []
        super().__init__(path, {"run": 1}, durable=durable)

    def _accept(self, entry):
        self.entries.append(entry)

    def _entries(self):
        return list(self.entries)


def _append(log, **entry):
    log._append(entry)
    log.entries.append(entry)


class TestAppendJsonlLine:
    def test_appends_one_line_per_entry(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl_line(path, {"n": 1})
        append_jsonl_line(path, {"n": 2}, durable=True)
        with open(path) as stream:
            assert [json.loads(line) for line in stream] == [{"n": 1}, {"n": 2}]

    def test_terminates_a_torn_tail_instead_of_concatenating(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        append_jsonl_line(path, {"n": 1})
        with open(path, "a") as stream:
            stream.write('{"n": ')  # a writer died mid-append
        append_jsonl_line(path, {"n": 2})
        with open(path) as stream:
            lines = stream.read().splitlines()
        # The torn fragment stays its own (invalid) line; the new entry
        # is intact after it.
        assert json.loads(lines[-1]) == {"n": 2}
        assert lines[1] == '{"n": '


class TestDurableCheckpoint:
    def test_durable_default_is_off(self, tmp_path):
        log = _Log(str(tmp_path / "log.jsonl"))
        assert log.durable is False

    def test_torn_final_line_recovery_with_durable_appends(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = _Log(path, durable=True)
        _append(log, unit=1)
        _append(log, unit=2)
        with open(path, "a") as stream:
            stream.write('{"unit": 3, "extra"')  # killed mid-append

        recovered = _Log(path, durable=True)
        assert recovered.entries == [{"unit": 1}, {"unit": 2}]
        _append(recovered, unit=4)
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 4  # header + 3 intact entries
        for line in lines:
            json.loads(line)

    def test_rewrite_preserves_entries_under_durable(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = _Log(path, durable=True)
        _append(log, unit=1)
        log._rewrite()
        assert _Log(path).entries == [{"unit": 1}]


class TestMultiProcessAppend:
    def test_concurrent_processes_never_tear_lines(self, tmp_path):
        """Many processes hammering one file through append_jsonl_line
        must produce only intact, complete lines."""
        import subprocess
        import sys

        path = str(tmp_path / "shared.jsonl")
        script = (
            "import sys; sys.path.insert(0, %r); "
            "from repro.checkpoint import append_jsonl_line; "
            "writer = int(sys.argv[1]); "
            "[append_jsonl_line(%r, {'writer': writer, 'n': n, 'pad': 'x' * 512}, "
            "durable=True) for n in range(50)]"
            % (os.path.join(os.path.dirname(__file__), "..", "src"), path)
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(writer)])
            for writer in range(4)
        ]
        assert all(proc.wait() == 0 for proc in procs)

        with open(path) as stream:
            entries = [json.loads(line) for line in stream]
        assert len(entries) == 4 * 50
        for writer in range(4):
            sequence = [e["n"] for e in entries if e["writer"] == writer]
            assert sequence == sorted(sequence)  # per-writer order holds
