"""Tests for the VCD writer, parser, and RVFI round-trip."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore
from repro.vcd.parser import VcdParseError, parse_vcd
from repro.vcd.rvfi_vcd import dump_rvfi_trace, load_exec_records
from repro.vcd.writer import VcdWriter, _identifier_for


class TestWriter:
    def test_basic_document_structure(self):
        writer = VcdWriter(scope="rvfi")
        clk = writer.add_signal("clk", 1)
        bus = writer.add_signal("bus", 32)
        writer.change(0, clk, 0)
        writer.change(1, clk, 1)
        writer.change(1, bus, 0xDEAD)
        text = writer.render()
        assert "$scope module rvfi $end" in text
        assert "$var wire 1 %s clk $end" % clk in text
        assert "$var wire 32 %s bus $end" % bus in text
        assert "#0" in text and "#1" in text
        assert "b%s %s" % (format(0xDEAD, "b"), bus) in text

    def test_unknown_value(self):
        writer = VcdWriter()
        sig = writer.add_signal("s", 8)
        writer.change(0, sig, None)
        assert "bx %s" % sig in writer.render()

    def test_change_by_name(self):
        writer = VcdWriter()
        writer.add_signal("a", 1)
        writer.change_by_name(3, "a", 1)
        assert "#3" in writer.render()

    def test_validation(self):
        writer = VcdWriter()
        sig = writer.add_signal("a", 4)
        with pytest.raises(ValueError):
            writer.add_signal("a", 1)       # duplicate
        with pytest.raises(ValueError):
            writer.change(0, sig, 16)       # does not fit
        with pytest.raises(ValueError):
            writer.change(-1, sig, 0)       # negative time
        with pytest.raises(ValueError):
            writer.add_signal("b", 0)       # zero width
        with pytest.raises(KeyError):
            writer.change(0, "zz", 0)       # unknown id

    def test_identifier_generation(self):
        seen = {_identifier_for(index) for index in range(500)}
        assert len(seen) == 500
        assert _identifier_for(0) == "!"

    def test_save(self, tmp_path):
        writer = VcdWriter()
        sig = writer.add_signal("x", 1)
        writer.change(0, sig, 1)
        path = tmp_path / "out.vcd"
        writer.save(str(path))
        assert path.read_text().startswith("$date")


class TestParser:
    def test_roundtrip_writer_parser(self):
        writer = VcdWriter()
        clk = writer.add_signal("clk", 1)
        bus = writer.add_signal("bus", 16)
        writer.change(0, clk, 0)
        writer.change(5, clk, 1)
        writer.change(5, bus, 1234)
        signals = parse_vcd(writer.render())
        assert signals["clk"].changes == [(0, 0), (5, 1)]
        assert signals["bus"].changes == [(5, 1234)]
        assert signals["bus"].width == 16

    def test_value_at(self):
        writer = VcdWriter()
        sig = writer.add_signal("s", 8)
        writer.change(0, sig, 1)
        writer.change(10, sig, 2)
        parsed = parse_vcd(writer.render())["s"]
        assert parsed.value_at(0) == 1
        assert parsed.value_at(9) == 1
        assert parsed.value_at(10) == 2
        assert parsed.value_at(100) == 2

    def test_x_values_parse_to_none(self):
        writer = VcdWriter()
        scalar = writer.add_signal("a", 1)
        vector = writer.add_signal("b", 8)
        writer.change(0, scalar, None)
        writer.change(0, vector, None)
        signals = parse_vcd(writer.render())
        assert signals["a"].changes == [(0, None)]
        assert signals["b"].changes == [(0, None)]

    def test_rejects_undeclared_signal(self):
        with pytest.raises(VcdParseError):
            parse_vcd("$enddefinitions $end\n#0\n1?")

    def test_rejects_unterminated_directive(self):
        with pytest.raises(VcdParseError):
            parse_vcd("$date forever")


class TestRvfiRoundTrip:
    SOURCE = (
        "addi x1, x0, 0x102\n"
        "lw x2, 0(x1)\n"
        "sw x1, 2(x1)\n"
        "slli x3, x1, 9\n"
        "mul x4, x3, x1\n"
        "div x5, x4, x1\n"
        "beq x5, x5, 4\n"
        "add x6, x5, x4"
    )

    @pytest.mark.parametrize("core_class", [IbexCore, CVA6Core])
    def test_exec_records_roundtrip(self, core_class, tmp_path):
        program = assemble(self.SOURCE)
        state = ArchState(pc=program.base_address)
        result = core_class().simulate(program, state)
        path = str(tmp_path / "trace.vcd")
        dump_rvfi_trace(result.trace, path)
        records, cycles = load_exec_records(path)

        original = result.trace.exec_records
        assert cycles == sorted(result.trace.retirement_cycles)
        assert len(records) == len(original)
        for restored, reference in zip(records, original):
            assert restored.instruction == reference.instruction
            assert restored.pc == reference.pc
            assert restored.next_pc == reference.next_pc
            assert restored.rs1_value == reference.rs1_value
            assert restored.rs2_value == reference.rs2_value
            assert restored.rd_value == reference.rd_value
            assert restored.mem_read_addr == reference.mem_read_addr
            assert restored.mem_write_addr == reference.mem_write_addr
            assert restored.branch_taken == reference.branch_taken
            assert restored.raw_rs1_dist == reference.raw_rs1_dist
            assert restored.raw_rs2_dist == reference.raw_rs2_dist
            assert restored.waw_dist == reference.waw_dist

    def test_same_distinguishing_atoms_via_vcd(self, tmp_path):
        """The full §IV-D path: waveform in, distinguishing atoms out."""
        from repro.contracts.observations import distinguishing_atoms
        from repro.contracts.riscv_template import build_riscv_template

        template = build_riscv_template()
        core = IbexCore()
        program_a = assemble("addi x2, x0, 0x100\nlw x1, 0(x2)")
        program_b = assemble("addi x2, x0, 0x102\nlw x1, 0(x2)")
        result_a = core.simulate(program_a)
        result_b = core.simulate(program_b)
        direct = distinguishing_atoms(
            template,
            result_a.trace.exec_records,
            result_b.trace.exec_records,
        )
        path_a, path_b = str(tmp_path / "a.vcd"), str(tmp_path / "b.vcd")
        dump_rvfi_trace(result_a.trace, path_a)
        dump_rvfi_trace(result_b.trace, path_b)
        records_a, _cycles = load_exec_records(path_a)
        records_b, _cycles = load_exec_records(path_b)
        via_vcd = distinguishing_atoms(template, records_a, records_b)
        assert via_vcd == direct

    def test_taken_branch_to_next_pc_reconstructed(self, tmp_path):
        # The corner the paper highlights: BEQ +4 is taken but its
        # pc_wdata equals pc+4; reconstruction must still say "taken".
        program = assemble("beq x1, x1, 4\nnop")
        result = IbexCore().simulate(program)
        path = str(tmp_path / "branch.vcd")
        dump_rvfi_trace(result.trace, path)
        records, _cycles = load_exec_records(path)
        assert records[0].branch_taken is True

    DUAL_COMMIT_SOURCE = "div x1, x2, x3\nadd x4, x5, x6"

    def _dual_commit_result(self):
        # A slow division followed by an independent add: the add's
        # result waits on the in-order commit and shares the division's
        # commit cycle through the second commit port.
        program = assemble(self.DUAL_COMMIT_SOURCE)
        state = ArchState(pc=program.base_address)
        state.write_register(2, 0x40000000)
        state.write_register(3, 1)
        return CVA6Core().simulate(program, state)

    def test_dual_commit_uses_second_channel(self, tmp_path):
        result = self._dual_commit_result()
        cycles = result.trace.retirement_cycles
        assert len(set(cycles)) < len(cycles)  # some cycle retires two
        path = str(tmp_path / "dual.vcd")
        dump_rvfi_trace(result.trace, path)
        records, restored_cycles = load_exec_records(path)
        assert len(records) == 2
        assert restored_cycles == sorted(cycles)

    def test_nret_overflow_raises(self, tmp_path):
        result = self._dual_commit_result()
        with pytest.raises(ValueError):
            dump_rvfi_trace(result.trace, str(tmp_path / "x.vcd"), nret=1)