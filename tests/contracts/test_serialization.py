"""Tests for contract serialization and diffing."""

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.serialization import (
    ContractFormatError,
    contract_from_dict,
    contract_from_json,
    contract_to_dict,
    contract_to_json,
    diff_contracts,
    load_contract,
    save_contract,
)
from repro.contracts.template import Contract


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


@pytest.fixture()
def contract(template):
    ids = [atom.atom_id for atom in template
           if atom.name in ("div:REG_RS2", "beq:BRANCH_TAKEN", "lw:IS_WORD_ALIGNED")]
    assert len(ids) == 3
    return Contract(template, ids)


def test_dict_roundtrip(template, contract):
    data = contract_to_dict(contract, metadata={"core": "ibex"})
    assert data["format"] == "repro-leakage-contract/v1"
    assert data["metadata"]["core"] == "ibex"
    assert data["atoms"] == ["beq:BRANCH_TAKEN", "div:REG_RS2", "lw:IS_WORD_ALIGNED"]
    restored = contract_from_dict(data, template)
    assert restored == contract


def test_json_roundtrip(template, contract):
    text = contract_to_json(contract)
    assert contract_from_json(text, template) == contract


def test_file_roundtrip(tmp_path, template, contract):
    path = str(tmp_path / "contract.json")
    save_contract(contract, path, metadata={"synthesized-from": "5000 cases"})
    assert load_contract(path, template) == contract


def test_survives_template_rebuild(template, contract):
    # A freshly built template has the same names but is a new object.
    fresh = build_riscv_template()
    restored = contract_from_dict(contract_to_dict(contract), fresh)
    assert {atom.name for atom in restored.atoms} == {
        atom.name for atom in contract.atoms
    }


def test_rejects_unknown_format(template):
    with pytest.raises(ContractFormatError):
        contract_from_dict({"format": "v0", "atoms": []}, template)


def test_rejects_missing_atoms_field(template):
    with pytest.raises(ContractFormatError):
        contract_from_dict(
            {"format": "repro-leakage-contract/v1"}, template
        )


def test_rejects_unknown_atom_names(template):
    with pytest.raises(ContractFormatError) as excinfo:
        contract_from_dict(
            {"format": "repro-leakage-contract/v1", "atoms": ["bogus:FOO"]},
            template,
        )
    assert "bogus:FOO" in str(excinfo.value)


def test_restriction_to_smaller_template(contract):
    # Loading into a template lacking the atoms must fail loudly.
    from repro.contracts.riscv_template import build_riscv_template
    from repro.isa.instructions import Opcode

    small = build_riscv_template(opcodes=[Opcode.ADD])
    with pytest.raises(ContractFormatError):
        contract_from_dict(contract_to_dict(contract), small)


class TestDiff:
    def test_identical(self, template, contract):
        diff = diff_contracts(contract, contract)
        assert diff.identical
        assert len(diff.common) == 3

    def test_asymmetric(self, template, contract):
        other_ids = [atom.atom_id for atom in template
                     if atom.name in ("div:REG_RS2", "mul:RAW_RS1_1")]
        other = Contract(template, other_ids)
        diff = diff_contracts(contract, other)
        assert not diff.identical
        assert diff.common == ("div:REG_RS2",)
        assert "beq:BRANCH_TAKEN" in diff.only_in_first
        assert diff.only_in_second == ("mul:RAW_RS1_1",)

    def test_render(self, template, contract):
        other = Contract(template, [])
        text = diff_contracts(contract, other).render("ibex", "cva6")
        assert "only in ibex" in text
        assert "- beq:BRANCH_TAKEN" in text
