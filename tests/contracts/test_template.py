"""Tests for ContractTemplate, Contract, and the RISC-V template."""

import pytest

from repro.contracts.atoms import LeakageFamily, make_atom
from repro.contracts.riscv_template import (
    BASE_FAMILIES,
    FULL_FAMILIES,
    build_riscv_template,
    cumulative_family_sets,
    template_families,
)
from repro.contracts.template import Contract, ContractTemplate
from repro.isa.instructions import InstructionCategory, Opcode, OPCODE_INFO


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def test_template_ids_are_positional(template):
    for index, atom in enumerate(template):
        assert atom.atom_id == index
        assert template.atom(index) is atom


def test_template_rejects_bad_numbering():
    atoms = [make_atom(1, Opcode.ADD, "OP")]
    with pytest.raises(ValueError):
        ContractTemplate(atoms)


def test_template_size_matches_design(template):
    # RV32IM instantiation: 892 atoms (DESIGN.md; the paper's RV32IMC
    # instantiation reports 762).
    assert len(template) == 892


def test_no_system_atoms(template):
    for atom in template:
        assert OPCODE_INFO[atom.opcode].category is not InstructionCategory.SYSTEM


def test_atoms_for_opcode_partition(template):
    total = sum(
        len(template.atoms_for_opcode(opcode))
        for opcode in Opcode
    )
    assert total == len(template)


def test_add_atom_sources(template):
    sources = {atom.source for atom in template.atoms_for_opcode(Opcode.ADD)}
    assert "OP" in sources and "REG_RS1" in sources and "WAW_4" in sources
    assert "IMM" not in sources          # R-type has no immediate
    assert "MEM_R_ADDR" not in sources   # not a memory instruction
    assert "BRANCH_TAKEN" not in sources


def test_store_atom_sources(template):
    sources = {atom.source for atom in template.atoms_for_opcode(Opcode.SW)}
    assert "MEM_W_ADDR" in sources and "IS_WORD_ALIGNED" in sources
    assert "RD" not in sources and "REG_RD" not in sources
    assert "RAW_RD_1" not in sources and "WAW_1" not in sources


def test_branch_atom_sources(template):
    sources = {atom.source for atom in template.atoms_for_opcode(Opcode.BEQ)}
    assert "BRANCH_TAKEN" in sources and "NEW_PC" in sources
    assert "RD" not in sources


def test_jump_atom_sources(template):
    jal = {atom.source for atom in template.atoms_for_opcode(Opcode.JAL)}
    assert "NEW_PC" in jal and "BRANCH_TAKEN" not in jal
    jalr = {atom.source for atom in template.atoms_for_opcode(Opcode.JALR)}
    assert "NEW_PC" in jalr and "REG_RS1" in jalr


def test_max_distance_controls_dl_atoms():
    short = build_riscv_template(max_distance=1)
    default = build_riscv_template()
    short_dl = [a for a in short if a.family is LeakageFamily.DL]
    default_dl = [a for a in default if a.family is LeakageFamily.DL]
    assert len(default_dl) == 4 * len(short_dl)


def test_max_distance_zero_removes_dl():
    template = build_riscv_template(max_distance=0)
    assert not [a for a in template if a.family is LeakageFamily.DL]


def test_restricted_opcode_set():
    template = build_riscv_template(opcodes=[Opcode.DIV])
    assert all(atom.opcode is Opcode.DIV for atom in template)
    assert len(template) > 0


def test_ids_by_family(template):
    il_ids = template.ids_by_family([LeakageFamily.IL])
    assert il_ids
    assert all(template.atom(i).family is LeakageFamily.IL for i in il_ids)
    all_ids = template.ids_by_family(FULL_FAMILIES)
    assert len(all_ids) == len(template)


def test_template_families(template):
    assert template_families(template) == list(LeakageFamily)


def test_cumulative_family_sets():
    sets = cumulative_family_sets()
    assert sets[0] == BASE_FAMILIES
    assert sets[-1] == tuple(FULL_FAMILIES)
    assert len(sets) == 4


def test_contract_membership(template):
    contract = Contract(template, [0, 5, 9])
    assert 5 in contract and 1 not in contract
    assert len(contract) == 3
    assert [atom.atom_id for atom in contract.atoms] == [0, 5, 9]


def test_contract_rejects_bad_ids(template):
    with pytest.raises(ValueError):
        Contract(template, [len(template)])


def test_contract_distinguishes(template):
    contract = Contract(template, [1, 2])
    assert contract.distinguishes(frozenset({2, 7}))
    assert not contract.distinguishes(frozenset({3, 4}))
    assert not contract.distinguishes(frozenset())


def test_contract_equality(template):
    assert Contract(template, [1, 2]) == Contract(template, [2, 1])
    assert Contract(template, [1]) != Contract(template, [2])


def test_contract_summary(template):
    contract = Contract(template, [0])
    text = contract.summary()
    assert "1 atoms" in text and template.atom(0).name in text


def test_contract_by_category_and_family(template):
    div_atom = next(
        atom for atom in template
        if atom.opcode is Opcode.DIV and atom.source == "REG_RS2"
    )
    contract = Contract(template, [div_atom.atom_id])
    grouped = contract.by_category_and_family()
    key = (InstructionCategory.DIVISION, LeakageFamily.RL)
    assert key in grouped and grouped[key][0] is div_atom
