"""Tests for contract atoms and observation functions."""

import pytest

from repro.contracts.atoms import (
    LeakageFamily,
    family_of_source,
    make_atom,
    make_observation_function,
)
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.isa.instructions import Opcode
from repro.isa.state import ArchState


def records_for(source, regs=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return execute_program(program, state)


def test_make_atom_fields():
    atom = make_atom(7, Opcode.DIV, "REG_RS2")
    assert atom.atom_id == 7
    assert atom.opcode is Opcode.DIV
    assert atom.source == "REG_RS2"
    assert atom.family is LeakageFamily.RL
    assert atom.name == "div:REG_RS2"


def test_pi_matches_opcode_only():
    atom = make_atom(0, Opcode.DIV, "REG_RS2")
    records = records_for("div x1, x2, x3\nadd x4, x5, x6")
    assert atom.applies(records[0])
    assert not atom.applies(records[1])


def test_paper_example_divisor_atom():
    # (π_DIV, REG_RS2, φ_REG_RS2): exposes the divisor of divisions.
    atom = make_atom(0, Opcode.DIV, "REG_RS2")
    records = records_for("div x1, x2, x3", regs={2: 100, 3: 7})
    assert atom.observe(records[0]) == 7


@pytest.mark.parametrize(
    "source,expected",
    [
        ("OP", "add"),
        ("RD", 1),
        ("RS1", 2),
        ("RS2", 3),
        ("REG_RS1", 20),
        ("REG_RS2", 30),
        ("REG_RD", 50),
    ],
)
def test_simple_observations_on_add(source, expected):
    observe = make_observation_function(source)
    records = records_for("add x1, x2, x3", regs={2: 20, 3: 30})
    assert observe(records[0]) == expected


def test_imm_observation():
    observe = make_observation_function("IMM")
    records = records_for("addi x1, x0, -37")
    assert observe(records[0]) == -37


def test_memory_observations():
    records = records_for(
        "sw x2, 4(x1)\nlw x3, 4(x1)", regs={1: 0x100, 2: 0xBEEF}
    )
    store, load = records
    assert make_observation_function("MEM_W_ADDR")(store) == 0x104
    assert make_observation_function("MEM_W_DATA")(store) == 0xBEEF
    assert make_observation_function("MEM_R_ADDR")(load) == 0x104
    assert make_observation_function("MEM_R_DATA")(load) == 0xBEEF


@pytest.mark.parametrize(
    "offset,word_aligned,half_aligned",
    [(0, True, True), (1, False, True), (2, False, True), (3, False, False)],
)
def test_alignment_observations(offset, word_aligned, half_aligned):
    records = records_for("lb x3, 0(x1)", regs={1: 0x100 + offset})
    assert make_observation_function("IS_WORD_ALIGNED")(records[0]) is word_aligned
    assert make_observation_function("IS_HALF_ALIGNED")(records[0]) is half_aligned


def test_branch_observations():
    records = records_for("beq x1, x2, 8\nnop\nnop", regs={1: 5, 2: 5})
    assert make_observation_function("BRANCH_TAKEN")(records[0]) is True
    assert make_observation_function("NEW_PC")(records[0]) == records[0].pc + 8


def test_dependency_observation_within_distance():
    observe_1 = make_observation_function("RAW_RS1_1")
    observe_2 = make_observation_function("RAW_RS1_2")
    records = records_for("addi x2, x0, 1\nnop\nadd x1, x2, x3")
    consumer = records[2]
    assert observe_1(consumer) is False     # distance 2 > 1
    assert observe_2(consumer) is True      # within 2


def test_waw_and_war_observations():
    records = records_for("add x3, x1, x2\naddi x1, x0, 1\naddi x1, x0, 2")
    assert make_observation_function("RAW_RD_1")(records[1]) is True  # WAR on x1
    assert make_observation_function("WAW_1")(records[2]) is True


def test_family_of_source():
    assert family_of_source("OP") is LeakageFamily.IL
    assert family_of_source("REG_RD") is LeakageFamily.RL
    assert family_of_source("MEM_R_ADDR") is LeakageFamily.ML
    assert family_of_source("IS_HALF_ALIGNED") is LeakageFamily.AL
    assert family_of_source("NEW_PC") is LeakageFamily.BL
    assert family_of_source("RAW_RS2_3") is LeakageFamily.DL


def test_unknown_source_rejected():
    with pytest.raises(ValueError):
        make_observation_function("BOGUS")
    with pytest.raises(ValueError):
        family_of_source("BOGUS_9x")


def test_family_ordering():
    assert LeakageFamily.IL < LeakageFamily.DL
    assert not LeakageFamily.BL < LeakageFamily.AL


def test_atom_is_frozen():
    atom = make_atom(0, Opcode.ADD, "OP")
    with pytest.raises(AttributeError):
        atom.source = "RD"
