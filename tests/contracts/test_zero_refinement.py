"""Tests for the IS_ZERO_RS* refinement atoms (§III-E in action)."""

import random

import pytest

from repro.contracts.atoms import LeakageFamily, family_of_source, make_observation_function
from repro.contracts.observations import distinguishing_atoms
from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.isa.state import ArchState
from repro.synthesis.metrics import evaluate_contract
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core


@pytest.fixture(scope="module")
def refined_template():
    return build_riscv_template(zero_value_atoms=True)


def test_base_template_unchanged():
    assert len(build_riscv_template()) == 892


def test_refined_template_larger(refined_template):
    base = build_riscv_template()
    assert len(refined_template) > len(base)
    assert refined_template.name == "riscv-rv32im-zref"
    zero_atoms = [
        atom for atom in refined_template if atom.source.startswith("IS_ZERO")
    ]
    assert zero_atoms
    assert all(atom.family is LeakageFamily.RL for atom in zero_atoms)


def test_observation_functions():
    records = execute_program(
        assemble("mul x1, x2, x3"),
        ArchState(pc=0x1000, regs=[0] * 2 + [0] + [7] + [0] * 28),
    )
    observe_rs1 = make_observation_function("IS_ZERO_RS1")
    observe_rs2 = make_observation_function("IS_ZERO_RS2")
    assert observe_rs1(records[0]) is True      # x2 == 0
    assert observe_rs2(records[0]) is False     # x3 == 7
    assert family_of_source("IS_ZERO_RS1") is LeakageFamily.RL


def test_zero_atom_distinguishes_only_zeroness(refined_template):
    def run(value):
        program = assemble("mul x1, x2, x3")
        state = ArchState(pc=program.base_address)
        state.write_register(2, value)
        state.write_register(3, 9)
        return execute_program(program, state)

    atom = next(
        atom for atom in refined_template.atoms_for_opcode(
            next(iter({a.opcode for a in refined_template if a.name == "mul:IS_ZERO_RS1"}))
        )
        if atom.source == "IS_ZERO_RS1"
    )
    zero_vs_nonzero = distinguishing_atoms(refined_template, run(0), run(5))
    nonzero_vs_nonzero = distinguishing_atoms(refined_template, run(4), run(5))
    assert atom.atom_id in zero_vs_nonzero
    assert atom.atom_id not in nonzero_vs_nonzero


def test_generator_targets_zero_atoms(refined_template):
    atom = next(a for a in refined_template if a.name == "mul:IS_ZERO_RS2")
    generator = TestCaseGenerator(refined_template, seed=44)
    hits = 0
    for trial in range(10):
        case = generator.generate_for_atom(atom, trial, random.Random(trial))
        records_a = execute_program(case.program_a, case.initial_state.copy())
        records_b = execute_program(case.program_b, case.initial_state.copy())
        if atom.atom_id in distinguishing_atoms(refined_template, records_a, records_b):
            hits += 1
    assert hits >= 8


@pytest.mark.slow
def test_refinement_improves_cva6_precision(refined_template):
    """The paper's refinement loop, reproduced: adding finer atoms for
    an observed leak (CVA6's zero-skip multiplier) must not hurt — and
    should improve — the synthesized contract's precision."""
    generator = TestCaseGenerator(refined_template, seed=71)
    evaluator = TestCaseEvaluator(CVA6Core(), refined_template)
    synthesis_set = evaluator.evaluate_many(generator.iter_generate(900))
    held_out_generator = TestCaseGenerator(refined_template, seed=72)
    held_out = evaluator.evaluate_many(held_out_generator.iter_generate(1500))

    base_ids = frozenset(
        atom.atom_id
        for atom in refined_template
        if not atom.source.startswith("IS_ZERO")
    )
    base_contract = synthesize(
        synthesis_set, refined_template, allowed_atom_ids=base_ids
    ).contract
    refined_contract = synthesize(synthesis_set, refined_template).contract

    zero_atoms_selected = [
        atom for atom in refined_contract.atoms if atom.source.startswith("IS_ZERO")
    ]
    assert zero_atoms_selected, "refinement atoms should be selected for CVA6"

    base_precision = evaluate_contract(base_contract, held_out).precision
    refined_precision = evaluate_contract(refined_contract, held_out).precision
    assert refined_precision is not None and base_precision is not None
    assert refined_precision >= base_precision - 0.02
