"""Tests for observation traces and distinguishing-atom extraction."""

import pytest

from repro.contracts.atoms import make_atom
from repro.contracts.observations import (
    atom_observation_trace,
    distinguishing_atoms,
)
from repro.contracts.riscv_template import build_riscv_template
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.isa.instructions import Opcode
from repro.isa.state import ArchState


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def run(source, regs=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return execute_program(program, state)


def atom_named(template, opcode, source):
    for atom in template.atoms_for_opcode(opcode):
        if atom.source == source:
            return atom
    raise LookupError("%s:%s" % (opcode, source))


def test_observation_trace_positions():
    atom = make_atom(0, Opcode.DIV, "REG_RS2")
    records = run("add x1, x2, x3\ndiv x4, x5, x6\ndiv x7, x8, x9",
                  regs={6: 3, 9: 4})
    trace = atom_observation_trace(atom, records)
    assert trace == ((1, 3), (2, 4))


def test_observation_trace_empty_when_never_applicable():
    atom = make_atom(0, Opcode.MUL, "OP")
    records = run("add x1, x2, x3")
    assert atom_observation_trace(atom, records) == ()


def test_identical_programs_have_no_distinguishing_atoms(template):
    records_a = run("addi x1, x0, 1\nadd x2, x1, x1")
    records_b = run("addi x1, x0, 1\nadd x2, x1, x1")
    assert distinguishing_atoms(template, records_a, records_b) == frozenset()


def test_divisor_difference_distinguishes_expected_atoms(template):
    records_a = run("div x1, x2, x3", regs={2: 100, 3: 4})
    records_b = run("div x1, x2, x3", regs={2: 100, 3: 5})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "div:REG_RS2" in names
    assert "div:REG_RD" in names            # quotient differs too
    assert "div:REG_RS1" not in names
    assert "div:OP" not in names


def test_opcode_mutation_distinguishes_both_op_atoms(template):
    records_a = run("add x1, x2, x3", regs={2: 1, 3: 1})
    records_b = run("sub x1, x2, x3", regs={2: 1, 3: 1})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "add:OP" in names and "sub:OP" in names
    # 1+1 != 1-1, so the destination value differs as well.
    assert "add:REG_RD" in names and "sub:REG_RD" in names


def test_equal_result_masks_value_atoms(template):
    # 7+0 == 0+7: operand values differ but the result does not, so
    # REG_RD does not distinguish while REG_RS1/REG_RS2 do.
    records_a = run("add x1, x2, x3", regs={2: 7, 3: 0})
    records_b = run("add x1, x2, x3", regs={2: 0, 3: 7})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "add:REG_RD" not in names
    assert {"add:REG_RS1", "add:REG_RS2"} <= names


def test_opcode_mutation_makes_all_typed_atoms_distinguish(template):
    # Mutating the opcode changes applicability: every atom typed on
    # either opcode distinguishes, including value atoms whose values
    # agree — their traces differ in *position of applicability*.
    records_a = run("add x1, x2, x3", regs={2: 7, 3: 0})
    records_b = run("sub x1, x2, x3", regs={2: 7, 3: 0})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert {"add:OP", "sub:OP", "add:REG_RD", "sub:REG_RD"} <= names


def test_alignment_difference(template):
    records_a = run("lw x1, 0(x2)", regs={2: 0x100})
    records_b = run("lw x1, 0(x2)", regs={2: 0x102})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "lw:IS_WORD_ALIGNED" in names
    assert "lw:MEM_R_ADDR" in names
    assert "lw:REG_RS1" in names


def test_same_alignment_different_address(template):
    records_a = run("lw x1, 0(x2)", regs={2: 0x100})
    records_b = run("lw x1, 0(x2)", regs={2: 0x104})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "lw:IS_WORD_ALIGNED" not in names
    assert "lw:MEM_R_ADDR" in names


def test_branch_outcome_difference(template):
    records_a = run("beq x1, x2, 8\nnop\nnop", regs={1: 1, 2: 1})
    records_b = run("beq x1, x2, 8\nnop\nnop", regs={1: 1, 2: 2})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "beq:BRANCH_TAKEN" in names
    assert "beq:NEW_PC" in names
    assert "beq:REG_RS2" in names
    # Taken path skips an instruction: the executed suffix differs, so
    # atoms of the skipped/executed instructions may appear; the nop
    # stream is identical here so position shifts are invisible to
    # per-atom traces of nop atoms only if traces coincide.


def test_dependency_difference(template):
    records_a = run("addi x2, x0, 1\nmul x1, x2, x3")
    records_b = run("addi x5, x0, 1\nmul x1, x2, x3")
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    # Dependency atoms at every distance >= 1 observe "within n".
    assert {"mul:RAW_RS1_1", "mul:RAW_RS1_2", "mul:RAW_RS1_3", "mul:RAW_RS1_4"} <= names
    # The producer's destination index changed: addi:RD distinguishes.
    assert "addi:RD" in names


def test_different_length_executions(template):
    records_a = run("beq x1, x1, 8\naddi x2, x0, 1\naddi x3, x0, 1")  # skips one
    records_b = run("beq x1, x2, 8\naddi x2, x0, 1\naddi x3, x0, 1", regs={2: 9})
    atom_ids = distinguishing_atoms(template, records_a, records_b)
    names = {template.atom(atom_id).name for atom_id in atom_ids}
    assert "beq:BRANCH_TAKEN" in names
    assert "addi:OP" in names  # the executed addi stream differs in position


def test_distinguishing_is_symmetric(template):
    records_a = run("div x1, x2, x3", regs={2: 100, 3: 4})
    records_b = run("div x1, x2, x3", regs={2: 100, 3: 5})
    assert distinguishing_atoms(template, records_a, records_b) == (
        distinguishing_atoms(template, records_b, records_a)
    )
