"""Equivalence: compiled columnar fast path vs. reference semantics.

The compiled engine (`repro.contracts.compiled`) must be
observationally indistinguishable from the closure-per-atom reference
implementation for every input — including control-flow-divergent and
unequal-length traces.  These tests sweep random seeds, both cores,
and templates with and without restriction, and assert byte-identical
``EvaluationDataset`` output between the fast-path and reference
evaluators.
"""

import random

import pytest

from repro.contracts.compiled import _slot_of_source, compile_template
from repro.contracts.observations import (
    _observation_map,
    contract_observation_trace,
    contract_observation_trace_reference,
    distinguishing_atoms,
    distinguishing_atoms_reference,
)
from repro.contracts.riscv_template import (
    BASE_FAMILIES,
    build_riscv_template,
)
from repro.contracts.template import Contract
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.parallel import evaluate_parallel
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore

CORES = {"ibex": IbexCore, "cva6": CVA6Core}


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


@pytest.fixture(scope="module")
def refined_template():
    return build_riscv_template(zero_value_atoms=True)


def _record_pairs(template, core, seed, count):
    """Simulated record pairs for ``count`` generated test cases."""
    generator = TestCaseGenerator(template, seed=seed)
    pairs = []
    for case in generator.iter_generate(count):
        result_a = core.simulate(case.program_a, case.initial_state)
        result_b = core.simulate(case.program_b, case.initial_state)
        pairs.append((result_a.trace.exec_records, result_b.trace.exec_records))
    return pairs


@pytest.mark.parametrize("core_name", sorted(CORES))
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_distinguishing_atoms_matches_reference(template, core_name, seed):
    core = CORES[core_name]()
    for records_a, records_b in _record_pairs(template, core, seed, 40):
        fast = distinguishing_atoms(template, records_a, records_b)
        reference = distinguishing_atoms_reference(template, records_a, records_b)
        assert fast == reference


@pytest.mark.parametrize("seed", [3, 11])
def test_refined_template_matches_reference(refined_template, seed):
    core = IbexCore()
    for records_a, records_b in _record_pairs(refined_template, core, seed, 25):
        fast = distinguishing_atoms(refined_template, records_a, records_b)
        reference = distinguishing_atoms_reference(
            refined_template, records_a, records_b
        )
        assert fast == reference


def test_atom_traces_match_observation_map(template):
    compiled = compile_template(template)
    core = IbexCore()
    for records_a, records_b in _record_pairs(template, core, 5, 10):
        for records in (records_a, records_b):
            assert compiled.atom_traces(records) == _observation_map(
                template, records
            )


def _divergent_record_pairs(template):
    """Hand-built control-flow-divergent and unequal-length traces."""
    taken = assemble(
        """
        addi x1, x0, 5
        addi x2, x0, 5
        beq  x1, x2, 8
        mul  x3, x1, x2
        add  x4, x1, x2
        """
    )
    not_taken = assemble(
        """
        addi x1, x0, 5
        addi x2, x0, 6
        beq  x1, x2, 8
        mul  x3, x1, x2
        add  x4, x1, x2
        """
    )
    # A jump past the end of the program truncates the trace entirely.
    early_exit = assemble(
        """
        addi x1, x0, 5
        jal  x5, 12
        addi x2, x0, 6
        add  x4, x1, x1
        """
    )
    straight = assemble(
        """
        addi x1, x0, 5
        addi x2, x0, 6
        addi x3, x0, 7
        add  x4, x1, x1
        """
    )
    runs = {
        name: execute_program(program)
        for name, program in {
            "taken": taken,
            "not_taken": not_taken,
            "early_exit": early_exit,
            "straight": straight,
        }.items()
    }
    assert len(runs["taken"]) != len(runs["not_taken"])
    assert len(runs["early_exit"]) != len(runs["straight"])
    return [
        (runs["taken"], runs["not_taken"]),
        (runs["early_exit"], runs["straight"]),
        (runs["taken"], runs["straight"]),
        (runs["early_exit"], runs["taken"]),
    ]


def test_control_flow_divergence_matches_reference(template):
    for records_a, records_b in _divergent_record_pairs(template):
        fast = distinguishing_atoms(template, records_a, records_b)
        reference = distinguishing_atoms_reference(template, records_a, records_b)
        assert fast == reference
        # Symmetry holds on the fast path too.
        assert fast == distinguishing_atoms(template, records_b, records_a)


def test_empty_and_identical_traces(template):
    records = execute_program(assemble("addi x1, x0, 1"))
    assert distinguishing_atoms(template, [], []) == frozenset()
    assert distinguishing_atoms(template, records, records) == frozenset()
    assert distinguishing_atoms(template, records, []) == \
        distinguishing_atoms_reference(template, records, [])


@pytest.mark.parametrize("restricted", [False, True])
def test_contract_observation_trace_matches_reference(template, restricted):
    atom_ids = (
        template.restrict(BASE_FAMILIES)
        if restricted
        else frozenset(range(len(template)))
    )
    contract = Contract(template, atom_ids)
    core = IbexCore()
    for records_a, records_b in _record_pairs(template, core, 13, 10):
        for records in (records_a, records_b):
            fast = contract_observation_trace(contract, records)
            reference = contract_observation_trace_reference(contract, records)
            assert fast == reference


def test_contract_trace_rejects_foreign_template(template, refined_template):
    contract = Contract(refined_template, [0, 1])
    with pytest.raises(ValueError):
        compile_template(template).contract_observation_trace(contract, [])


@pytest.mark.parametrize("core_name", sorted(CORES))
def test_fastpath_dataset_byte_identical(template, core_name):
    """Fast-path evaluator output is byte-identical to the reference."""
    core_factory = CORES[core_name]
    generator = TestCaseGenerator(template, seed=23)
    fast = TestCaseEvaluator(core_factory(), template, use_fastpath=True)
    reference = TestCaseEvaluator(core_factory(), template, use_fastpath=False)
    dataset_fast = fast.evaluate_many(generator.generate(50))
    dataset_reference = reference.evaluate_many(generator.generate(50))
    assert dataset_fast.to_json() == dataset_reference.to_json()


def test_parallel_fastpath_byte_identical_to_sequential_reference():
    parallel = evaluate_parallel("ibex", 60, seed=31, processes=2, shard_size=15)
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=31)
    reference = TestCaseEvaluator(IbexCore(), template, use_fastpath=False)
    sequential = reference.evaluate_many(generator.iter_generate(60))
    assert parallel.to_json() == sequential.to_json()


def test_randomized_feature_rows_cover_every_source(template):
    """Every template source reads the slot the reference closure reads."""
    compiled = compile_template(template)
    rng = random.Random(1234)
    core = IbexCore()
    seen_opcodes = set()
    atoms = list(template)
    generator = TestCaseGenerator(template, seed=77)
    for _ in range(60):
        atom = atoms[rng.randrange(len(atoms))]
        case = generator.generate_for_atom(atom, 0, rng)
        records = core.simulate(
            case.program_a, case.initial_state
        ).trace.exec_records
        for record in records:
            row = compiled.feature_row(record)
            seen_opcodes.add(record.opcode)
            for applicable in template.atoms_for_opcode(record.opcode):
                slot = _slot_of_source(applicable.source, compiled.max_distance)
                assert row[slot] == applicable.observe(record)
    assert len(seen_opcodes) > 10


# ----------------------------------------------------------------------
# Batched engine (fastpath mode "batch") vs. reference


@pytest.mark.parametrize("core_name", ["cva6", "ibex", "ibex-dcache"])
@pytest.mark.parametrize(
    "attacker_name", ["retirement-timing", "total-time", "cache-state"]
)
@pytest.mark.parametrize(
    "template_name", ["riscv-rv32im", "riscv-rv32im-zref", "riscv-mem"]
)
def test_batch_matrix_byte_identical(core_name, attacker_name, template_name):
    """Batch-vs-reference matrix: every registered core x attacker x
    template produces byte-identical datasets under the batched engine."""
    from repro.attacker import ATTACKER_REGISTRY
    from repro.contracts.riscv_template import TEMPLATE_REGISTRY
    from repro.uarch import CORE_REGISTRY

    matrix_template = TEMPLATE_REGISTRY.create(template_name)
    generator = TestCaseGenerator(matrix_template, seed=41)
    cases = list(generator.iter_generate(25))
    batch = TestCaseEvaluator(
        CORE_REGISTRY.create(core_name),
        matrix_template,
        attacker=ATTACKER_REGISTRY.create(attacker_name),
        use_fastpath="batch",
    )
    reference = TestCaseEvaluator(
        CORE_REGISTRY.create(core_name),
        matrix_template,
        attacker=ATTACKER_REGISTRY.create(attacker_name),
        use_fastpath=False,
    )
    dataset_batch = batch.evaluate_many(iter(cases))
    dataset_reference = reference.evaluate_many(iter(cases))
    assert dataset_batch.to_json() == dataset_reference.to_json()


def test_batch_empty_and_odd_sized_batches(template):
    """Edge sizes: empty, single-case, and odd batch sizes all agree."""
    evaluator = TestCaseEvaluator(IbexCore(), template, use_fastpath="batch")
    reference = TestCaseEvaluator(IbexCore(), template, use_fastpath=False)
    assert evaluator.evaluate_batch([]) == []
    generator = TestCaseGenerator(template, seed=19)
    cases = list(generator.iter_generate(23))
    for size in (1, 3, 7, 23):
        got = evaluator.evaluate_batch(cases[:size])
        want = [reference.evaluate(case) for case in cases[:size]]
        assert got == want


def test_batch_boundary_straddling_shards(template):
    """A batched parallel run whose shard size straddles the count is
    byte-identical to the sequential reference."""
    parallel = evaluate_parallel(
        "ibex",
        53,
        seed=47,
        executor="serial",
        shard_size=17,
        use_fastpath="batch",
    )
    generator = TestCaseGenerator(template, seed=47)
    reference = TestCaseEvaluator(IbexCore(), template, use_fastpath=False)
    sequential = reference.evaluate_many(generator.iter_generate(53))
    assert parallel.to_json() == sequential.to_json()


def test_batch_mode_falls_back_for_unknown_core(template):
    """Subclassed cores (possibly overridden timing) take the scalar
    path even under the "batch" mode, staying byte-identical."""

    class TweakedIbex(IbexCore):
        name = "tweaked-ibex"

    evaluator = TestCaseEvaluator(TweakedIbex(), template, use_fastpath="batch")
    assert not evaluator._batch_engine
    generator = TestCaseGenerator(template, seed=5)
    cases = list(generator.iter_generate(5))
    reference = TestCaseEvaluator(TweakedIbex(), template, use_fastpath=False)
    assert evaluator.evaluate_batch(cases) == [
        reference.evaluate(case) for case in cases
    ]
