"""The metrics registry: instruments, snapshots, and the no-op pin."""

import gc
import json
import tracemalloc

import pytest

import repro.metrics.registry as registry_module
from repro.metrics.registry import (
    Metrics,
    current_metrics,
    install_metrics,
)
from repro.trace import Tracer

pytestmark = pytest.mark.trace


def _read_records(path):
    with open(path) as stream:
        return [json.loads(line) for line in stream if line.strip()]


class TestInstruments:
    def test_counter_accumulates(self, tmp_path):
        metrics = Metrics(Tracer(str(tmp_path / "t.jsonl")))
        metrics.counter("a").inc()
        metrics.counter("a").inc(4)
        assert metrics.counter("a").value == 5

    def test_gauge_keeps_last_value(self, tmp_path):
        metrics = Metrics(Tracer(str(tmp_path / "t.jsonl")))
        metrics.gauge("g").set(2.0)
        metrics.gauge("g").set(0.5)
        assert metrics.gauge("g").value == 0.5

    def test_histogram_snapshot_wire_form(self, tmp_path):
        metrics = Metrics(Tracer(str(tmp_path / "t.jsonl")))
        histogram = metrics.histogram("h")
        for value in (1.0, 2.0, 4.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["total"] == 7.0
        assert snapshot["min"] == 1.0 and snapshot["max"] == 4.0
        # Only non-empty buckets, JSON string keys.
        assert snapshot["buckets"]
        assert all(isinstance(key, str) for key in snapshot["buckets"])
        assert sum(snapshot["buckets"].values()) == 3

    def test_instruments_are_cached_by_name(self, tmp_path):
        metrics = Metrics(Tracer(str(tmp_path / "t.jsonl")))
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.counter("a") is not metrics.counter("b")


class TestSnapshots:
    def test_flush_emits_one_metric_record(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        metrics = Metrics(Tracer(path, source="unit"))
        metrics.counter("x").inc(3)
        metrics.gauge("g").set(1.5)
        metrics.histogram("h").observe(0.25)
        metrics.flush(final=True)
        records = _read_records(path)
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "metric"
        assert "start_ts" not in record and "seconds" not in record
        assert record["source"] == "unit"
        assert record["counters"] == {"x": 3}
        assert record["gauges"] == {"g": 1.5}
        assert record["histograms"]["h"]["count"] == 1
        assert record["final"] is True

    def test_snapshots_are_cumulative_per_process(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        metrics = Metrics(Tracer(path))
        metrics.counter("x").inc(2)
        metrics.flush()
        metrics.counter("x").inc(3)
        metrics.flush(final=True)
        counters = [record["counters"]["x"] for record in _read_records(path)]
        assert counters == [2, 5]

    def test_flush_with_no_instruments_emits_nothing(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        Metrics(Tracer(path)).flush(final=True)
        assert not (tmp_path / "t.jsonl").exists()

    def test_maybe_flush_throttles_to_the_interval(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        metrics = Metrics(Tracer(path), flush_interval=1.0)
        metrics.counter("x").inc()
        metrics.maybe_flush(now=100.0)  # arms the interval
        metrics.maybe_flush(now=100.5)  # within it
        assert not (tmp_path / "t.jsonl").exists()
        metrics.maybe_flush(now=101.5)
        assert len(_read_records(path)) == 1


class TestInstallation:
    def test_install_returns_previous_and_none_disables(self, tmp_path):
        metrics = Metrics(Tracer(str(tmp_path / "t.jsonl")))
        previous = install_metrics(metrics)
        try:
            assert current_metrics() is metrics
        finally:
            install_metrics(previous)
        assert current_metrics() is previous
        restored = install_metrics(None)
        try:
            assert not current_metrics().enabled
        finally:
            install_metrics(restored)

    def test_registry_disabled_without_active_tracer(self):
        assert not Metrics(None).enabled
        assert not Metrics(Tracer(None)).enabled


class TestDisabledHotPath:
    def test_disabled_instruments_are_shared_singletons(self):
        metrics = Metrics(None)
        assert metrics.counter("a") is metrics.counter("b")
        assert metrics.gauge("a") is metrics.gauge("b")
        assert metrics.histogram("a") is metrics.histogram("b")

    def test_disabled_hot_path_allocates_nothing(self):
        metrics = Metrics(None)
        for _ in range(200):  # warm CPython's dict/frame freelists
            metrics.counter("x").inc()
            metrics.gauge("g").set(1.0)
            metrics.histogram("h").observe(0.5)
            metrics.maybe_flush()
        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            metrics.counter("x").inc()
            metrics.gauge("g").set(1.0)
            metrics.histogram("h").observe(0.5)
            metrics.maybe_flush()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        only_registry = tracemalloc.Filter(True, registry_module.__file__)
        growth = after.filter_traces([only_registry]).compare_to(
            before.filter_traces([only_registry]), "lineno"
        )
        assert sum(entry.size_diff for entry in growth) == 0
