"""Reader-side merging of metric snapshots across processes."""

import pytest

from repro.metrics import MetricsAggregate, is_metric_record

pytestmark = pytest.mark.trace


def _metric(pid, source, counters=None, gauges=None, histograms=None, ts=100.0):
    return {
        "ts": ts,
        "pid": pid,
        "kind": "metric",
        "source": source,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
        "final": False,
    }


def _histogram(values):
    from repro.metrics.registry import Histogram

    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram.snapshot()


class TestIsMetricRecord:
    def test_discriminates_on_kind_and_shape(self):
        assert is_metric_record(_metric(1, "main"))
        # A span named "metric" would carry start_ts: not a snapshot.
        assert not is_metric_record(
            {"ts": 1.0, "start_ts": 0.0, "pid": 1, "kind": "metric"}
        )
        assert not is_metric_record({"ts": 1.0, "pid": 1, "kind": "phase"})


class TestCounters:
    def test_last_snapshot_per_key_then_summed_across_processes(self):
        aggregate = MetricsAggregate()
        # Cumulative snapshots from pid 1: only the last one counts.
        aggregate.ingest(_metric(1, "main", counters={"x": 2}, ts=100.0))
        aggregate.ingest(_metric(1, "main", counters={"x": 5}, ts=101.0))
        # A different process contributes additively.
        aggregate.ingest(_metric(2, "w1", counters={"x": 3}, ts=101.0))
        assert aggregate.counters() == {"x": 8}


class TestGauges:
    def test_envelope_tracks_last_min_max(self):
        aggregate = MetricsAggregate()
        aggregate.ingest(_metric(1, "main", gauges={"depth": 4}))
        aggregate.ingest(_metric(1, "main", gauges={"depth": 9}))
        aggregate.ingest(_metric(2, "w1", gauges={"depth": 1}))
        summary = aggregate.gauges()["depth"]
        assert summary.last == 1
        assert summary.min == 1 and summary.max == 9
        assert summary.samples == 3


class TestHistograms:
    def test_merged_across_processes_with_percentiles(self):
        aggregate = MetricsAggregate()
        aggregate.ingest(
            _metric(1, "main", histograms={"h": _histogram([1.0, 2.0])})
        )
        aggregate.ingest(
            _metric(2, "w1", histograms={"h": _histogram([4.0, 64.0])})
        )
        merged = aggregate.histograms()["h"]
        assert merged.count == 4
        assert merged.min == 1.0 and merged.max == 64.0
        assert merged.mean == pytest.approx(71.0 / 4)
        # Percentiles are exact to one geometric bucket and clamped to
        # the observed range.
        assert merged.min <= merged.percentile(0.5) <= merged.max
        assert merged.percentile(1.0) == 64.0
