"""The self-contained run report rendered from a trace file."""

import json

import pytest

from repro.metrics import render_report

pytestmark = pytest.mark.trace


RECORDS = [
    {"ts": 100.0, "start_ts": 100.0, "pid": 1, "kind": "pipeline"},
    {
        "ts": 102.0,
        "start_ts": 100.0,
        "pid": 1,
        "kind": "phase",
        "phase": "evaluate",
        "seconds": 2.0,
        "ok": True,
    },
    {
        "ts": 103.0,
        "start_ts": 100.0,
        "pid": 1,
        "kind": "pipeline",
        "seconds": 3.0,
        "ok": True,
    },
    {
        "ts": 103.0,
        "pid": 1,
        "kind": "metric",
        "source": "main",
        "counters": {"dataset.cache.hits": 2, "solver.cold_solves": 1},
        "gauges": {"queue.depth": 3},
        "histograms": {
            "batchsim.lanes.active": {
                "count": 2,
                "total": 96.0,
                "min": 32.0,
                "max": 64.0,
                "buckets": {"45": 1, "46": 1},
            }
        },
        "final": True,
    },
]


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as stream:
        for record in RECORDS:
            stream.write(json.dumps(record) + "\n")
    return str(path)


class TestMarkdownReport:
    def test_sections_and_values(self, trace_path):
        report = render_report(trace_path, fmt="markdown", title="Run report")
        assert report.startswith("# Run report")
        assert "## Span summary" in report
        assert "## Counters" in report
        assert "| dataset.cache.hits | 2 |" in report
        assert "| solver.cold_solves | 1 |" in report
        assert "## Gauges" in report
        assert "queue.depth" in report
        assert "## Histogram percentiles" in report
        assert "batchsim.lanes.active" in report
        assert "## Slowest spans" in report

    def test_md_alias_and_default_title(self, trace_path):
        report = render_report(trace_path, fmt="md")
        assert report.startswith("# Run report: %s" % trace_path)


class TestHtmlReport:
    def test_self_contained_document(self, trace_path):
        report = render_report(trace_path, fmt="html", title="Run report")
        assert report.startswith("<!DOCTYPE html>")
        assert "<style>" in report  # no external assets
        assert "dataset.cache.hits" in report
        assert "</html>" in report.rstrip()


class TestErrors:
    def test_unknown_format_raises(self, trace_path):
        with pytest.raises(ValueError):
            render_report(trace_path, fmt="pdf")
