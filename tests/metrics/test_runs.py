"""The run-history index: record, list, resolve, and diff."""

import pytest

from repro.metrics import (
    diff_runs,
    load_runs,
    record_run,
    render_runs,
    resolve_run,
)

pytestmark = pytest.mark.trace


class TestRecordAndLoad:
    def test_round_trips_through_the_index(self, tmp_path):
        results = str(tmp_path / "results")
        recorded = record_run(
            results,
            kind="pipeline",
            label="core=ibex budget=500",
            seconds=2.5,
            cases=500,
            phases={"evaluate": 2.0, "synthesize": 0.5},
            extra={"atoms": 4},
        )
        runs = load_runs(results)
        assert runs == [recorded]
        run = runs[0]
        assert run["id"].startswith("pipeline-")
        assert run["throughput"] == pytest.approx(200.0)
        assert run["phases"]["evaluate"] == 2.0
        assert run["atoms"] == 4

    def test_missing_index_is_empty(self, tmp_path):
        assert load_runs(str(tmp_path / "nowhere")) == []

    def test_torn_tail_is_tolerated(self, tmp_path):
        results = str(tmp_path)
        record_run(results, kind="pipeline", label="a", seconds=1.0)
        with open(tmp_path / "runs.jsonl", "a") as stream:
            stream.write('{"kind": "pipeline", "label": "torn')
        assert len(load_runs(results)) == 1


class TestResolve:
    @pytest.fixture
    def runs(self, tmp_path):
        results = str(tmp_path)
        for index in range(3):
            record_run(
                results, kind="pipeline", label="run%d" % index, seconds=1.0 + index
            )
        return load_runs(results)

    def test_by_index_and_negative_index(self, runs):
        assert resolve_run(runs, "1") is runs[0]
        assert resolve_run(runs, "-1") is runs[-1]

    def test_by_id_and_unique_prefix(self, runs):
        target = runs[1]
        assert resolve_run(runs, target["id"]) is target
        assert resolve_run(runs, target["id"][:14]) is target

    def test_miss_and_ambiguity_exit(self, runs):
        with pytest.raises(SystemExit):
            resolve_run(runs, "nope")
        with pytest.raises(SystemExit):
            resolve_run(runs, "pipeline-")  # every id shares this prefix
        with pytest.raises(SystemExit):
            resolve_run(runs, "9")


class TestRender:
    def test_lists_every_run(self, tmp_path):
        results = str(tmp_path)
        record_run(results, kind="campaign", label="grid", seconds=4.0, cases=100)
        listing = render_runs(load_runs(results))
        assert "Run history (1 runs)" in listing
        assert "campaign" in listing and "25.0/s" in listing

    def test_empty_history(self):
        assert render_runs([]) == "no recorded runs"


class TestDiff:
    def _run(self, seconds, cases, phases):
        record = {
            "id": "pipeline-%d" % seconds,
            "kind": "pipeline",
            "seconds": float(seconds),
            "cases": cases,
            "throughput": cases / float(seconds),
            "phases": phases,
        }
        return record

    def test_flags_wall_and_throughput_regressions(self):
        before = self._run(2, 1000, {"evaluate": 1.5})
        after = self._run(4, 1000, {"evaluate": 3.5})
        diff = diff_runs(before, after, threshold=0.10)
        flagged = {row.name for row in diff.regressions}
        assert flagged == {"wall", "throughput", "phase:evaluate"}
        rendered = diff.render()
        assert "REGRESSION" in rendered
        assert "3 regression(s) flagged" in rendered

    def test_improvements_are_marked_but_not_regressions(self):
        before = self._run(4, 1000, {"evaluate": 3.5})
        after = self._run(2, 1000, {"evaluate": 1.5})
        diff = diff_runs(before, after, threshold=0.10)
        assert diff.regressions == []
        assert "improved" in diff.render()
        assert "no regressions flagged" in diff.render()

    def test_threshold_gates_the_flag(self):
        before = self._run(100, 1000, {})
        after = {"id": "b", "kind": "pipeline", "seconds": 105.0}
        diff = diff_runs(before, after, threshold=0.10)
        wall = next(row for row in diff.rows if row.name == "wall")
        assert wall.delta == pytest.approx(0.05)
        assert not wall.regression
