"""Integration test of the full methodology loop (paper Fig. 1).

Contract atoms + test cases -> evaluation -> synthesis -> false
positives & distinguishing atoms -> manual refinement -> re-synthesis.
This mirrors how the paper's authors arrived at the AL/BL/DL families
and how this reproduction arrived at the IS_ZERO refinement.
"""

import pytest

from repro.contracts.riscv_template import BASE_FAMILIES, build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.synthesis.metrics import evaluate_contract, verify_contract_correctness
from repro.synthesis.ranking import rank_atoms_by_false_positives
from repro.synthesis.synthesizer import ContractSynthesizer
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore


@pytest.mark.slow
class TestMethodologyLoop:
    @pytest.fixture(scope="class")
    def artifacts(self):
        template = build_riscv_template()
        generator = TestCaseGenerator(template, seed=2024)
        evaluator = TestCaseEvaluator(IbexCore(), template)
        synthesis_set = evaluator.evaluate_many(generator.iter_generate(1500))
        held_out = TestCaseEvaluator(IbexCore(), template).evaluate_many(
            TestCaseGenerator(template, seed=2025).iter_generate(2500)
        )
        return template, synthesis_set, held_out

    def test_step_3_and_4_base_template(self, artifacts):
        """Synthesis on the base template (IL+RL+ML) succeeds but needs
        coarse atoms, so precision suffers and some leaks are
        inexpressible."""
        template, synthesis_set, held_out = artifacts
        synthesizer = ContractSynthesizer(template)
        base_ids = template.ids_by_family(BASE_FAMILIES)
        base_result = synthesizer.synthesize(synthesis_set, allowed_atom_ids=base_ids)
        assert verify_contract_correctness(
            base_result.contract, synthesis_set, allowed_atom_ids=base_ids
        )
        full_result = synthesizer.synthesize(synthesis_set)
        base_counts = evaluate_contract(base_result.contract, held_out)
        full_counts = evaluate_contract(full_result.contract, held_out)
        # Refined families buy precision (Fig. 2's message).
        assert full_counts.precision > base_counts.precision

    def test_step_5_refinement_signal(self, artifacts):
        """The FP ranking points at the coarse atoms — the signal a
        human expert uses to refine the template (§III-E)."""
        template, synthesis_set, _held_out = artifacts
        synthesizer = ContractSynthesizer(template)
        base_ids = template.ids_by_family(BASE_FAMILIES)
        base_result = synthesizer.synthesize(synthesis_set, allowed_atom_ids=base_ids)
        rankings = rank_atoms_by_false_positives(base_result.contract, synthesis_set)
        assert rankings
        worst = rankings[0]
        assert worst.false_positive_count > 0
        assert worst.example_test_ids  # concrete cases to inspect
        # The worst offenders under the base template are value atoms
        # covering branch-outcome or alignment leaks coarsely.
        coarse_families = {"REG_RS1", "REG_RS2", "REG_RD", "MEM_R_ADDR", "IMM", "OP",
                           "RD", "RS1", "RS2", "MEM_R_DATA", "MEM_W_ADDR", "MEM_W_DATA"}
        assert worst.atom_name.split(":")[1] in coarse_families

    def test_refinement_reduces_false_positives(self, artifacts):
        """Re-synthesis with the refined template strictly reduces the
        optimal false-positive count on the same test set."""
        template, synthesis_set, _held_out = artifacts
        synthesizer = ContractSynthesizer(template)
        base_ids = template.ids_by_family(BASE_FAMILIES)
        base_result = synthesizer.synthesize(synthesis_set, allowed_atom_ids=base_ids)
        full_result = synthesizer.synthesize(synthesis_set)
        # The full template can express everything the base can, so its
        # optimum is no worse; on this core it is strictly better.
        assert full_result.false_positives < base_result.false_positives
        # And it covers leaks the base template cannot express at all.
        assert len(full_result.uncoverable_test_ids) <= len(
            base_result.uncoverable_test_ids
        )

    def test_final_contract_quality(self, artifacts):
        """The end product: high sensitivity, solid precision, a
        correct contract of plausible size."""
        template, synthesis_set, held_out = artifacts
        result = ContractSynthesizer(template).synthesize(synthesis_set)
        counts = evaluate_contract(result.contract, held_out)
        assert counts.sensitivity >= 0.9
        assert counts.precision >= 0.6
        assert 10 <= len(result.contract) <= 120  # paper: 82 atoms
        assert verify_contract_correctness(result.contract, synthesis_set)
