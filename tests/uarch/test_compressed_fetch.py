"""Tests for the RV32IMC compressed-fetch timing mode of IbexCore."""

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.state import ArchState
from repro.uarch.ibex import IbexConfig, IbexCore


def cycles(program, regs=None, compressed=True):
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    core = IbexCore(IbexConfig(compressed_fetch=compressed))
    return core.simulate(program, state).cycles


def test_all_uncompressed_instructions_unaffected():
    # MUL has no compressed form; layout stays word aligned.
    program = assemble("mul x1, x2, x3\nmul x4, x5, x6")
    assert cycles(program, compressed=True) == cycles(program, compressed=False)


def test_straddling_instruction_pays_penalty():
    # A compressed ADD shifts the following MUL to a half-word
    # boundary: the MUL straddles a fetch group.
    compressible = Program([
        Instruction(Opcode.ADD, rd=10, rs1=10, rs2=11),   # c.add (2 bytes)
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),   # offset 2: straddles
    ])
    uncompressible = Program([
        Instruction(Opcode.ADD, rd=10, rs1=11, rs2=12),   # rd != rs1: 4 bytes
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),   # offset 4: aligned
    ])
    assert cycles(compressible) == cycles(uncompressible) + 1


def test_two_compressed_realign():
    # Two compressed instructions consume a full fetch group, so the
    # third (uncompressed) instruction is aligned again.
    program = Program([
        Instruction(Opcode.ADD, rd=10, rs1=10, rs2=11),
        Instruction(Opcode.ADD, rd=12, rs1=12, rs2=13),
        Instruction(Opcode.MUL, rd=14, rs1=15, rs2=16),
    ])
    baseline = Program([
        Instruction(Opcode.ADD, rd=10, rs1=11, rs2=12),
        Instruction(Opcode.ADD, rd=12, rs1=13, rs2=14),
        Instruction(Opcode.MUL, rd=14, rs1=15, rs2=16),
    ])
    assert cycles(program) == cycles(baseline)


def test_immediate_size_becomes_timing_relevant():
    """The IL channel: a small immediate compresses, a large one does
    not, shifting the alignment of the next uncompressed instruction."""
    small_imm = Program([
        Instruction(Opcode.ADDI, rd=8, rs1=8, imm=1),      # compressible
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),
    ])
    large_imm = Program([
        Instruction(Opcode.ADDI, rd=8, rs1=8, imm=1000),   # not compressible
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),
    ])
    assert cycles(small_imm) != cycles(large_imm)
    # Without the compressed fetch unit, the immediate is invisible.
    assert cycles(small_imm, compressed=False) == cycles(large_imm, compressed=False)


def test_register_choice_becomes_timing_relevant():
    # SUB compresses only for x8..x15 (prime) registers.
    prime = Program([
        Instruction(Opcode.SUB, rd=8, rs1=8, rs2=9),
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),
    ])
    non_prime = Program([
        Instruction(Opcode.SUB, rd=16, rs1=16, rs2=17),
        Instruction(Opcode.MUL, rd=12, rs1=13, rs2=14),
    ])
    assert cycles(prime) != cycles(non_prime)


def test_synthesis_discovers_il_atoms_with_compressed_fetch():
    """End to end: enabling the RV32IMC fetch unit makes instruction-
    leakage atoms appear in the synthesized contract."""
    from repro.contracts.atoms import LeakageFamily
    from repro.contracts.riscv_template import build_riscv_template
    from repro.evaluation.evaluator import TestCaseEvaluator
    from repro.synthesis.synthesizer import synthesize
    from repro.testgen.generator import TestCaseGenerator

    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=31)
    core = IbexCore(IbexConfig(compressed_fetch=True))
    evaluator = TestCaseEvaluator(core, template)
    dataset = evaluator.evaluate_many(generator.iter_generate(400))
    contract = synthesize(dataset, template).contract

    il_atoms = [atom for atom in contract.atoms if atom.family is LeakageFamily.IL]
    assert il_atoms, "compressed fetch must surface IL leakage"
