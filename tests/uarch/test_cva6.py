"""Behavioural tests for the CVA6-like core."""

from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.uarch.cva6 import CVA6Config, CVA6Core


def simulate(source, regs=None, core=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    core = core if core is not None else CVA6Core()
    return core.simulate(program, state)


def cycles(source, regs=None, core=None):
    return simulate(source, regs, core).cycles


def test_deeper_pipeline_than_ibex():
    from repro.uarch.ibex import IbexCore

    program = assemble("add x1, x2, x3")
    assert CVA6Core().simulate(program).cycles > IbexCore().simulate(program).cycles


def test_pipelined_alu_throughput():
    # After the pipeline fills, ALU instructions retire once per cycle.
    result = simulate("add x1, x2, x3\nadd x4, x5, x6\nadd x7, x8, x9")
    retire = result.trace.retirement_cycles
    assert retire[1] - retire[0] == 1
    assert retire[2] - retire[1] == 1


def test_retirement_non_decreasing_dual_commit():
    result = simulate(
        "div x1, x2, x3\nmul x4, x5, x6\nlw x7, 0(x8)\nbeq x0, x0, 4\nnop",
        regs={2: 100, 3: 3, 8: 0x200},
    )
    sequence = result.trace.retirement_cycles
    assert all(b >= a for a, b in zip(sequence, sequence[1:]))


def test_commit_width_bounds_same_cycle_retirements():
    result = simulate("\n".join("add x1, x2, x3" for _ in range(8)))
    sequence = result.trace.retirement_cycles
    from collections import Counter

    assert max(Counter(sequence).values()) <= CVA6Config().commit_width


class TestMemoryInterface:
    """Table II: CVA6 shows no memory or alignment leakage."""

    def test_load_alignment_independent(self):
        timings = {
            cycles("lw x1, 0(x2)", regs={2: 0x100 + offset}) for offset in range(4)
        }
        assert len(timings) == 1

    def test_load_address_independent(self):
        assert cycles("lw x1, 0(x2)", regs={2: 0x100}) == cycles(
            "lw x1, 0(x2)", regs={2: 0xF000}
        )

    def test_store_alignment_and_data_independent(self):
        timings = {
            cycles("sw x3, 0(x2)", regs={2: 0x100 + offset, 3: data})
            for offset in range(4)
            for data in (0, 0xFFFFFFFF)
        }
        assert len(timings) == 1


class TestBranchPrediction:
    def test_taken_branch_mispredicts_first_time(self):
        taken = cycles("beq x1, x2, 8\nnop\nnop")
        not_taken = cycles("bne x1, x2, 8\nnop\nnop")
        assert taken > not_taken

    def test_taken_same_target_still_leaks(self):
        taken = cycles("beq x1, x1, 4\nnop")
        not_taken = cycles("bne x1, x1, 4\nnop")
        assert taken > not_taken

    def test_predictor_state_reset_between_runs(self):
        core = CVA6Core()
        first = cycles("beq x1, x1, 4\nnop", core=core)
        second = cycles("beq x1, x1, 4\nnop", core=core)
        assert first == second

    def test_jal_cheaper_than_mispredicted_jalr(self):
        jal = cycles("jal x1, 8\nnop\nadd x2, x3, x4")
        jalr = cycles("jalr x1, x5, 0\nnop\nadd x2, x3, x4",
                      regs={5: 0x1000 + 8})
        assert jal < jalr


class TestDependencyDistances:
    """§V-C: dependency effects reach distances up to n = 4."""

    def _branch_after_div(self, distance, dependent):
        # The branch is *taken* in both variants (so it mispredicts and
        # flushes); only whether it reads the divider result differs.
        destination = "x2" if dependent else "x6"
        filler = "\n".join("add x%d, x0, x0" % (10 + i) for i in range(distance - 1))
        body = "div %s, x3, x4\n" % destination
        if filler:
            body += filler + "\n"
        body += "beq x2, x5, 4\nnop"
        # x2/x5 preset so the branch is taken either way; the division
        # 0x40000000/1 also produces 0x40000000, keeping values equal.
        return cycles(body, regs={2: 0x40000000, 3: 0x40000000, 4: 1, 5: 0x40000000})

    def test_branch_dependency_distance_1(self):
        assert self._branch_after_div(1, True) > self._branch_after_div(1, False)

    def test_branch_dependency_distance_4(self):
        assert self._branch_after_div(4, True) > self._branch_after_div(4, False)

    def test_branch_dependency_effect_shrinks_with_distance(self):
        effect = [
            self._branch_after_div(distance, True)
            - self._branch_after_div(distance, False)
            for distance in (1, 2, 3, 4)
        ]
        assert all(a >= b for a, b in zip(effect, effect[1:]))
        assert effect[0] > 0

    def test_alu_dependency_distance_1_hidden_by_forwarding(self):
        dependent = cycles("add x2, x3, x4\nadd x1, x2, x5")
        independent = cycles("add x7, x3, x4\nadd x1, x2, x5")
        assert dependent == independent

    def test_mul_consumer_stalls_at_distance_1(self):
        dependent = cycles("mul x2, x3, x4\nadd x1, x2, x5", regs={3: 2, 4: 3})
        independent = cycles("mul x7, x3, x4\nadd x1, x2, x5", regs={3: 2, 4: 3})
        assert dependent > independent

    def test_store_does_not_stall_on_operands(self):
        dependent = cycles(
            "div x2, x3, x4\nsw x2, 0(x5)", regs={3: 0x40000000, 4: 1, 5: 0x100}
        )
        independent = cycles(
            "div x6, x3, x4\nsw x2, 0(x5)", regs={3: 0x40000000, 4: 1, 5: 0x100}
        )
        assert dependent == independent


class TestExecutionUnits:
    def test_divider_operand_dependent(self):
        fast = cycles("div x1, x2, x3", regs={2: 4, 3: 2})
        slow = cycles("div x1, x2, x3", regs={2: 0x40000000, 3: 1})
        assert slow > fast

    def test_div_vs_divu_differ_on_negative_operands(self):
        negative = (-64) & 0xFFFFFFFF
        signed = cycles("div x1, x2, x3", regs={2: negative, 3: 2})
        unsigned = cycles("divu x1, x2, x3", regs={2: negative, 3: 2})
        assert signed != unsigned

    def test_rem_shares_early_exit_divider(self):
        fast = cycles("rem x1, x2, x3", regs={2: 4, 3: 2})
        slow = cycles("rem x1, x2, x3", regs={2: 0x40000000, 3: 1})
        assert slow > fast

    def test_multiplier_zero_skip(self):
        zero = cycles("mul x1, x2, x3", regs={2: 0, 3: 5})
        nonzero = cycles("mul x1, x2, x3", regs={2: 7, 3: 5})
        assert zero < nonzero

    def test_mul_variants_share_latency(self):
        low = cycles("mul x1, x2, x3", regs={2: 3, 3: 5})
        high = cycles("mulh x1, x2, x3", regs={2: 3, 3: 5})
        assert low == high

    def test_shifter_coarse_serial(self):
        small = cycles("slli x1, x2, 1", regs={2: 5})
        large = cycles("slli x1, x2, 17", regs={2: 5})
        assert large > small

    def test_structural_hazard_back_to_back_div(self):
        pair = cycles(
            "div x1, x2, x3\ndiv x4, x5, x6",
            regs={2: 0x40000000, 3: 1, 5: 0x40000000, 6: 1},
        )
        single = cycles("div x1, x2, x3", regs={2: 0x40000000, 3: 1})
        # The second division waits for the divider: far more than +1.
        assert pair > single + 1


class TestConfigurability:
    def test_custom_frontend_depth(self):
        deep = CVA6Core(CVA6Config(frontend_depth=6))
        shallow = CVA6Core(CVA6Config(frontend_depth=2))
        program = "add x1, x2, x3"
        assert cycles(program, core=deep) > cycles(program, core=shallow)

    def test_final_state_correct(self):
        result = simulate("addi x1, x0, 2\nmul x2, x1, x1")
        assert result.final_state.regs[2] == 4
