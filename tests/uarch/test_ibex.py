"""Behavioural tests for the Ibex-like core: each documented timing
artifact (DESIGN.md §5) must be observable in retirement timing."""

from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.uarch.ibex import IbexConfig, IbexCore


def cycles(source, regs=None):
    """Total cycle count of running ``source`` on a fresh Ibex core."""
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return IbexCore().simulate(program, state).cycles


def retire_cycles(source, regs=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return IbexCore().simulate(program, state).trace.retirement_cycles


def test_single_alu_instruction():
    assert retire_cycles("add x1, x2, x3") == (2,)


def test_alu_sequence_one_per_cycle():
    assert retire_cycles("add x1, x2, x3\nadd x4, x5, x6\nadd x7, x8, x9") == (2, 3, 4)


def test_simulation_returns_final_state():
    program = assemble("addi x1, x0, 5")
    result = IbexCore().simulate(program)
    assert result.final_state.regs[1] == 5
    assert result.retired_instructions == 1


def test_initial_state_not_mutated():
    program = assemble("addi x1, x1, 5")
    state = ArchState(pc=program.base_address)
    state.write_register(1, 1)
    result = IbexCore().simulate(program, state)
    assert state.regs[1] == 1
    assert result.final_state.regs[1] == 6


class TestAlignmentLeakage:
    """Paper finding #1: loads leak address alignment; stores do not."""

    def test_aligned_vs_misaligned_word_load(self):
        aligned = cycles("lw x1, 0(x2)", regs={2: 0x100})
        misaligned = cycles("lw x1, 0(x2)", regs={2: 0x102})
        assert misaligned > aligned

    def test_halfword_crossing_word_boundary(self):
        fits = cycles("lh x1, 0(x2)", regs={2: 0x102})
        crosses = cycles("lh x1, 0(x2)", regs={2: 0x103})
        assert crosses > fits

    def test_byte_load_alignment_independent(self):
        timings = {cycles("lb x1, 0(x2)", regs={2: 0x100 + offset}) for offset in range(4)}
        assert len(timings) == 1

    def test_store_alignment_independent(self):
        timings = {cycles("sw x1, 0(x2)", regs={2: 0x100 + offset}) for offset in range(4)}
        assert len(timings) == 1

    def test_load_address_value_does_not_leak_beyond_alignment(self):
        a = cycles("lw x1, 0(x2)", regs={2: 0x100})
        b = cycles("lw x1, 0(x2)", regs={2: 0x2000})
        assert a == b


class TestBranchLeakage:
    """Paper finding #2: taken branches are slower even when the target
    equals the fall-through pc."""

    def test_taken_slower_than_not_taken(self):
        taken = cycles("beq x1, x2, 8\nnop\nnop")
        not_taken = cycles("bne x1, x2, 8\nnop\nnop")
        assert taken > not_taken

    def test_taken_branch_to_next_instruction_still_pays(self):
        # beq x1, x1, 4 branches to the very next instruction.
        same_target_taken = cycles("beq x1, x1, 4\nnop")
        not_taken = cycles("bne x1, x1, 4\nnop")
        assert same_target_taken > not_taken

    def test_branch_target_does_not_change_timing(self):
        near = retire_cycles("beq x1, x1, 4\nnop")[0]
        # Jump over one instruction: different target, same retire cycle
        # for the branch itself.
        far = retire_cycles("beq x1, x1, 8\nnop\nnop")[0]
        assert near == far


class TestDividerLeakage:
    def test_div_operand_dependent(self):
        fast = cycles("div x1, x2, x3", regs={2: 4, 3: 2})
        slow = cycles("div x1, x2, x3", regs={2: 0x40000000, 3: 1})
        assert slow > fast

    def test_div_by_zero_fast_path(self):
        zero = cycles("div x1, x2, x3", regs={2: 0x40000000, 3: 0})
        normal = cycles("div x1, x2, x3", regs={2: 0x40000000, 3: 1})
        assert zero < normal

    def test_rem_constant_time(self):
        timings = {
            cycles("rem x1, x2, x3", regs={2: dividend, 3: divisor})
            for dividend in (0, 5, 0xFFFFFFFF)
            for divisor in (0, 3, 0x10000)
        }
        assert len(timings) == 1


class TestShifterLeakage:
    def test_immediate_shift_amount_leaks(self):
        small = cycles("slli x1, x2, 1", regs={2: 5})
        large = cycles("slli x1, x2, 31", regs={2: 5})
        assert large > small

    def test_register_shift_amount_leaks(self):
        small = cycles("sll x1, x2, x3", regs={2: 5, 3: 1})
        large = cycles("sll x1, x2, x3", regs={2: 5, 3: 31})
        assert large > small

    def test_shift_operand_value_does_not_leak(self):
        a = cycles("slli x1, x2, 4", regs={2: 0})
        b = cycles("slli x1, x2, 4", regs={2: 0xFFFFFFFF})
        assert a == b


class TestMultiplierLeakage:
    def test_mul_vs_mulh_latency_differs(self):
        low = cycles("mul x1, x2, x3", regs={2: 3, 3: 5})
        high = cycles("mulh x1, x2, x3", regs={2: 3, 3: 5})
        assert high > low

    def test_mul_data_independent(self):
        a = cycles("mul x1, x2, x3", regs={2: 0, 3: 0})
        b = cycles("mul x1, x2, x3", regs={2: 0xFFFFFFFF, 3: 0xFFFFFFFF})
        assert a == b


class TestDependencyLeakage:
    """Distance-1 RAW hazards into non-forwarded units stall."""

    def test_mul_stalls_on_distance_1_dependency(self):
        dependent = cycles("addi x2, x0, 3\nmul x1, x2, x3")
        independent = cycles("addi x5, x0, 3\nmul x1, x2, x3")
        assert dependent > independent

    def test_mul_distance_2_no_stall(self):
        distance_2 = cycles("addi x2, x0, 3\nnop\nmul x1, x2, x3")
        independent = cycles("addi x5, x0, 3\nnop\nmul x1, x2, x3")
        assert distance_2 == independent

    def test_add_does_not_stall(self):
        dependent = cycles("addi x2, x0, 3\nadd x1, x2, x3")
        independent = cycles("addi x5, x0, 3\nadd x1, x2, x3")
        assert dependent == independent

    def test_shift_stalls_on_dependency(self):
        dependent = cycles("addi x2, x0, 3\nslli x1, x2, 1")
        independent = cycles("addi x5, x0, 3\nslli x1, x2, 1")
        assert dependent > independent

    def test_div_stalls_but_rem_does_not(self):
        div_dep = cycles("addi x2, x0, 8\ndiv x1, x2, x3", regs={3: 2})
        div_indep = cycles("addi x5, x0, 8\ndiv x1, x2, x3", regs={2: 8, 3: 2})
        assert div_dep > div_indep
        rem_dep = cycles("addi x2, x0, 8\nrem x1, x2, x3", regs={3: 2})
        rem_indep = cycles("addi x5, x0, 8\nrem x1, x2, x3", regs={2: 8, 3: 2})
        assert rem_dep == rem_indep

    def test_load_consumer_does_not_stall(self):
        dependent = cycles("addi x2, x0, 0x100\nlw x1, 0(x2)")
        independent = cycles("addi x5, x0, 0x100\nlw x1, 0(x2)", regs={2: 0x100})
        assert dependent == independent


class TestConfigurability:
    def test_custom_penalty(self):
        config = IbexConfig(taken_branch_penalty=5)
        program = assemble("beq x1, x1, 4\nnop")
        slow = IbexCore(config).simulate(program).cycles
        fast = IbexCore().simulate(program).cycles
        assert slow > fast

    def test_barrel_shifter_config_removes_leak(self):
        config = IbexConfig(shifter_step=32)  # one step covers all amounts
        a = IbexCore(config).simulate(assemble("slli x1, x2, 1")).cycles
        b = IbexCore(config).simulate(assemble("slli x1, x2, 31")).cycles
        assert a == b

    def test_retirement_strictly_increasing(self):
        program = assemble(
            "div x1, x2, x3\nmul x4, x5, x6\nlw x7, 0(x8)\nbeq x0, x0, 4\nnop"
        )
        state = ArchState(pc=program.base_address)
        state.write_register(2, 100)
        state.write_register(3, 3)
        state.write_register(8, 0x200)
        result = IbexCore().simulate(program, state)
        cycles_sequence = result.trace.retirement_cycles
        assert all(b > a for a, b in zip(cycles_sequence, cycles_sequence[1:]))
        assert result.cycles >= cycles_sequence[-1]
