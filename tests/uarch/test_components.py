"""Tests for the shared microarchitectural timing components."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Opcode
from repro.uarch.components.branch_predictor import (
    BimodalPredictor,
    StaticNotTakenPredictor,
)
from repro.uarch.components.cache import DirectMappedCache
from repro.uarch.components.divider import ConstantTimeDivider, EarlyExitDivider
from repro.uarch.components.memory_interface import (
    FixedLatencyMemoryPort,
    WordAlignedMemoryPort,
    crosses_word_boundary,
)
from repro.uarch.components.multiplier import FixedLatencyMultiplier, ZeroSkipMultiplier
from repro.uarch.components.shifter import BarrelShifter, SerialShifter


class TestDividers:
    def test_constant_divider_is_data_independent(self):
        divider = ConstantTimeDivider(cycles=18)
        latencies = {
            divider.latency(Opcode.DIV, dividend, divisor)
            for dividend in (0, 1, 0xFFFFFFFF, 12345)
            for divisor in (0, 1, 7, 0x80000000)
        }
        assert latencies == {18}

    def test_constant_divider_validates(self):
        with pytest.raises(ValueError):
            ConstantTimeDivider(cycles=0)

    def test_early_exit_div_by_zero_fast(self):
        divider = EarlyExitDivider()
        assert divider.latency(Opcode.DIVU, 100, 0) == divider.zero_cycles

    def test_early_exit_trivial_case(self):
        divider = EarlyExitDivider()
        assert divider.latency(Opcode.DIVU, 3, 100) == divider.trivial_cycles

    def test_early_exit_depends_on_dividend_magnitude(self):
        divider = EarlyExitDivider()
        small = divider.latency(Opcode.DIVU, 0x10, 1)
        large = divider.latency(Opcode.DIVU, 0x10000000, 1)
        assert large > small

    def test_early_exit_depends_on_divisor_magnitude(self):
        divider = EarlyExitDivider()
        small_divisor = divider.latency(Opcode.DIVU, 0x10000000, 1)
        large_divisor = divider.latency(Opcode.DIVU, 0x10000000, 0x1000000)
        assert small_divisor > large_divisor

    def test_signed_uses_magnitude(self):
        divider = EarlyExitDivider()
        # -4 / 2 signed: small magnitudes; unsigned sees a huge dividend.
        signed = divider.latency(Opcode.DIV, (-4) & 0xFFFFFFFF, 2)
        unsigned = divider.latency(Opcode.DIVU, (-4) & 0xFFFFFFFF, 2)
        assert signed < unsigned

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
    def test_latency_always_positive(self, dividend, divisor):
        divider = EarlyExitDivider()
        for opcode in (Opcode.DIV, Opcode.DIVU, Opcode.REM, Opcode.REMU):
            assert divider.latency(opcode, dividend, divisor) >= 1


class TestMultipliers:
    def test_fixed_latency_per_opcode(self):
        multiplier = FixedLatencyMultiplier(cycles=3, high_cycles=4)
        assert multiplier.latency(Opcode.MUL, 5, 7) == 3
        assert multiplier.latency(Opcode.MULH, 5, 7) == 4
        assert multiplier.latency(Opcode.MULHSU, 5, 7) == 4
        assert multiplier.latency(Opcode.MULHU, 5, 7) == 4

    def test_fixed_latency_data_independent(self):
        multiplier = FixedLatencyMultiplier(cycles=3)
        assert multiplier.latency(Opcode.MUL, 0, 0) == multiplier.latency(
            Opcode.MUL, 0xFFFFFFFF, 0xFFFFFFFF
        )

    def test_fixed_latency_validates(self):
        with pytest.raises(ValueError):
            FixedLatencyMultiplier(cycles=0)

    def test_zero_skip(self):
        multiplier = ZeroSkipMultiplier(cycles=2, zero_cycles=1)
        assert multiplier.latency(Opcode.MUL, 0, 5) == 1
        assert multiplier.latency(Opcode.MUL, 5, 0) == 1
        assert multiplier.latency(Opcode.MUL, 5, 7) == 2

    def test_zero_skip_validates(self):
        with pytest.raises(ValueError):
            ZeroSkipMultiplier(cycles=1, zero_cycles=2)


class TestShifters:
    def test_barrel_is_constant(self):
        shifter = BarrelShifter()
        assert {shifter.latency(amount) for amount in range(32)} == {1}

    def test_serial_steps(self):
        shifter = SerialShifter(step=8)
        assert shifter.latency(0) == 1
        assert shifter.latency(7) == 1
        assert shifter.latency(8) == 2
        assert shifter.latency(31) == 4

    def test_serial_masks_to_five_bits(self):
        shifter = SerialShifter(step=8)
        assert shifter.latency(32) == shifter.latency(0)
        assert shifter.latency(33) == shifter.latency(1)

    def test_serial_validates_step(self):
        with pytest.raises(ValueError):
            SerialShifter(step=0)
        with pytest.raises(ValueError):
            SerialShifter(step=33)


class TestMemoryPorts:
    def test_crossing_predicate(self):
        assert not crosses_word_boundary(0x100, 4)
        assert crosses_word_boundary(0x101, 4)
        assert crosses_word_boundary(0x102, 4)
        assert crosses_word_boundary(0x103, 4)
        assert not crosses_word_boundary(0x102, 2)
        assert crosses_word_boundary(0x103, 2)
        assert not crosses_word_boundary(0x103, 1)

    def test_word_aligned_port_splits_misaligned_loads(self):
        port = WordAlignedMemoryPort(cycles_per_transaction=1)
        assert port.load_latency(0x100, 4) == 1
        assert port.load_latency(0x101, 4) == 2
        assert port.load_latency(0x103, 2) == 2
        assert port.load_latency(0x103, 1) == 1

    def test_word_aligned_port_store_flat(self):
        port = WordAlignedMemoryPort(store_cycles=1)
        assert port.store_latency(0x100, 4) == port.store_latency(0x101, 4) == 1

    def test_fixed_latency_port(self):
        port = FixedLatencyMemoryPort(load_cycles=2, store_cycles=1)
        assert port.load_latency(0x100, 4) == port.load_latency(0x103, 4) == 2
        assert port.store_latency(0x100, 4) == port.store_latency(0x101, 1) == 1

    def test_ports_validate(self):
        with pytest.raises(ValueError):
            WordAlignedMemoryPort(cycles_per_transaction=0)
        with pytest.raises(ValueError):
            FixedLatencyMemoryPort(load_cycles=0)


class TestBranchPredictors:
    def test_static_not_taken(self):
        predictor = StaticNotTakenPredictor()
        assert not predictor.predict(0x100).taken
        predictor.update(0x100, True, 0x200)
        assert not predictor.predict(0x100).taken

    def test_bimodal_initial_prediction_not_taken(self):
        predictor = BimodalPredictor(entries=16)
        assert not predictor.predict(0x100).taken

    def test_bimodal_learns_taken(self):
        predictor = BimodalPredictor(entries=16)
        predictor.update(0x100, True, 0x200)
        prediction = predictor.predict(0x100)
        assert prediction.taken and prediction.target == 0x200

    def test_bimodal_counter_saturates_and_decays(self):
        predictor = BimodalPredictor(entries=16)
        for _ in range(5):
            predictor.update(0x100, True, 0x200)
        predictor.update(0x100, False, 0x104)
        assert predictor.predict(0x100).taken  # still above threshold
        predictor.update(0x100, False, 0x104)
        predictor.update(0x100, False, 0x104)
        assert not predictor.predict(0x100).taken

    def test_bimodal_btb_tag_mismatch_means_not_taken(self):
        predictor = BimodalPredictor(entries=16)
        predictor.update(0x100, True, 0x200)
        aliased = 0x100 + 16 * 4  # same index, different pc
        assert not predictor.predict(aliased).taken

    def test_bimodal_reset(self):
        predictor = BimodalPredictor(entries=16)
        predictor.update(0x100, True, 0x200)
        predictor.reset()
        assert not predictor.predict(0x100).taken

    def test_bimodal_validates(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=3)
        with pytest.raises(ValueError):
            BimodalPredictor(entries=16, initial_counter=7)


class TestDirectMappedCache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(line_size=16, line_count=4, hit_cycles=1, miss_cycles=10)
        assert cache.access(0x100) == 10
        assert cache.access(0x104) == 1  # same line
        assert cache.hits == 1 and cache.misses == 1

    def test_conflict_eviction(self):
        cache = DirectMappedCache(line_size=16, line_count=4)
        cache.access(0x100)
        cache.access(0x100 + 16 * 4)  # maps to the same index
        assert not cache.contains(0x100)
        assert cache.contains(0x100 + 16 * 4)

    def test_final_state_exposes_tags(self):
        cache = DirectMappedCache(line_size=16, line_count=4)
        cache.access(0x0)
        state = cache.final_state()
        assert len(state) == 4
        assert state[0] is not None

    def test_reset(self):
        cache = DirectMappedCache()
        cache.access(0x100)
        cache.reset()
        assert not cache.contains(0x100)
        assert cache.hits == 0 and cache.misses == 0

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            DirectMappedCache(line_size=3)
        with pytest.raises(ValueError):
            DirectMappedCache(line_count=0)
