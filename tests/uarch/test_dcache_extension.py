"""Tests for the cache-extended Ibex variant and cache-state attacker."""

from repro.attacker.cache_state import CacheStateAttacker
from repro.attacker.retirement import RetirementTimingAttacker
from repro.isa.assembler import assemble
from repro.isa.state import ArchState
from repro.uarch.ibex import IbexConfig, IbexCore


def cached_core():
    return IbexCore(IbexConfig(dcache=True))


def simulate(core, source, regs=None):
    program = assemble(source)
    state = ArchState(pc=program.base_address)
    for index, value in (regs or {}).items():
        state.write_register(index, value)
    return core.simulate(program, state)


def test_cold_miss_then_hit():
    core = cached_core()
    result = simulate(core, "lw x1, 0(x2)\nlw x3, 0(x2)", regs={2: 0x100})
    cycles = result.trace.retirement_cycles
    first_load = cycles[0]
    second_load = cycles[1] - cycles[0]
    assert first_load > second_load  # miss slower than hit


def test_address_dependent_timing_is_ml_leakage():
    core = cached_core()
    # Same line twice vs two different lines: different total time.
    same_line = simulate(core, "lw x1, 0(x2)\nlw x3, 4(x2)", regs={2: 0x100})
    other_line = simulate(core, "lw x1, 0(x2)\nlw x3, 64(x2)", regs={2: 0x100})
    assert RetirementTimingAttacker().distinguishes(same_line, other_line)


def test_cache_state_attacker_sees_footprint():
    core = cached_core()
    attacker = CacheStateAttacker()
    a = simulate(core, "lw x1, 0(x2)", regs={2: 0x100})
    b = simulate(core, "lw x1, 0(x2)", regs={2: 0x500})
    assert a.uarch_state["dcache_tags"] != b.uarch_state["dcache_tags"]
    assert attacker.distinguishes(a, b)


def test_cache_resets_between_simulations():
    core = cached_core()
    first = simulate(core, "lw x1, 0(x2)", regs={2: 0x100})
    second = simulate(core, "lw x1, 0(x2)", regs={2: 0x100})
    assert first.trace.retirement_cycles == second.trace.retirement_cycles


def test_stores_touch_cache_but_flat_timing():
    core = cached_core()
    store_then_load = simulate(
        core, "sw x1, 0(x2)\nlw x3, 0(x2)", regs={2: 0x100}
    )
    cold_load = simulate(core, "nop\nlw x3, 0(x2)", regs={2: 0x100})
    # The store warmed the line: the load hits.
    assert (
        store_then_load.trace.retirement_cycles[1]
        - store_then_load.trace.retirement_cycles[0]
        < cold_load.trace.retirement_cycles[1]
        - cold_load.trace.retirement_cycles[0]
    )


def test_default_core_has_no_cache_state():
    result = simulate(IbexCore(), "lw x1, 0(x2)", regs={2: 0x100})
    assert result.uarch_state == {}


def test_synthesis_discovers_memory_leakage_with_cache():
    """With a data cache the synthesized contract needs ML atoms —
    the paper's canonical 'expose load addresses' contract."""
    from repro.contracts.atoms import LeakageFamily
    from repro.contracts.riscv_template import build_riscv_template
    from repro.evaluation.evaluator import TestCaseEvaluator
    from repro.synthesis.synthesizer import synthesize
    from repro.testgen.generator import TestCaseGenerator

    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=13)
    evaluator = TestCaseEvaluator(cached_core(), template)
    dataset = evaluator.evaluate_many(generator.iter_generate(600))
    contract = synthesize(dataset, template).contract
    families = {atom.family for atom in contract.atoms}
    assert LeakageFamily.ML in families or any(
        atom.source in ("MEM_R_ADDR", "MEM_W_ADDR") for atom in contract.atoms
    )
