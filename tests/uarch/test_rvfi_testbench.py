"""Tests for RVFI records/traces and the testbench."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.executor import ExecRecord
from repro.isa.instructions import Instruction, Opcode
from repro.isa.state import ArchState
from repro.uarch.core import Core
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore
from repro.uarch.rvfi import RvfiRecord, RvfiTrace
from repro.uarch.testbench import IsaConsistencyError, Testbench, simulate


def test_rvfi_record_fields():
    program = assemble("addi x1, x0, 42")
    result = IbexCore().simulate(program)
    record = result.trace[0]
    assert record.order == 0
    assert record.pc_rdata == program.base_address
    assert record.pc_wdata == program.base_address + 4
    assert record.rd_wdata == 42
    assert record.insn == program.encoded_words()[0]
    assert record.mem_addr is None


def test_rvfi_memory_fields():
    program = assemble("sw x2, 0(x1)\nlw x3, 0(x1)")
    state = ArchState(pc=program.base_address)
    state.write_register(1, 0x100)
    state.write_register(2, 0xABCD)
    result = IbexCore().simulate(program, state)
    store, load = result.trace[0], result.trace[1]
    assert store.mem_addr == 0x100 and store.mem_wdata == 0xABCD
    assert load.mem_addr == 0x100 and load.mem_rdata == 0xABCD


def test_trace_retirement_cycles_and_len():
    program = assemble("nop\nnop\nnop")
    trace = IbexCore().simulate(program).trace
    assert len(trace) == 3
    assert len(trace.retirement_cycles) == 3
    assert list(trace)[0] is trace[0]


def test_trace_validates_total_cycles():
    record = RvfiRecord(
        exec_record=ExecRecord(
            index=0, pc=0, next_pc=4, instruction=Instruction(Opcode.ADDI)
        ),
        retire_cycle=10,
    )
    with pytest.raises(ValueError):
        RvfiTrace([record], total_cycles=5)


def test_trace_exec_records_roundtrip():
    program = assemble("addi x1, x0, 1\nadd x2, x1, x1")
    trace = IbexCore().simulate(program).trace
    records = trace.exec_records
    assert [r.index for r in records] == [0, 1]
    assert records[1].rd_value == 2


@pytest.mark.parametrize("core_class", [IbexCore, CVA6Core])
def test_testbench_isa_consistency_passes(core_class):
    source = (
        "addi x1, x0, 7\n"
        "slli x2, x1, 4\n"
        "mul x3, x2, x1\n"
        "div x4, x3, x1\n"
        "sw x4, 0(x2)\n"
        "lw x5, 0(x2)\n"
        "beq x5, x4, 8\n"
        "addi x6, x0, 1\n"
        "addi x7, x0, 2"
    )
    program = assemble(source)
    bench = Testbench(core_class(), check_isa_consistency=True)
    result = bench.run(program)
    assert result.retired_instructions == len(result.trace)


def test_testbench_detects_broken_timing():
    class BrokenCore(Core):
        name = "broken"

        def _timing(self, records, program):
            return [len(records) - i for i in range(len(records))], len(records)

    program = assemble("nop\nnop")
    with pytest.raises(IsaConsistencyError):
        Testbench(BrokenCore()).run(program)


def test_testbench_detects_wrong_retirement_count():
    class DroppingCore(Core):
        name = "dropping"

        def _timing(self, records, program):
            return [i + 1 for i in range(len(records) - 1)], len(records)

    program = assemble("nop\nnop")
    with pytest.raises(AssertionError):
        Testbench(DroppingCore()).run(program)


def test_simulate_helper():
    program = assemble("addi x1, x0, 3")
    result = simulate(IbexCore(), program)
    assert result.final_state.regs[1] == 3


def test_same_initial_uarch_state_determinism():
    # Two simulations of the same program must be cycle-identical
    # (predictor and buffers reset per run).
    program = assemble("beq x1, x1, 4\nmul x2, x3, x4\ndiv x5, x6, x7")
    state = ArchState(pc=program.base_address)
    for index in range(1, 8):
        state.write_register(index, index * 1000)
    for core in (IbexCore(), CVA6Core()):
        first = core.simulate(program, state).trace.retirement_cycles
        second = core.simulate(program, state).trace.retirement_cycles
        assert first == second
