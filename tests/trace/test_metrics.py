"""Folding a trace stream into summaries, detail tables, and text."""

import pytest

from repro.trace import fold, fold_file, span_group

pytestmark = pytest.mark.trace


def _end(kind, seconds, ok=True, **fields):
    record = {
        "ts": 100.0 + seconds,
        "start_ts": 100.0,
        "pid": 1,
        "kind": kind,
        "seconds": seconds,
        "ok": ok,
    }
    record.update(fields)
    return record


def _begin(kind, **fields):
    record = {"ts": 100.0, "start_ts": 100.0, "pid": 1, "kind": kind}
    record.update(fields)
    return record


RECORDS = [
    {"ts": 99.0, "pid": 1, "kind": "campaign-start", "campaign": "g", "cells": 2},
    _begin("phase", phase="evaluate"),
    _end("phase", 2.0, phase="evaluate"),
    _end("phase", 1.0, phase="synthesize"),
    _end("shard", 0.5, start_id=0),
    _end("shard", 1.5, ok=False, start_id=250),
    _end("cell", 3.0, cell="budget=500", atoms=4),
    _end(
        "round",
        0.25,
        round=1,
        cumulative_cases=200,
        atom_coverage=0.75,
        contract_size=5,
        stop_reason="contract-stable",
    ),
]


class TestSpanGroup:
    def test_phases_split_by_name_everything_else_by_kind(self):
        assert span_group(_end("phase", 1.0, phase="evaluate")) == "phase:evaluate"
        assert span_group(_end("shard", 1.0)) == "shard"


class TestFold:
    def test_partitions_spans_events_and_ignores_begin_records(self):
        metrics = fold(RECORDS)
        assert len(metrics.records) == len(RECORDS)
        assert len(metrics.spans) == 6  # completed ends only
        assert len(metrics.events) == 1  # campaign-start
        # the begin record is neither: its span lands via its end.

    def test_group_summaries_aggregate_count_total_max_and_failures(self):
        metrics = fold(RECORDS)
        shards = metrics.summary("shard")
        assert shards.count == 2
        assert shards.total_seconds == pytest.approx(2.0)
        assert shards.mean_seconds == pytest.approx(1.0)
        assert shards.max_seconds == pytest.approx(1.5)
        assert shards.failed == 1
        assert metrics.summary("phase:evaluate").count == 1
        assert metrics.summary("absent") is None

    def test_cells_rounds_and_slowest_are_ranked_detail_views(self):
        metrics = fold(RECORDS)
        assert [cell["cell"] for cell in metrics.cells()] == ["budget=500"]
        assert [r["round"] for r in metrics.rounds()] == [1]
        slowest = metrics.slowest(limit=2)
        assert [record["seconds"] for record in slowest] == [3.0, 2.0]

    def test_render_includes_every_section(self):
        text = fold(RECORDS).render()
        assert "Trace summary: 8 records (6 spans, 1 events)" in text
        assert "Campaign cells" in text
        assert "Adaptive rounds" in text
        assert "Slowest spans" in text
        assert "phase:evaluate" in text
        assert "contract-stable" in text

    def test_render_of_an_empty_stream_is_still_a_table(self):
        assert "Trace summary: 0 records" in fold([]).render()


class TestFoldFile:
    def test_fold_file_skips_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"ts": 1.0, "pid": 1, "kind": "request"}\n'
            "\n"
            '{"ts": 2.0, "start_ts": 1.0, "pid": 1, "kind": "shard", '
            '"seconds": 1.0, "ok": true}\n'
            '{"ts": 3.0, "kind": "torn'
        )
        metrics = fold_file(str(path))
        assert len(metrics.events) == 1
        assert len(metrics.spans) == 1
