"""The live watch view: incremental tailing and the rendered frame."""

import io
import json

import pytest

from repro.trace import TraceTail, TraceWatch, render_once, watch

pytestmark = pytest.mark.trace


class TestTraceTail:
    def test_buffers_a_torn_final_line_until_the_newline_arrives(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tail = TraceTail(path)
        assert tail.poll() == []  # file does not exist yet
        with open(path, "w") as stream:
            stream.write('{"ts": 1.0, "kind": "a"}\n{"ts": 2.0, "ki')
        records = tail.poll()
        assert [record["kind"] for record in records] == ["a"]
        with open(path, "a") as stream:
            stream.write('nd": "b"}\n')
        assert [record["kind"] for record in tail.poll()] == ["b"]
        assert tail.poll() == []

    def test_skips_unparseable_complete_lines(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as stream:
            stream.write('not json\n{"ts": 1.0, "kind": "a"}\n')
        assert [r["kind"] for r in TraceTail(path).poll()] == ["a"]


def _feed_scenario(state):
    """One interleaved campaign + adaptive + service trace, fixed
    timestamps so the frame is a golden."""
    records = [
        {"ts": 100.0, "pid": 1, "kind": "campaign-start", "campaign": "grid",
         "cells": 4},
        {"ts": 110.0, "start_ts": 105.0, "pid": 1, "kind": "cell",
         "seconds": 5.0, "ok": True, "cell": "core=ibex budget=500",
         "atoms": 3},
        {"ts": 110.5, "pid": 1, "kind": "cell-resumed",
         "cell": "core=ibex budget=30"},
        {"ts": 111.0, "start_ts": 110.0, "pid": 1, "kind": "round",
         "seconds": 1.0, "ok": True, "round": 2, "cumulative_cases": 400,
         "atom_coverage": 0.5, "contract_size": 7,
         "stop_reason": "contract-stable"},
        {"ts": 119.0, "pid": 1, "kind": "enqueue", "jobs": 8, "new": 6},
        {"ts": 120.0, "pid": 2, "kind": "claim", "job": "j1", "worker": "w1"},
        {"ts": 121.0, "pid": 2, "kind": "done", "job": "j1", "worker": "w1"},
        {"ts": 122.0, "pid": 2, "kind": "heartbeat", "worker": "w1",
         "completed": 1, "failed": 0},
        {"ts": 123.0, "start_ts": 123.0, "pid": 2, "kind": "shard",
         "source": "pipeline", "start_id": 30, "count": 15},
        {"ts": 123.5, "pid": 1, "kind": "failure", "failure": "shard",
         "error": "boom", "attempts": 2},
        {"ts": 124.0, "start_ts": 120.0, "pid": 1, "kind": "phase",
         "seconds": 4.0, "ok": True, "phase": "evaluate"},
    ]
    state.feed_all(records)
    return records


GOLDEN_FRAME = """\
watch — 11 records, 1 in-flight span(s)
campaign grid: 2/4 cells done (1 resumed, 0 failed)
  last cell: core=ibex budget=500 (5.000s)
adaptive: round 2 — 400 cases, 50.0% coverage, 7-atom contract [contract-stable]
queue: 8 job(s) enqueued (6 new), 1 claimed, 1 done, 0 failed, 0 requeued — 0 running
workers: 1 live — w1 8.0s ago (1 done)
failures: 1 (retries/timeouts/quarantines)
  in-flight: shard [pipeline] start_id=30 (7.0s)
last phase: evaluate 4.000s ok"""


class TestTraceWatch:
    def test_golden_frame_over_an_interleaved_scenario(self):
        state = TraceWatch()
        _feed_scenario(state)
        assert state.render(now=130.0) == GOLDEN_FRAME

    def test_span_end_clears_the_in_flight_entry(self):
        state = TraceWatch()
        begin = {"ts": 1.0, "start_ts": 1.0, "pid": 9, "kind": "shard",
                 "start_id": 0}
        state.feed(begin)
        assert len(state.in_flight) == 1
        end = dict(begin, ts=2.0, seconds=1.0, ok=True)
        state.feed(end)
        assert state.in_flight == {}
        assert state.shards_done == 1

    def test_failed_cell_counts_as_failed_not_done(self):
        state = TraceWatch()
        state.feed({"ts": 2.0, "start_ts": 1.0, "pid": 1, "kind": "cell",
                    "seconds": 1.0, "ok": False, "cell": "c"})
        assert state.cells_failed == 1 and state.cells_done == 0
        assert ", FAILED" in state.render(now=3.0)

    def test_worker_exit_drops_it_from_the_live_count(self):
        state = TraceWatch()
        state.feed({"ts": 1.0, "pid": 2, "kind": "worker-start",
                    "worker": "w1"})
        state.feed({"ts": 2.0, "pid": 2, "kind": "worker-exit", "worker": "w1",
                    "completed": 3, "failed": 0})
        assert "workers: 0 live — w1 exited (0 done)" in state.render(now=3.0)


class TestWatchLoop:
    def test_render_once_reads_the_file_snapshot(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as stream:
            for record in ({"ts": 1.0, "pid": 1, "kind": "request"},):
                stream.write(json.dumps(record) + "\n")
        frame = render_once(path, now=2.0)
        assert "1 records" in frame
        assert "service: 1 request(s) seen" in frame

    def test_watch_streams_frames_and_returns_zero(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as stream:
            stream.write('{"ts": 1.0, "pid": 1, "kind": "request"}\n')
        stream = io.StringIO()
        assert watch(path, interval=0.0, stream=stream, max_frames=2) == 0
        assert stream.getvalue().count("watch %s" % path) == 2
