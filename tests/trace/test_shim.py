"""repro.service.trace is a deprecated re-export of repro.trace."""

import importlib
import sys

import pytest

import repro.trace

pytestmark = pytest.mark.trace


class TestDeprecatedShim:
    def test_import_warns_and_reexports_the_same_tracer_class(self):
        sys.modules.pop("repro.service.trace", None)
        with pytest.warns(DeprecationWarning, match="repro.trace"):
            shim = importlib.import_module("repro.service.trace")
        assert shim.Tracer is repro.trace.Tracer
        assert shim.__all__ == ["Tracer"]
