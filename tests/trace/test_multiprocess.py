"""Many processes appending to one trace file, with a torn tail.

The trace file's whole design bet is that
:func:`repro.checkpoint.append_jsonl_line` makes interleaved appends
safe across processes: every record lands intact, and a torn final
line (a writer killed mid-append) is repaired by the next append and
skipped by the tolerant readers.
"""

import json
import multiprocessing
import os

import pytest

from repro.trace import Tracer, read_trace

pytestmark = pytest.mark.trace

WRITERS = 4
SPANS_PER_WRITER = 25


def _writer(path, index):
    tracer = Tracer(path, source="writer-%d" % index)
    for span_index in range(SPANS_PER_WRITER):
        with tracer.span("shard", start_id=span_index, writer=index):
            pass
        tracer.event("heartbeat", worker="writer-%d" % index)


class TestInterleavedAppends:
    def test_concurrent_writers_interleave_without_tearing(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        # A dead writer's torn tail: valid JSON prefix, no newline.
        with open(path, "w") as stream:
            stream.write('{"ts": 1.0, "kind": "torn-')
        processes = [
            multiprocessing.Process(target=_writer, args=(path, index))
            for index in range(WRITERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        records = read_trace(path)
        # begin + end per span, plus one event per span; the torn line
        # is skipped, never raised on.
        assert len(records) == WRITERS * SPANS_PER_WRITER * 3
        assert not any(r.get("kind", "").startswith("torn") for r in records)

        # Every record is attributable: one pid and source per writer,
        # and each writer's full span set survived the interleaving.
        by_source = {}
        for record in records:
            by_source.setdefault(record["source"], []).append(record)
        assert len(by_source) == WRITERS
        for source, group in by_source.items():
            assert len({record["pid"] for record in group}) == 1
            ends = [r for r in group if "seconds" in r]
            assert sorted(r["start_id"] for r in ends) == list(
                range(SPANS_PER_WRITER)
            )

        # The first repairing append put the torn fragment on its own
        # line — the raw file still parses line-by-line after line 0.
        with open(path) as stream:
            raw = stream.read().splitlines()
        assert raw[0] == '{"ts": 1.0, "kind": "torn-'
        for line in raw[1:]:
            json.loads(line)

    def test_read_trace_of_a_missing_file_is_empty(self, tmp_path):
        assert read_trace(os.path.join(str(tmp_path), "absent.jsonl")) == []
