"""Old readers tolerate new record shapes in the shared trace file.

The trace JSONL is an append-only union of field-discriminated shapes
written by multiple tool versions: the ``metric`` snapshot shape landed
after spans/events, and future shapes will land after it.  Every reader
must skip what it does not understand rather than crash — pinned here
by feeding the ``metric`` shape and a synthetic future one through all
three readers.
"""

import json

import pytest

from repro.pipeline import PhaseTimings
from repro.trace import fold, fold_file
from repro.trace.watch import TraceWatch

pytestmark = pytest.mark.trace


METRIC_RECORD = {
    "ts": 103.0,
    "pid": 1,
    "kind": "metric",
    "source": "main",
    "counters": {"dataset.cache.hits": 1},
    "gauges": {},
    "histograms": {},
    "final": True,
}

#: A shape no current reader knows: new kind, new discriminating
#: fields, a nested payload.
FUTURE_RECORD = {
    "ts": 104.0,
    "pid": 1,
    "kind": "flamegraph-v9",
    "source": "main",
    "payload": {"frames": [[0, 1], [1, 2]], "weights": [3, 4]},
    "schema": 9,
}

RECORDS = [
    {"ts": 100.0, "start_ts": 100.0, "pid": 1, "kind": "pipeline"},
    {
        "ts": 101.0,
        "start_ts": 100.0,
        "pid": 1,
        "kind": "phase",
        "phase": "setup",
        "seconds": 1.0,
        "ok": True,
    },
    METRIC_RECORD,
    FUTURE_RECORD,
    {
        "ts": 105.0,
        "start_ts": 100.0,
        "pid": 1,
        "kind": "pipeline",
        "seconds": 5.0,
        "ok": True,
    },
]


class TestFold:
    def test_unknown_shapes_pass_through(self, tmp_path):
        metrics = fold(RECORDS)
        assert metrics.record_count == len(RECORDS)
        assert metrics.span_count == 2
        assert metrics.metric_count == 1
        # The future shape lands in the events bucket, uncrashed.
        assert any(
            record["kind"] == "flamegraph-v9" for record in metrics.events
        )
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as stream:
            for record in RECORDS:
                stream.write(json.dumps(record) + "\n")
        assert fold_file(str(path)).record_count == len(RECORDS)
        metrics.render()  # must not raise

    def test_counters_still_fold(self):
        assert fold(RECORDS).metrics.counters() == {"dataset.cache.hits": 1}


class TestWatch:
    def test_feed_all_ignores_unknown_kinds(self):
        watch = TraceWatch()
        watch.feed_all(RECORDS)
        assert watch.records == len(RECORDS)
        watch.render(now=106.0)  # must not raise


class TestPhaseTimings:
    def test_from_spans_skips_records_without_seconds(self):
        timings = PhaseTimings.from_spans(RECORDS)
        assert timings.setup_seconds == 1.0
        assert timings.total_seconds == 5.0
