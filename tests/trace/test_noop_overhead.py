"""The disabled tracer's hot path allocates nothing.

Call sites never guard on tracing being configured (the whole point of
the no-op tracer), so the disabled path runs inside every shard and
every worker poll iteration — it must stay allocation-free.
"""

import gc
import tracemalloc

import pytest

import repro.trace.tracer as tracer_module
from repro.trace import Tracer

pytestmark = pytest.mark.trace


class TestNoopHotPath:
    def test_disabled_span_is_one_shared_singleton(self):
        tracer = Tracer(None)
        assert tracer.span("a", x=1) is tracer.span("b")
        assert not tracer.enabled and not tracer.active

    def test_disabled_event_and_span_allocate_nothing(self):
        tracer = Tracer(None)
        for _ in range(200):  # warm CPython's dict/frame freelists
            tracer.event("x", a=1)
            with tracer.span("y", b=2):
                pass
        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            tracer.event("x", a=1)
            with tracer.span("y", b=2):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        only_tracer = tracemalloc.Filter(True, tracer_module.__file__)
        growth = after.filter_traces([only_tracer]).compare_to(
            before.filter_traces([only_tracer]), "lineno"
        )
        assert sum(entry.size_diff for entry in growth) == 0
