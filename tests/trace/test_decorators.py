"""@trace_step / @profile_step against the process-wide tracer."""

import json

import pytest

from repro.trace import Tracer, current_tracer, install_tracer, profile_step, trace_step

pytestmark = pytest.mark.trace


def _lines(path):
    with open(path) as stream:
        return [json.loads(line) for line in stream.read().splitlines() if line]


@pytest.fixture
def installed(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    previous = install_tracer(Tracer(path, source="test"))
    try:
        yield path
    finally:
        install_tracer(previous)


class TestTraceStep:
    def test_emits_begin_and_end_records_with_static_fields(self, installed):
        @trace_step("compile", stage="frontend")
        def step(value):
            return value * 2

        assert step(21) == 42
        begin, end = _lines(installed)
        assert begin["kind"] == "compile"
        assert begin["stage"] == "frontend"
        assert "seconds" not in begin
        assert end["stage"] == "frontend"
        assert end["ok"] is True

    def test_without_an_installed_tracer_the_call_is_plain(self, tmp_path):
        calls = []

        @trace_step("compile")
        def step():
            calls.append(1)

        step()
        assert calls == [1]  # no tracer: nothing written anywhere


class TestProfileStep:
    def test_emits_one_end_only_record_per_call(self, installed):
        @profile_step("ilp-solve", solver="greedy")
        def solve():
            return "contract"

        assert solve() == "contract"
        assert solve() == "contract"
        records = _lines(installed)
        assert len(records) == 2  # no begin lines: half the file volume
        for record in records:
            assert record["kind"] == "ilp-solve"
            assert record["solver"] == "greedy"
            assert "start_ts" in record and "seconds" in record

    def test_records_ok_false_and_reraises(self, installed):
        @profile_step("ilp-solve")
        def solve():
            raise RuntimeError("infeasible")

        with pytest.raises(RuntimeError):
            solve()
        (record,) = _lines(installed)
        assert record["ok"] is False


class TestInstall:
    def test_install_returns_the_previous_tracer_for_restoration(self):
        baseline = current_tracer()
        first = Tracer(None, source="a")
        assert install_tracer(first) is baseline
        assert current_tracer() is first
        assert install_tracer(None) is first
        assert current_tracer() is not first
        install_tracer(baseline)
