"""Chrome-trace export: a Perfetto-loadable view of a trace file."""

import json

import pytest

from repro.trace.export import chrome_trace_events, export_chrome

pytestmark = pytest.mark.trace


RECORDS = [
    {"ts": 100.0, "start_ts": 100.0, "pid": 10, "kind": "phase", "phase": "evaluate"},
    {
        "ts": 102.0,
        "start_ts": 100.0,
        "pid": 10,
        "kind": "phase",
        "phase": "evaluate",
        "seconds": 2.0,
        "ok": True,
    },
    {
        "ts": 101.0,
        "start_ts": 100.5,
        "pid": 11,
        "source": "w1",
        "kind": "shard",
        "start_id": 0,
        "count": 250,
        "seconds": 0.5,
        "ok": True,
    },
    {"ts": 101.5, "pid": 11, "source": "w1", "kind": "claim", "job": "j1"},
    {
        "ts": 103.0,
        "pid": 10,
        "kind": "metric",
        "source": "main",
        "counters": {"dataset.cache.hits": 1},
        "gauges": {"queue.depth": 2},
        "histograms": {},
        "final": True,
    },
]


class TestChromeTraceEvents:
    def test_event_shapes(self):
        events = chrome_trace_events(RECORDS)
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i", "C"}
        for event in events:
            assert "pid" in event and "tid" in event
            if event["ph"] != "M":
                assert event["ts"] >= 0  # rebased to the earliest record

    def test_spans_become_complete_events(self):
        events = chrome_trace_events(RECORDS)
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 2  # begin records are dropped
        phase = next(event for event in complete if event["pid"] == 10)
        assert phase["name"] == "phase:evaluate"
        assert phase["dur"] == pytest.approx(2_000_000.0)
        assert phase["args"]["phase"] == "evaluate"

    def test_lanes_get_stable_tids_and_metadata(self):
        events = chrome_trace_events(RECORDS)
        metadata = [event for event in events if event["ph"] == "M"]
        names = {
            (event["pid"], event["name"], event["args"]["name"])
            for event in metadata
        }
        assert (10, "thread_name", "main") in names
        assert (11, "thread_name", "w1") in names
        assert any(name == "process_name" for _, name, _ in names)

    def test_metric_snapshots_become_counter_events(self):
        events = chrome_trace_events(RECORDS)
        counters = [event for event in events if event["ph"] == "C"]
        names = {event["name"] for event in counters}
        assert "dataset.cache.hits" in names and "queue.depth" in names
        for event in counters:
            assert set(event["args"]) == {"value"}


class TestExportChrome:
    def test_writes_a_valid_json_document(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w") as stream:
            for record in RECORDS:
                stream.write(json.dumps(record) + "\n")
        output = tmp_path / "trace.chrome.json"
        document = export_chrome(str(trace), str(output))
        on_disk = json.loads(output.read_text())
        assert on_disk == document
        assert on_disk["displayTimeUnit"] == "ms"
        assert len(on_disk["traceEvents"]) == len(chrome_trace_events(RECORDS))
