"""PhaseTimings as a projection of the span stream.

The field names and semantics predate the trace layer (Table III's
columns); these tests pin them so the projection can never drift from
what the old per-phase accumulators reported.
"""

import dataclasses

import pytest

from repro.pipeline import PhaseTimings, SynthesisPipeline
from repro.trace import read_trace

pytestmark = pytest.mark.trace


def _end(kind, seconds, **fields):
    record = {
        "ts": 0.0,
        "start_ts": 0.0,
        "pid": 1,
        "kind": kind,
        "seconds": seconds,
        "ok": True,
    }
    record.update(fields)
    return record


class TestProjection:
    def test_legacy_field_semantics_pinned_for_the_in_process_path(self):
        timings = PhaseTimings.from_spans(
            [
                {"ts": 0.0, "pid": 1, "kind": "campaign-start"},  # ignored
                {"ts": 0.0, "start_ts": 0.0, "pid": 1, "kind": "phase",
                 "phase": "setup"},  # begin record: ignored
                _end("phase", 0.25, phase="setup"),
                _end("phase", 2.0, phase="evaluate",
                     simulation_seconds=1.25, extraction_seconds=0.5),
                _end("phase", 1.0, phase="synthesize"),
                _end("phase", 0.125, phase="verify"),
                _end("ilp-solve", 0.9),  # profiling detail: not a phase
                _end("pipeline", 3.5),
            ]
        )
        assert timings == PhaseTimings(
            setup_seconds=0.25,
            evaluation_seconds=2.0,
            simulation_seconds=1.25,
            extraction_seconds=0.5,
            synthesis_seconds=1.0,
            verification_seconds=0.125,
            total_seconds=3.5,
        )

    def test_evaluate_span_carries_the_cache_and_executor_detail(self):
        cached = PhaseTimings.from_spans(
            [_end("phase", 0.0, phase="evaluate", cache_hit=True)]
        )
        assert cached.cache_hit is True
        sharded = PhaseTimings.from_spans(
            [
                _end("phase", 2.0, phase="evaluate", executor="multiprocess",
                     shards_total=8, shards_resumed=3, shards_quarantined=1,
                     executor_downgraded="threaded"),
            ]
        )
        assert sharded.executor_name == "multiprocess"
        assert sharded.shards_total == 8
        assert sharded.shards_resumed == 3
        assert sharded.shards_quarantined == 1
        assert sharded.executor_downgraded == "threaded"
        assert "executor multiprocess, 8 shards, 3 resumed" in sharded.render()


class TestRealRunEquivalence:
    def _run(self, trace_path=None):
        pipeline = SynthesisPipeline().budget(40, seed=1)
        if trace_path is not None:
            pipeline.trace(trace_path)
        return pipeline.run()

    def test_tracing_on_reports_the_same_run_shape_as_tracing_off(
        self, tmp_path
    ):
        baseline = self._run().timings
        traced = self._run(str(tmp_path / "trace.jsonl")).timings
        # Two separate runs cannot share wall clocks, but every
        # structural field must agree and every timer must be coherent.
        for field in dataclasses.fields(PhaseTimings):
            lhs = getattr(baseline, field.name)
            rhs = getattr(traced, field.name)
            if isinstance(lhs, float):
                assert (lhs > 0.0) == (rhs > 0.0), field.name
            else:
                assert lhs == rhs, field.name
        assert traced.total_seconds >= traced.synthesis_seconds

    def test_file_round_trip_reproduces_the_run_timings(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        result = self._run(path)
        projected = PhaseTimings.from_spans(read_trace(path))
        for field in dataclasses.fields(PhaseTimings):
            lhs = getattr(result.timings, field.name)
            rhs = getattr(projected, field.name)
            if isinstance(lhs, float):
                # Full precision in memory, 6-digit rounding on disk.
                assert rhs == pytest.approx(lhs, abs=1e-6), field.name
            else:
                assert lhs == rhs, field.name
        assert result.timings.render() == projected.render()
