"""TraceTail survives its file being truncated or replaced.

A restarted run rewriting its trace path shrinks the file under a
live ``watch``; a tail stuck at its stale offset would read garbage
from mid-record (or nothing ever again).  The tail must detect the
shrink, reset, and re-read from the top.
"""

import json

import pytest

from repro.trace.watch import TraceTail

pytestmark = pytest.mark.trace


def _write(path, records, mode="w"):
    with open(path, mode) as stream:
        for record in records:
            stream.write(json.dumps(record) + "\n")


def _record(index, **fields):
    record = {"ts": 100.0 + index, "pid": 1, "kind": "event", "n": index}
    record.update(fields)
    return record


class TestTruncation:
    def test_shrunk_file_is_reread_from_the_top(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _write(path, [_record(0), _record(1), _record(2)])
        tail = TraceTail(path)
        assert [record["n"] for record in tail.poll()] == [0, 1, 2]
        # A restarted run replaces the file with a shorter one.
        _write(path, [_record(10)])
        assert [record["n"] for record in tail.poll()] == [10]
        # Appends after the reset stream incrementally again.
        _write(path, [_record(11)], mode="a")
        assert [record["n"] for record in tail.poll()] == [11]

    def test_same_size_appends_still_stream(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _write(path, [_record(0)])
        tail = TraceTail(path)
        assert len(tail.poll()) == 1
        assert tail.poll() == []
        _write(path, [_record(1)], mode="a")
        assert [record["n"] for record in tail.poll()] == [1]

    def test_torn_tail_still_buffers_across_truncation_reset(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _write(path, [_record(0), _record(1)])
        tail = TraceTail(path)
        tail.poll()
        # Replacement file ends mid-record: the fragment must be held,
        # not glued to the pre-truncation buffer.
        with open(path, "w") as stream:
            stream.write(json.dumps(_record(20)) + "\n")
            stream.write('{"ts": 130.0, "pid": 1, "ki')
        assert [record["n"] for record in tail.poll()] == [20]
        with open(path, "a") as stream:
            stream.write('nd": "event", "n": 21}\n')
        assert [record["n"] for record in tail.poll()] == [21]
