"""Acceptance: the watch view reconstructs live progress from the
trace file alone — for a campaign run, an adaptive run, and the
distributed service with real worker subprocesses."""

import os
import subprocess
import sys

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.pipeline import SynthesisPipeline
from repro.trace import fold_file, render_once

pytestmark = pytest.mark.trace

_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


class TestCampaignTrace:
    def test_watch_renders_cell_progress_from_the_trace_alone(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        spec = CampaignSpec(
            name="traced",
            cores=("ibex",),
            solvers=("greedy",),
            budgets=(20, 40),
            verify=0,
            trace_path=trace_path,
        )
        run_campaign(spec, results_dir=str(tmp_path / "results"))
        frame = render_once(trace_path, now=1e12)
        assert "campaign traced: 2/2 cells done (0 resumed, 0 failed)" in frame
        assert "last cell:" in frame
        metrics = fold_file(trace_path)
        assert metrics.summary("cell").count == 2
        assert {e["kind"] for e in metrics.events} >= {
            "campaign-start",
            "campaign-end",
        }
        # The cells ran inside per-cell pipelines sharing the file.
        assert metrics.summary("pipeline").count == 2
        assert metrics.summary("phase:synthesize").count == 2

    def test_resumed_cells_surface_in_the_frame(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        spec = CampaignSpec(
            name="resumed", cores=("ibex",), solvers=("greedy",),
            budgets=(20,), verify=0, trace_path=trace_path,
        )
        manifest = str(tmp_path / "manifest.jsonl")
        run_campaign(spec, results_dir=str(tmp_path / "results"),
                     manifest=manifest)
        run_campaign(spec, results_dir=str(tmp_path / "results"),
                     manifest=manifest, resume=True)
        frame = render_once(trace_path, now=1e12)
        assert "(1 resumed, 0 failed)" in frame


class TestAdaptiveTrace:
    def test_watch_renders_round_progress(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        (
            SynthesisPipeline()
            .solver("greedy")
            .budget(60, seed=0)
            .adaptive(rounds=3, batch=20, stop="budget")
            .trace(trace_path)
            .run()
        )
        frame = render_once(trace_path, now=1e12)
        assert "adaptive: round " in frame
        assert "% coverage" in frame
        metrics = fold_file(trace_path)
        assert metrics.summary("round").count == 3
        for record in metrics.rounds():
            assert "cumulative_cases" in record and "atom_coverage" in record


class TestServiceTrace:
    def test_watch_renders_jobs_and_workers_from_a_real_service_run(
        self, tmp_path
    ):
        root = str(tmp_path / "svc")
        queue_dir = os.path.join(root, "queue")
        trace_path = os.path.join(root, "trace.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")

        def cli(*args):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.experiments.cli", *args],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True,
            )

        serve = cli(
            "serve", "--service-root", root, "--executor", "workqueue",
            "--max-requests", "1", "--idle-timeout", "120",
            "--shard-size", "15", "--poll", "0.05",
        )
        # --trace points the worker at the broker's file: one shared
        # JSONL interleaving broker and worker processes.
        worker = cli(
            "service", "worker", "--queue-dir", queue_dir,
            "--worker-id", "tracee", "--idle-timeout", "60",
            "--trace", trace_path,
        )
        try:
            submit = cli(
                "submit", "--service-root", root, "--core", "ibex",
                "--solver", "greedy", "--count", "60", "--wait", "120",
            )
            output, _ = submit.communicate(timeout=150)
            assert submit.returncode == 0, output
        finally:
            worker.kill()
            serve.kill()

        frame = render_once(trace_path, now=1e12)
        # Queue progress, the worker's identity, and the request all
        # reconstructed from the one shared file.
        assert "queue:" in frame and " done," in frame
        assert "tracee" in frame
        assert "service: 1 request(s) seen, 1 ticket(s) issued" in frame
        metrics = fold_file(trace_path)
        assert metrics.summary("execute").count >= 1
        kinds = {event["kind"] for event in metrics.events}
        assert {"request", "enqueue", "claim", "done", "worker-start"} <= kinds
