"""Tracer record shapes: begin/end spans, events, rounding, children."""

import json
import os

import pytest

from repro.trace import Tracer

pytestmark = pytest.mark.trace


def _lines(path):
    with open(path) as stream:
        return [json.loads(line) for line in stream.read().splitlines() if line]


class TestSpanRecords:
    def test_span_emits_begin_and_end_both_carrying_start_ts(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path, source="pipeline")
        with tracer.span("phase", phase="setup"):
            pass
        begin, end = _lines(path)
        # The begin record announces in-flight work: start_ts, no
        # seconds; ts equals start_ts at emission.
        assert begin["start_ts"] == begin["ts"]
        assert "seconds" not in begin
        assert begin["kind"] == "phase"
        assert begin["phase"] == "setup"
        assert begin["source"] == "pipeline"
        assert begin["pid"] == os.getpid()
        # The end record repeats start_ts (the watch matching key) and
        # adds the duration and outcome.
        assert end["start_ts"] == begin["start_ts"]
        assert end["seconds"] >= 0.0
        assert end["ok"] is True
        assert end["phase"] == "setup"

    def test_fields_added_inside_the_span_land_on_the_end_record_only(
        self, tmp_path
    ):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        with tracer.span("cell", cell="a") as span:
            span.add(atoms=7)
        begin, end = _lines(path)
        assert "atoms" not in begin
        assert end["atoms"] == 7

    def test_span_marks_ok_false_and_propagates_on_exception(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        with pytest.raises(ValueError):
            with tracer.span("phase", phase="evaluate"):
                raise ValueError("boom")
        _, end = _lines(path)
        assert end["ok"] is False

    def test_record_emits_an_end_only_span_with_back_dated_start_ts(
        self, tmp_path
    ):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        tracer.record("ilp-solve", 1.5)
        (record,) = _lines(path)
        assert record["seconds"] == 1.5
        assert record["ok"] is True
        assert record["ts"] - record["start_ts"] == pytest.approx(1.5, abs=1e-5)


class TestEvents:
    def test_event_records_have_no_start_ts(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        Tracer(path, source="serve").event("request", request="abc")
        (record,) = _lines(path)
        assert "start_ts" not in record
        assert record["kind"] == "request"
        assert record["request"] == "abc"
        assert record["source"] == "serve"


class TestEmission:
    def test_file_rounds_floats_but_collector_keeps_full_precision(
        self, tmp_path
    ):
        path = str(tmp_path / "trace.jsonl")
        collector = []
        tracer = Tracer(path, collector=collector)
        value = 0.123456789012345
        tracer.event("x", value=value, flag=True)
        assert collector[0]["value"] == value
        (record,) = _lines(path)
        assert record["value"] == 0.123457
        # bools are not floats: ``round`` must never touch them.
        assert record["flag"] is True

    def test_collector_only_tracer_is_active_but_not_enabled(self, tmp_path):
        collector = []
        tracer = Tracer(None, collector=collector)
        assert tracer.active and not tracer.enabled
        tracer.event("x")
        with tracer.span("y"):
            pass
        assert len(collector) == 3

    def test_tracer_creates_missing_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "trace.jsonl")
        Tracer(path).event("x")
        assert _lines(path)[0]["kind"] == "x"

    def test_child_shares_the_file_under_its_own_source_label(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        parent = Tracer(path, source="broker")
        child = parent.child("worker-1")
        parent.event("a")
        child.event("b")
        first, second = _lines(path)
        assert first["source"] == "broker"
        assert second["source"] == "worker-1"
