"""Record-level equivalence: the batched engine vs. the scalar oracle.

The contracts-level equivalence suite pins dataset bytes; these tests
pin the layer below — every :class:`ExecRecord` field, retirement
cycle, total cycle, final architectural state, and published uarch
state must match the scalar ``Core.simulate`` path lane for lane.
"""

import pytest

from repro.batchsim import supports_core
from repro.batchsim.simulate import run_batch
from repro.contracts.riscv_template import build_riscv_template
from repro.isa.assembler import assemble
from repro.isa.encoding import signed32
from repro.isa.executor import ExecutionLimitExceeded, _signed
from repro.isa.program import Program
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore, IbexConfig

RECORD_FIELDS = (
    "index",
    "pc",
    "next_pc",
    "instruction",
    "rs1_value",
    "rs2_value",
    "rd_value",
    "mem_read_addr",
    "mem_read_data",
    "mem_write_addr",
    "mem_write_data",
    "branch_taken",
    "raw_rs1_dist",
    "raw_rs2_dist",
    "war_rd_dist",
    "waw_dist",
)

CORE_FACTORIES = {
    "ibex": IbexCore,
    "cva6": CVA6Core,
    "ibex-dcache": lambda: IbexCore(IbexConfig(dcache=True)),
    "ibex-compressed": lambda: IbexCore(IbexConfig(compressed_fetch=True)),
}

#: Arithmetic corner cases: INT_MIN / -1 overflow, division by zero,
#: full-width shifts, signed/unsigned high products.
EDGE_PROGRAM = """
addi x1, x0, -1
lui x2, 0x80000
div x3, x2, x1
rem x4, x2, x1
divu x5, x1, x0
remu x6, x1, x0
div x7, x1, x0
sll x8, x1, x1
sra x9, x2, x1
mul x10, x1, x1
mulh x11, x2, x2
mulhsu x12, x2, x1
mulhu x13, x1, x1
slli x14, x1, 31
srai x15, x2, 31
sltu x16, x2, x1
slt x17, x2, x1
"""

#: Taken/not-taken branches, JAL/JALR, unaligned loads and stores,
#: sign-extending narrow loads, and an early terminal.
CONTROL_PROGRAM = """
addi x1, x0, 12
jalr x2, x1, 0x100
addi x3, x0, 1
beq x0, x0, 8
addi x4, x0, 2
jal x5, 8
addi x6, x0, 3
sw x1, 2(x0)
lh x7, 3(x0)
lw x8, 2(x0)
lb x9, 5(x0)
ecall
"""


def _assert_lane_equal(reference, batched):
    assert reference.trace.retirement_cycles == batched.trace.retirement_cycles
    assert reference.trace.total_cycles == batched.trace.total_cycles
    assert reference.final_state == batched.final_state
    assert reference.uarch_state == batched.uarch_state
    records_a = reference.trace.exec_records
    records_b = batched.trace.exec_records
    assert len(records_a) == len(records_b)
    for record_a, record_b in zip(records_a, records_b):
        for field in RECORD_FIELDS:
            assert getattr(record_a, field) == getattr(record_b, field), field


@pytest.mark.parametrize("core_name", sorted(CORE_FACTORIES))
def test_generated_corpus_record_identical(core_name):
    core = CORE_FACTORIES[core_name]()
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=13)
    cases = list(generator.iter_generate(30))
    programs = [case.program_a for case in cases]
    programs += [case.program_b for case in cases]
    states = [case.initial_state for case in cases] * 2
    simulation = run_batch(core, programs, states)
    for lane, program in enumerate(programs):
        reference = core.simulate(program, states[lane])
        _assert_lane_equal(reference, simulation.materialize(lane))


@pytest.mark.parametrize("source", [EDGE_PROGRAM, CONTROL_PROGRAM])
@pytest.mark.parametrize("core_name", sorted(CORE_FACTORIES))
def test_handwritten_programs_record_identical(core_name, source):
    core = CORE_FACTORIES[core_name]()
    program = assemble(source)
    simulation = run_batch(core, [program])
    _assert_lane_equal(core.simulate(program), simulation.materialize(0))


def test_empty_program_and_mixed_lengths():
    core = IbexCore()
    programs = [
        Program(()),
        assemble("addi x1, x0, 5"),
        assemble(EDGE_PROGRAM),
    ]
    simulation = run_batch(core, programs)
    for lane, program in enumerate(programs):
        _assert_lane_equal(core.simulate(program), simulation.materialize(lane))


def test_batch_views_match_materialized_lanes():
    core = CVA6Core()
    program = assemble(CONTROL_PROGRAM)
    simulation = run_batch(core, [program])
    view = simulation.view(0)
    full = simulation.materialize(0)
    assert view.trace.retirement_cycles == full.trace.retirement_cycles
    assert view.trace.total_cycles == full.trace.total_cycles
    assert view.uarch_state == full.uarch_state


def test_execution_limit_raises_like_scalar():
    looping = assemble("beq x0, x0, 0")
    core = IbexCore()
    with pytest.raises(ExecutionLimitExceeded):
        core.simulate(looping, max_instructions=16)
    with pytest.raises(ExecutionLimitExceeded):
        run_batch(core, [looping], max_instructions=16)


def test_simulate_batch_is_the_primary_core_surface():
    core = IbexCore()
    template = build_riscv_template()
    generator = TestCaseGenerator(template, seed=29)
    cases = list(generator.iter_generate(8))
    programs = [case.program_a for case in cases]
    states = [case.initial_state for case in cases]
    batched = core.simulate_batch(programs, states)
    for program, state, result in zip(programs, states, batched):
        _assert_lane_equal(core.simulate(program, state), result)
    assert core.simulate_batch([]) == []
    with pytest.raises(ValueError):
        core.simulate_batch(programs, states[:-1])


def test_supports_core_is_exact_type():
    assert supports_core(IbexCore())
    assert supports_core(CVA6Core())

    class Subclassed(IbexCore):
        pass

    assert not supports_core(Subclassed())


def test_signed32_is_the_shared_sign_extension_helper():
    """The scalar interpreter and the batch engine must not drift on
    signed semantics: one helper, used by both."""
    assert _signed is signed32
    for value, expected in (
        (0, 0),
        (1, 1),
        (0x7FFFFFFF, 0x7FFFFFFF),
        (0x80000000, -0x80000000),
        (0xFFFFFFFF, -1),
    ):
        assert signed32(value) == expected
