"""Tests for the GENERATOR_REGISTRY strategies.

The determinism contract is the load-bearing property: every strategy
generates per test id from ``(seed, test_id, state)``, which is what
makes executor fan-out, round checkpointing, and the dataset cache key
sound.
"""

import json

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.isa.instructions import Instruction, Opcode
from repro.testgen import (
    GENERATOR_REGISTRY,
    CoverageStrategy,
    MutateStrategy,
    RandomStrategy,
    TestCaseGenerator,
)
from repro.testgen.opcodes import MUTATION_POOLS, mutation_pool
from repro.testgen.strategies import child_rng
from repro.uarch.ibex import IbexCore

pytestmark = pytest.mark.adaptive


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def _same_case(a, b):
    return (
        a.test_id == b.test_id
        and a.program_a.instructions == b.program_a.instructions
        and a.program_b.instructions == b.program_b.instructions
        and a.program_a.base_address == b.program_a.base_address
        and a.initial_state == b.initial_state
        and a.targeted_atom_id == b.targeted_atom_id
    )


def _evaluate(template, cases):
    evaluator = TestCaseEvaluator(IbexCore(), template)
    return [evaluator.evaluate(case) for case in cases]


class TestRegistry:
    def test_registered_strategies(self):
        assert set(GENERATOR_REGISTRY.names()) >= {"random", "mutate", "coverage"}

    def test_create_forwards_arguments(self, template):
        strategy = GENERATOR_REGISTRY.create("coverage", template, seed=9)
        assert isinstance(strategy, CoverageStrategy)
        assert strategy.seed == 9

    def test_names_match_class_attributes(self, template):
        for name in ("random", "mutate", "coverage"):
            assert GENERATOR_REGISTRY.create(name, template).name == name


class TestRandomStrategy:
    def test_byte_identical_to_legacy_generator(self, template):
        """`random` is the §IV-B generator behind the new interface —
        pinned so the adaptive surface cannot drift from the paper's
        fixed-budget corpus."""
        legacy = TestCaseGenerator(template, seed=11).generate(30)
        strategy = RandomStrategy(template, seed=11).generate(30)
        assert all(_same_case(a, b) for a, b in zip(legacy, strategy))

    def test_start_id_slices_the_same_stream(self, template):
        strategy = RandomStrategy(template, seed=4)
        whole = strategy.generate(20)
        tail = strategy.generate(5, start_id=15)
        assert all(_same_case(a, b) for a, b in zip(whole[15:], tail))

    def test_observe_is_a_no_op(self, template):
        strategy = RandomStrategy(template, seed=4)
        before = strategy.generate(5)
        strategy.observe(_evaluate(template, before))
        assert strategy.state() == {}
        after = strategy.generate(5)
        assert all(_same_case(a, b) for a, b in zip(before, after))


class TestCoverageStrategy:
    def test_fresh_state_is_deterministic(self, template):
        a = CoverageStrategy(template, seed=2).generate(10)
        b = CoverageStrategy(template, seed=2).generate(10)
        assert all(_same_case(x, y) for x, y in zip(a, b))

    def test_state_round_trips_through_json(self, template):
        strategy = CoverageStrategy(template, seed=2)
        strategy.observe(_evaluate(template, strategy.generate(30)))
        snapshot = json.loads(json.dumps(strategy.state()))
        restored = CoverageStrategy(template, seed=2)
        restored.restore(snapshot)
        a = strategy.generate(10, start_id=30)
        b = restored.generate(10, start_id=30)
        assert all(_same_case(x, y) for x, y in zip(a, b))

    def test_reaims_at_uncovered_atoms(self, template):
        """With every atom but one saturated, nearly all cases target
        the uncovered one."""
        strategy = CoverageStrategy(template, seed=5)
        uncovered = 7
        strategy.restore(
            {
                "counts": {
                    str(atom.atom_id): 1000
                    for atom in template
                    if atom.atom_id != uncovered
                }
            }
        )
        targeted = [case.targeted_atom_id for case in strategy.generate(50)]
        assert targeted.count(uncovered) > 40

    def test_feedback_changes_the_stream(self, template):
        fresh = CoverageStrategy(template, seed=2)
        steered = CoverageStrategy(template, seed=2)
        steered.observe(_evaluate(template, steered.generate(40)))
        fresh_cases = fresh.generate(30, start_id=40)
        steered_cases = steered.generate(30, start_id=40)
        assert any(
            not _same_case(a, b) for a, b in zip(fresh_cases, steered_cases)
        )


class TestMutateStrategy:
    def test_falls_back_to_random_without_parents(self, template):
        legacy = TestCaseGenerator(template, seed=3).generate(10)
        strategy = MutateStrategy(template, seed=3).generate(10)
        assert all(_same_case(a, b) for a, b in zip(legacy, strategy))

    def test_state_round_trips_through_json(self, template):
        strategy = MutateStrategy(template, seed=3)
        strategy.observe(_evaluate(template, strategy.generate(40)))
        assert strategy.state()["parents"]  # feedback produced parents
        snapshot = json.loads(json.dumps(strategy.state()))
        restored = MutateStrategy(template, seed=3)
        restored.restore(snapshot)
        a = strategy.generate(10, start_id=40)
        b = restored.generate(10, start_id=40)
        assert all(_same_case(x, y) for x, y in zip(a, b))

    def test_mutants_are_well_formed_pairs(self, template):
        strategy = MutateStrategy(template, seed=3)
        strategy.observe(_evaluate(template, strategy.generate(40)))
        for case in strategy.generate(30, start_id=40):
            assert case.program_a.base_address == case.program_b.base_address
            assert len(case.program_a) == len(case.program_b)
            # Valid by construction: Instruction validates its fields.

    def test_opcode_mutation_stays_in_shared_pool(self):
        instruction = Instruction(Opcode.ADD, rd=3, rs1=4, rs2=5)
        rng = child_rng(1, 1)
        for _ in range(20):
            mutated = MutateStrategy._mutate_instruction(instruction, "opcode", rng)
            assert mutated.opcode in mutation_pool(Opcode.ADD)
            assert mutated.opcode is not Opcode.ADD

    def test_parent_corpus_is_capped(self, template):
        from repro.testgen.strategies import MAX_PARENTS

        strategy = MutateStrategy(template, seed=3)
        for start in range(0, 400, 100):
            strategy.observe(
                _evaluate(template, strategy.generate(100, start_id=start))
            )
        assert len(strategy.state()["parents"]) <= MAX_PARENTS


class TestOpcodePools:
    def test_every_pool_member_maps_to_its_pool(self):
        for opcode, pool in MUTATION_POOLS.items():
            assert opcode in pool
            assert mutation_pool(opcode) == pool

    def test_jumps_have_no_pool(self):
        assert mutation_pool(Opcode.JAL) == ()
        assert mutation_pool(Opcode.JALR) == ()
