"""Tests for the atom-targeted test-case generator."""

import random

import pytest

from repro.contracts.observations import distinguishing_atoms
from repro.contracts.riscv_template import build_riscv_template
from repro.isa.executor import execute_program
from repro.isa.instructions import InstructionCategory, Opcode, OPCODE_INFO
from repro.testgen.generator import GeneratorConfig, TestCaseGenerator
from repro.testgen.testcase import TestCase


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


@pytest.fixture(scope="module")
def generator(template):
    return TestCaseGenerator(template, seed=1234)


def run_both(test_case):
    records_a = execute_program(test_case.program_a, test_case.initial_state.copy())
    records_b = execute_program(test_case.program_b, test_case.initial_state.copy())
    return records_a, records_b


def atom_by_name(template, name):
    for atom in template:
        if atom.name == name:
            return atom
    raise LookupError(name)


def test_deterministic_in_seed(template):
    a = TestCaseGenerator(template, seed=7).generate(10)
    b = TestCaseGenerator(template, seed=7).generate(10)
    for case_a, case_b in zip(a, b):
        assert case_a.program_a == case_b.program_a
        assert case_a.program_b == case_b.program_b
        assert case_a.initial_state.regs == case_b.initial_state.regs


def test_different_seeds_differ(template):
    a = TestCaseGenerator(template, seed=1).generate(10)
    b = TestCaseGenerator(template, seed=2).generate(10)
    assert any(
        case_a.program_a != case_b.program_a for case_a, case_b in zip(a, b)
    )


def test_programs_share_prefix_and_suffix_structure(generator):
    for test_case in generator.generate(50):
        assert len(test_case.program_a) == len(test_case.program_b)
        assert test_case.differing_positions, "programs must differ somewhere"


def test_programs_terminate(generator):
    for test_case in generator.generate(100):
        records_a, records_b = run_both(test_case)
        assert 1 <= len(records_a) <= len(test_case.program_a)
        assert 1 <= len(records_b) <= len(test_case.program_b)


def test_initial_state_registers_random_but_x0_zero(generator):
    test_case = generator.generate(1)[0]
    assert test_case.initial_state.regs[0] == 0
    assert any(value != 0 for value in test_case.initial_state.regs[1:])


@pytest.mark.parametrize(
    "atom_name",
    [
        "div:REG_RS2",
        "div:REG_RS1",
        "add:OP",
        "addi:IMM",
        "slli:IMM",
        "sll:REG_RS2",
        "lw:IS_WORD_ALIGNED",
        "lh:IS_HALF_ALIGNED",
        "lw:MEM_R_ADDR",
        "lw:MEM_R_DATA",
        "lw:REG_RD",
        "sw:MEM_W_ADDR",
        "sw:MEM_W_DATA",
        "beq:BRANCH_TAKEN",
        "bge:BRANCH_TAKEN",
        "beq:NEW_PC",
        "jal:NEW_PC",
        "mul:RAW_RS1_1",
        "mul:RAW_RS2_3",
        "add:RAW_RD_2",
        "add:WAW_1",
        "add:RD",
        "add:RS1",
        "sub:RS2",
        "lui:IMM",
        "jalr:NEW_PC",
        "jalr:RD",
    ],
)
def test_targeted_atom_actually_distinguishes(template, atom_name):
    """The strategy must make the targeted atom distinguish the pair in
    the (large) majority of generated cases."""
    atom = atom_by_name(template, atom_name)
    generator = TestCaseGenerator(template, seed=99)
    hits = 0
    trials = 12
    for trial in range(trials):
        rng = random.Random(1000 + trial)
        test_case = generator.generate_for_atom(atom, trial, rng)
        records_a, records_b = run_both(test_case)
        if atom.atom_id in distinguishing_atoms(template, records_a, records_b):
            hits += 1
    assert hits >= trials * 3 // 4, "only %d/%d hits for %s" % (hits, trials, atom_name)


def test_dependency_variation_preserves_architecture(template, generator):
    """RAW/WAW variations must leave the final architectural state
    identical — only the dependency structure may differ."""
    atom = atom_by_name(template, "mul:RAW_RS1_2")
    for trial in range(10):
        rng = random.Random(trial)
        test_case = generator.generate_for_atom(atom, trial, rng)
        state_a = test_case.initial_state.copy()
        state_b = test_case.initial_state.copy()
        execute_program(test_case.program_a, state_a)
        execute_program(test_case.program_b, state_b)
        assert state_a.regs == state_b.regs


def test_every_targeted_opcode_appears(generator, template):
    """Sampling many cases covers a broad range of instruction types."""
    opcodes = set()
    for test_case in generator.generate(300):
        atom = template.atom(test_case.targeted_atom_id)
        opcodes.add(atom.opcode)
    assert len(opcodes) > 25


def test_branch_targets_stay_inside_program(generator, template):
    for test_case in generator.generate(200):
        for program in (test_case.program_a, test_case.program_b):
            for index, instruction in enumerate(program):
                info = OPCODE_INFO[instruction.opcode]
                if info.category in (
                    InstructionCategory.BRANCH,
                    InstructionCategory.JUMP,
                ) and instruction.opcode is not Opcode.JALR:
                    target = program.address_of(index) + instruction.imm
                    assert program.base_address <= target <= program.end_address


def test_generate_iter_matches_generate(template):
    generator = TestCaseGenerator(template, seed=5)
    eager = generator.generate(5)
    lazy = list(generator.iter_generate(5))
    assert [case.program_a for case in eager] == [case.program_a for case in lazy]


def test_start_id_offsets_ids(template):
    generator = TestCaseGenerator(template, seed=5)
    cases = generator.generate(3, start_id=100)
    assert [case.test_id for case in cases] == [100, 101, 102]


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(min_prelude=3, max_prelude=1)
    with pytest.raises(ValueError):
        GeneratorConfig(min_suffix=0, max_suffix=0)


def test_testcase_base_address_mismatch(template):
    generator = TestCaseGenerator(template, seed=0)
    case = generator.generate(1)[0]
    from repro.isa.program import Program

    with pytest.raises(ValueError):
        TestCase(
            test_id=0,
            program_a=case.program_a,
            program_b=Program(list(case.program_b), base_address=0x4000),
            initial_state=case.initial_state,
        )
