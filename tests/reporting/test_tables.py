"""Tests for the paper-style contract tables."""

import pytest

from repro.contracts.atoms import LeakageFamily
from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.template import Contract
from repro.isa.instructions import InstructionCategory
from repro.reporting.tables import (
    CellMarker,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    TABLE_CATEGORIES,
    TABLE_FAMILIES,
    contract_summary_grid,
    grid_agreement,
    render_contract_table,
)


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


def atoms_named(template, *names):
    ids = []
    wanted = set(names)
    for atom in template:
        if atom.name in wanted:
            ids.append(atom.atom_id)
    assert len(ids) == len(names), "missing atoms: %s" % (
        wanted - {template.atom(i).name for i in ids}
    )
    return ids


def test_not_applicable_cells(template):
    grid = contract_summary_grid(Contract(template, []))
    assert grid[(InstructionCategory.ARITHMETIC, LeakageFamily.ML)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.ARITHMETIC, LeakageFamily.AL)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.ARITHMETIC, LeakageFamily.BL)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.DIVISION, LeakageFamily.ML)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.LOAD, LeakageFamily.BL)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.STORE, LeakageFamily.BL)] is CellMarker.NOT_APPLICABLE
    assert grid[(InstructionCategory.BRANCH, LeakageFamily.ML)] is CellMarker.NOT_APPLICABLE


def test_empty_contract_is_all_none_or_na(template):
    grid = contract_summary_grid(Contract(template, []))
    assert set(grid.values()) <= {CellMarker.NONE, CellMarker.NOT_APPLICABLE}


def test_partial_marker(template):
    ids = atoms_named(template, "div:REG_RS2")
    grid = contract_summary_grid(Contract(template, ids))
    assert grid[(InstructionCategory.DIVISION, LeakageFamily.RL)] is CellMarker.PARTIAL


def test_full_marker(template):
    names = ["%s:BRANCH_TAKEN" % op for op in ("beq", "bne", "blt", "bge", "bltu", "bgeu")]
    ids = atoms_named(template, *names)
    grid = contract_summary_grid(Contract(template, ids))
    assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] is CellMarker.FULL


def test_full_requires_every_opcode(template):
    names = ["%s:BRANCH_TAKEN" % op for op in ("beq", "bne", "blt", "bge", "bltu")]
    ids = atoms_named(template, *names)
    grid = contract_summary_grid(Contract(template, ids))
    assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] is CellMarker.PARTIAL


def test_family_counts_by_any_source(template):
    # One IS_WORD_ALIGNED atom per load opcode marks AL as FULL even
    # without IS_HALF_ALIGNED.
    names = ["%s:IS_WORD_ALIGNED" % op for op in ("lb", "lh", "lw", "lbu", "lhu")]
    ids = atoms_named(template, *names)
    grid = contract_summary_grid(Contract(template, ids))
    assert grid[(InstructionCategory.LOAD, LeakageFamily.AL)] is CellMarker.FULL


def test_render_contains_all_rows(template):
    text = render_contract_table(Contract(template, []), title="T")
    assert text.startswith("T")
    for label, _category in TABLE_CATEGORIES:
        assert label in text
    for family in TABLE_FAMILIES:
        assert family.name in text
    assert "0 atoms selected" in text


def test_paper_grids_complete():
    for reference in (PAPER_TABLE_1, PAPER_TABLE_2):
        assert len(reference) == len(TABLE_CATEGORIES) * len(TABLE_FAMILIES)


def test_paper_table_1_headline_cells():
    # Loads leak alignment; branches leak taken/not-taken.
    assert PAPER_TABLE_1[(InstructionCategory.LOAD, LeakageFamily.AL)] is CellMarker.FULL
    assert PAPER_TABLE_1[(InstructionCategory.BRANCH, LeakageFamily.BL)] is CellMarker.FULL
    assert PAPER_TABLE_1[(InstructionCategory.STORE, LeakageFamily.AL)] is CellMarker.NONE


def test_paper_table_2_headline_cells():
    # CVA6's memory interface hides accesses entirely.
    assert PAPER_TABLE_2[(InstructionCategory.LOAD, LeakageFamily.ML)] is CellMarker.NONE
    assert PAPER_TABLE_2[(InstructionCategory.LOAD, LeakageFamily.AL)] is CellMarker.NONE
    assert PAPER_TABLE_2[(InstructionCategory.BRANCH, LeakageFamily.DL)] is CellMarker.PARTIAL


def test_grid_agreement_perfect():
    matches, total, mismatches = grid_agreement(PAPER_TABLE_1, PAPER_TABLE_1)
    assert matches == total
    assert not mismatches


def test_grid_agreement_counts_mismatches():
    matches, total, mismatches = grid_agreement(PAPER_TABLE_2, PAPER_TABLE_1)
    assert matches < total
    assert len(mismatches) == total - matches
    assert all(":" in text for text in mismatches)
