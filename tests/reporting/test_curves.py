"""Tests for curve serialization and ASCII rendering."""

from repro.reporting.curves import Series, render_ascii_chart, write_csv


def test_series_accessors():
    series = Series("s", [(1.0, 0.5), (2.0, None)])
    assert series.xs == [1.0, 2.0]
    assert series.ys == [0.5, None]


def test_write_csv(tmp_path):
    a = Series("alpha", [(1, 0.25), (2, 0.5)])
    b = Series("beta", [(1, 1.0), (3, None)])
    path = tmp_path / "curves.csv"
    write_csv(str(path), [a, b])
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "x,alpha,beta"
    assert lines[1] == "1,0.250000,1.000000"
    assert lines[2] == "2,0.500000,"
    assert lines[3] == "3,,"


def test_ascii_chart_renders_series():
    series = Series("curve", [(1, 0.0), (50, 0.5), (100, 1.0)])
    chart = render_ascii_chart([series])
    assert "curve" in chart
    assert "*" in chart
    assert "1.00" in chart and "0.00" in chart


def test_ascii_chart_multiple_series_glyphs():
    a = Series("a", [(1, 0.2)])
    b = Series("b", [(1, 0.8)])
    chart = render_ascii_chart([a, b])
    assert "*" in chart and "o" in chart


def test_ascii_chart_log_x():
    series = Series("s", [(1, 0.1), (10, 0.5), (100, 0.9)])
    chart = render_ascii_chart([series], log_x=True)
    assert "s" in chart


def test_ascii_chart_empty():
    assert render_ascii_chart([Series("s", [(1, None)])]) == "(no data)"
