"""Tests for curve serialization and ASCII rendering."""

from repro.reporting.curves import (
    Series,
    adaptive_round_curves,
    render_ascii_chart,
    write_csv,
)


def test_series_accessors():
    series = Series("s", [(1.0, 0.5), (2.0, None)])
    assert series.xs == [1.0, 2.0]
    assert series.ys == [0.5, None]


def test_write_csv(tmp_path):
    a = Series("alpha", [(1, 0.25), (2, 0.5)])
    b = Series("beta", [(1, 1.0), (3, None)])
    path = tmp_path / "curves.csv"
    write_csv(str(path), [a, b])
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "x,alpha,beta"
    assert lines[1] == "1,0.250000,1.000000"
    assert lines[2] == "2,0.500000,"
    assert lines[3] == "3,,"


def test_ascii_chart_renders_series():
    series = Series("curve", [(1, 0.0), (50, 0.5), (100, 1.0)])
    chart = render_ascii_chart([series])
    assert "curve" in chart
    assert "*" in chart
    assert "1.00" in chart and "0.00" in chart


def test_ascii_chart_multiple_series_glyphs():
    a = Series("a", [(1, 0.2)])
    b = Series("b", [(1, 0.8)])
    chart = render_ascii_chart([a, b])
    assert "*" in chart and "o" in chart


def test_ascii_chart_log_x():
    series = Series("s", [(1, 0.1), (10, 0.5), (100, 0.9)])
    chart = render_ascii_chart([series], log_x=True)
    assert "s" in chart


def test_ascii_chart_empty():
    assert render_ascii_chart([Series("s", [(1, None)])]) == "(no data)"


def test_ascii_chart_clips_out_of_range_values():
    """Values outside y_range land on the border rows, not off-canvas."""
    series = Series("s", [(1, -2.0), (2, 0.5), (3, 5.0)])
    chart = render_ascii_chart([series], y_range=(0.0, 1.0))
    canvas = "\n".join(
        line for line in chart.splitlines() if "|" in line
    )
    assert canvas.count("*") == 3  # all three points land on the canvas


def test_ascii_chart_custom_y_range_labels():
    chart = render_ascii_chart(
        [Series("s", [(1, 3.0), (2, 7.0)])], y_range=(0.0, 10.0)
    )
    assert "10.00" in chart and "0.00" in chart


def test_ascii_chart_single_x_avoids_division_by_zero():
    chart = render_ascii_chart([Series("s", [(5, 0.5)])])
    assert "*" in chart


def test_write_csv_single_series_round_values(tmp_path):
    path = tmp_path / "one.csv"
    write_csv(str(path), [Series("only", [(0.5, 0.125)])])
    lines = path.read_text().strip().splitlines()
    assert lines == ["x,only", "0.5,0.125000"]


class _Record:
    """A RoundRecord-shaped stub (the curves API is duck-typed)."""

    def __init__(self, cases, coverage, size, fps):
        self.cumulative_cases = cases
        self.atom_coverage = coverage
        self.contract_size = size
        self.false_positives = fps


def test_adaptive_round_curves_shapes():
    records = [
        _Record(100, 0.5, 4, 1),
        _Record(200, 0.9, 6, 3),
        _Record(300, 1.0, 6, 5),
    ]
    curves = adaptive_round_curves(records)
    by_label = {series.label: series for series in curves}
    assert set(by_label) == {"atom-coverage", "contract-atoms", "false-positives"}
    assert by_label["atom-coverage"].points == [
        (100.0, 0.5),
        (200.0, 0.9),
        (300.0, 1.0),
    ]
    assert by_label["contract-atoms"].ys == [4.0, 6.0, 6.0]
    assert by_label["false-positives"].ys == [1.0, 3.0, 5.0]


def test_adaptive_round_curves_render_and_serialize(tmp_path):
    """The adaptive curves plug into the existing CSV/chart sinks."""
    records = [_Record(50, 0.25, 2, 0), _Record(100, 1.0, 3, 2)]
    curves = adaptive_round_curves(records)
    chart = render_ascii_chart([curves[0]])
    assert "atom-coverage" in chart
    path = tmp_path / "adaptive.csv"
    write_csv(str(path), curves)
    header, *rows = path.read_text().strip().splitlines()
    assert header == "x,atom-coverage,contract-atoms,false-positives"
    assert len(rows) == 2


def test_adaptive_round_curves_from_real_records():
    """The duck-typed contract holds for actual RoundRecords."""
    from repro.adaptive import RoundRecord

    record = RoundRecord(
        round_index=0,
        start_id=0,
        cases=10,
        cumulative_cases=10,
        distinguishable=4,
        covered_atoms=3,
        atom_coverage=0.75,
        contract_atom_ids=(1, 5),
        false_positives=1,
        warm_started=False,
        resumed=False,
        stop_reason=None,
        seconds=0.1,
    )
    curves = adaptive_round_curves([record])
    assert curves[0].points == [(10.0, 0.75)]
    assert curves[1].points == [(10.0, 2.0)]
