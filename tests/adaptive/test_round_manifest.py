"""Round-manifest checkpointing: kill/resume, extension, key binding."""

import json
import os

import pytest

from repro.adaptive import AdaptiveKeyError, AdaptiveLoop, AdaptiveManifest

pytestmark = pytest.mark.adaptive

CORE = "ibex-dcache"
ATTACKER = "cache-state"
TEMPLATE = "riscv-mem"
SEED = 5


def _loop(path, **overrides):
    settings = dict(
        core=CORE,
        template=TEMPLATE,
        attacker=ATTACKER,
        generator="coverage",
        rounds=4,
        batch=40,
        stop="budget",
        seed=SEED,
        manifest_path=str(path),
    )
    settings.update(overrides)
    return AdaptiveLoop(**settings)


class TestResume:
    def test_full_resume_replays_every_round(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        first = _loop(path).run()
        second = _loop(path).run()
        assert second.resumed_rounds == second.rounds_run == first.rounds_run
        assert [r.contract_atom_ids for r in second.records] == [
            r.contract_atom_ids for r in first.records
        ]
        assert second.contract.atom_ids == first.contract.atom_ids
        assert len(second.dataset) == len(first.dataset)

    def test_round_budget_extension_resumes(self, tmp_path):
        """More rounds = the shard-manifest budget-extension rule at
        round granularity: the stored prefix is reused, only the new
        rounds evaluate."""
        path = tmp_path / "rounds.jsonl"
        short = _loop(path, rounds=2).run()
        assert short.stop_reason == "budget-exhausted"
        extended = _loop(path, rounds=4).run()
        assert extended.resumed_rounds == 2
        assert extended.rounds_run == 4
        assert [r.cumulative_cases for r in extended.records] == [40, 80, 120, 160]
        # The resumed prefix matches the short run byte for byte.
        assert [r.contract_atom_ids for r in extended.records[:2]] == [
            r.contract_atom_ids for r in short.records
        ]

    def test_interrupted_loop_resumes_identically(self, tmp_path):
        """A loop killed mid-run (simulated by a smaller round budget)
        continues to the uninterrupted result."""
        reference = _loop(tmp_path / "ref.jsonl").run()
        path = tmp_path / "rounds.jsonl"
        _loop(path, rounds=3).run()  # the "killed at 75%" run
        resumed = _loop(path).run()
        assert resumed.resumed_rounds == 3
        assert [r.contract_atom_ids for r in resumed.records] == [
            r.contract_atom_ids for r in reference.records
        ]
        assert resumed.contract.atom_ids == reference.contract.atom_ids

    def test_killed_mid_run_resumes_byte_identically(self, tmp_path):
        """The SIGKILL-grade scenario the shard manifest pins, at round
        granularity: a loop dying right after round 1's append keeps
        rounds 0-1 (the append is flushed before the progress event),
        and the resumed run replays them and evaluates only the rest —
        to the uninterrupted contract."""
        reference = _loop(tmp_path / "ref.jsonl").run()
        path = tmp_path / "rounds.jsonl"

        class Killed(Exception):
            pass

        def kill_after_two(record):
            if record.round_index == 1:
                raise Killed()

        with pytest.raises(Killed):
            _loop(path, progress=kill_after_two).run()
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 3  # header + the two completed rounds

        resumed = _loop(path).run()
        assert resumed.resumed_rounds == 2
        assert resumed.rounds_run == reference.rounds_run
        assert [r.contract_atom_ids for r in resumed.records] == [
            r.contract_atom_ids for r in reference.records
        ]
        assert resumed.contract.atom_ids == reference.contract.atom_ids
        assert len(resumed.dataset) == len(reference.dataset)

    def test_resume_under_a_different_rule_keeps_going(self, tmp_path):
        """Convergence is re-decided by the resuming run's own rules: a
        verdict persisted under contract-stable must not halt a resumed
        run explicitly configured to exhaust its budget."""
        path = tmp_path / "rounds.jsonl"
        converged = _loop(
            path, rounds=12, batch=100, stop="contract-stable", seed=7
        ).run()
        assert converged.stop_reason.startswith("contract stable")
        swept = _loop(path, rounds=10, batch=100, stop="budget", seed=7).run()
        assert swept.resumed_rounds == converged.rounds_run
        assert swept.rounds_run == 10
        assert swept.stop_reason == "budget-exhausted"

    def test_early_stop_is_replayed_on_resume(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        first = _loop(path, rounds=12, batch=100, stop="contract-stable", seed=7).run()
        assert first.stop_reason.startswith("contract stable")
        second = _loop(path, rounds=12, batch=100, stop="contract-stable", seed=7).run()
        assert second.resumed_rounds == second.rounds_run == first.rounds_run
        assert second.stop_reason == first.stop_reason
        assert second.contract.atom_ids == first.contract.atom_ids


class TestKeyBinding:
    def test_different_seed_raises(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        _loop(path, rounds=1).run()
        with pytest.raises(AdaptiveKeyError):
            _loop(path, rounds=1, seed=SEED + 1).run()

    def test_different_generator_raises(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        _loop(path, rounds=1).run()
        with pytest.raises(AdaptiveKeyError):
            _loop(path, rounds=1, generator="mutate").run()

    def test_derived_manifest_paths_cover_every_identity_axis(self, tmp_path):
        """Regression: two configurations with different manifest keys
        must derive different file paths — colliding on one file makes
        the second run crash with a key mismatch instead of
        checkpointing separately."""
        from repro.pipeline import SynthesisPipeline

        def pipeline(**overrides):
            settings = dict(
                core="ibex-dcache",
                attacker="cache-state",
                template="riscv-mem",
                solver="scipy-milp",
                generator="coverage",
                restriction=None,
                fastpath=True,
            )
            settings.update(overrides)
            built = (
                SynthesisPipeline()
                .core(settings["core"])
                .attacker(settings["attacker"])
                .template(settings["template"])
                .solver(settings["solver"])
                .generator(settings["generator"])
                .fastpath(settings["fastpath"])
                .budget(80, seed=1)
                .adaptive(rounds=2, batch=40)
                .cache_dir(str(tmp_path))
                .resume()
            )
            if settings["restriction"]:
                built.restrict(settings["restriction"])
            return built

        base_path = pipeline().adaptive_manifest_path()
        for overrides in (
            {"solver": "greedy"},
            {"restriction": "base"},
            {"fastpath": False},
            {"generator": "mutate"},
        ):
            assert pipeline(**overrides).adaptive_manifest_path() != base_path

    def test_rounds_budget_is_not_part_of_the_key(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        loop_a = _loop(path, rounds=1)
        loop_b = _loop(path, rounds=9)
        assert loop_a.manifest_key() == loop_b.manifest_key()


class TestFileRobustness:
    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        _loop(path, rounds=2).run()
        with open(path) as stream:
            intact_lines = stream.readlines()
        with open(path, "a") as stream:
            stream.write('{"round": 2, "start_id"')  # killed mid-append
        resumed = _loop(path).run()
        assert resumed.resumed_rounds == 2
        with open(path) as stream:
            recovered = stream.readlines()
        assert recovered[: len(intact_lines)] == intact_lines

    def test_corruption_before_the_final_line_raises(self, tmp_path):
        """Only a torn *final* line is recoverable (killed mid-append);
        corruption anywhere else is damage that must not be papered
        over — mirroring the shard-manifest rule."""
        path = tmp_path / "rounds.jsonl"
        loop = _loop(path, rounds=3)
        loop.run()
        with open(path) as stream:
            lines = stream.readlines()
        lines[1] = '{"round": 0, "start_id"\n'  # corrupt a middle entry
        with open(path, "w") as stream:
            stream.writelines(lines)
        with pytest.raises(ValueError, match="not valid JSON"):
            AdaptiveManifest(str(path), loop.manifest_key())

    def test_append_lands_cleanly_after_torn_recovery(self, tmp_path):
        """Recovery must rewrite the torn bytes away: otherwise the
        resuming run's append would concatenate onto the partial line
        and permanently corrupt the manifest.  An extension across the
        recovery proves appends land on a clean boundary."""
        path = tmp_path / "rounds.jsonl"
        _loop(path, rounds=2).run()
        with open(path, "a") as stream:
            stream.write('{"round": 2, "start_id"')  # killed mid-append
        extended = _loop(path, rounds=4).run()
        assert extended.resumed_rounds == 2
        assert extended.rounds_run == 4
        with open(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 1 + 4
        for line in lines:
            json.loads(line)  # every line is intact JSON again

    def test_gap_invalidates_later_rounds(self, tmp_path):
        """Rounds are only reusable as a contiguous prefix: each round's
        generation depends on the state its predecessor left."""
        path = tmp_path / "rounds.jsonl"
        loop = _loop(path)
        loop.run()
        with open(path) as stream:
            lines = stream.readlines()
        entries = [json.loads(line) for line in lines[1:]]
        with open(path, "w") as stream:
            stream.write(lines[0])
            for entry in entries:
                if entry["round"] != 1:  # drop round 1, keep 0, 2, 3
                    stream.write(json.dumps(entry) + "\n")
        manifest = AdaptiveManifest(str(path), loop.manifest_key())
        stored = manifest.stored_rounds()
        assert [entry["round"] for entry in stored] == [0]

    def test_manifest_file_lines_are_rounds(self, tmp_path):
        path = tmp_path / "rounds.jsonl"
        result = _loop(path).run()
        with open(path) as stream:
            lines = stream.read().splitlines()
        header = json.loads(lines[0])
        assert header["manifest"] == "adaptive-rounds"
        assert len(lines) == 1 + result.rounds_run
        entry = json.loads(lines[1])
        assert set(entry) == {
            "round",
            "start_id",
            "rows",
            "state",
            "contract",
            "fps",
            "stop",
        }
        assert os.path.getsize(path) > 0
