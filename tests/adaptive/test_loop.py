"""End-to-end tests for the adaptive synthesis loop.

The pinned scenario is ibex-dcache under the cache-state attacker on
the ``riscv-mem`` template (loads/stores only): its contract saturates
within a few hundred test cases, so the fixed-budget reference is
byte-stable and the adaptive loop must land on exactly the same
contract from measurably fewer evaluated cases.
"""

import pytest

from repro.adaptive import (
    STOPPING_REGISTRY,
    AdaptiveLoop,
    AdaptiveState,
    BudgetRule,
    ContractStableRule,
    FullCoverageRule,
    resolve_stopping_rules,
)
from repro.pipeline import SynthesisPipeline

pytestmark = pytest.mark.adaptive

#: The pinned convergence scenario (see module docstring).
CORE = "ibex-dcache"
ATTACKER = "cache-state"
TEMPLATE = "riscv-mem"
SEED = 7
FIXED_BUDGET = 1200


def _fixed_contract():
    result = (
        SynthesisPipeline()
        .core(CORE)
        .attacker(ATTACKER)
        .template(TEMPLATE)
        .budget(FIXED_BUDGET, seed=SEED)
        .run()
    )
    return tuple(sorted(result.contract.atom_ids)), result


class TestConvergence:
    """The issue's acceptance criterion."""

    def test_coverage_strategy_matches_fixed_budget_with_fewer_cases(self):
        fixed_atoms, fixed = _fixed_contract()
        assert len(fixed.dataset) == FIXED_BUDGET
        loop = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=12,
            batch=100,
            seed=SEED,
        )
        adaptive = loop.run()
        assert tuple(sorted(adaptive.contract.atom_ids)) == fixed_atoms
        # Measurably fewer: the loop stopped well before the fixed
        # budget (its own ceiling would have been 1200 as well).
        assert adaptive.total_cases <= FIXED_BUDGET - 300
        assert adaptive.stop_reason.startswith("contract stable")

    def test_random_strategy_converges_on_the_shared_stream(self):
        """`random` rounds are prefixes of the fixed corpus, so the
        stable contract equals the fixed-budget one by saturation."""
        fixed_atoms, _fixed = _fixed_contract()
        adaptive = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="random",
            rounds=12,
            batch=100,
            seed=SEED,
        ).run()
        assert tuple(sorted(adaptive.contract.atom_ids)) == fixed_atoms
        assert adaptive.total_cases < FIXED_BUDGET


class TestLegacyEquivalence:
    def test_one_random_round_reproduces_the_legacy_pipeline(self):
        """generator="random" with one round is byte-identical to the
        classic fixed-budget pipeline."""
        budget = 150
        legacy = (
            SynthesisPipeline()
            .core(CORE)
            .attacker(ATTACKER)
            .template(TEMPLATE)
            .budget(budget, seed=SEED)
            .run()
        )
        adaptive = (
            SynthesisPipeline()
            .core(CORE)
            .attacker(ATTACKER)
            .template(TEMPLATE)
            .budget(budget, seed=SEED)
            .adaptive(generator="random", rounds=1, batch=budget)
            .run()
        )
        assert len(adaptive.dataset) == len(legacy.dataset) == budget
        for a, b in zip(adaptive.dataset, legacy.dataset):
            assert a.test_id == b.test_id
            assert a.attacker_distinguishable == b.attacker_distinguishable
            assert a.distinguishing_atom_ids == b.distinguishing_atom_ids
            assert a.targeted_atom_id == b.targeted_atom_id
        assert adaptive.contract.atom_ids == legacy.contract.atom_ids
        assert adaptive.generator_name == "random"
        assert adaptive.adaptive is not None and legacy.adaptive is None

    def test_executor_rounds_match_in_process_rounds(self):
        """Round evaluation through the serial executor backend equals
        the in-process path (workers rebuild the strategy by name)."""
        kwargs = dict(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=3,
            batch=60,
            stop="budget",
            seed=3,
        )
        in_process = AdaptiveLoop(**kwargs).run()
        sharded = AdaptiveLoop(executor="serial", shard_size=25, **kwargs).run()
        assert len(sharded.dataset) == len(in_process.dataset)
        for a, b in zip(sharded.dataset, in_process.dataset):
            assert a.test_id == b.test_id
            assert a.distinguishing_atom_ids == b.distinguishing_atom_ids
        assert (
            sharded.synthesis.contract.atom_ids
            == in_process.synthesis.contract.atom_ids
        )


class TestStoppingRules:
    def _state(self, contracts, covered=frozenset(), targetable=frozenset()):
        return AdaptiveState(
            round_index=len(contracts) - 1,
            contracts=tuple(contracts),
            covered_atom_ids=frozenset(covered),
            targetable_atom_ids=frozenset(targetable),
            cumulative_cases=100,
            max_cases=1000,
        )

    def test_contract_stable_needs_patience_plus_one_rounds(self):
        rule = ContractStableRule(patience=2)
        assert rule.check(self._state([(1,), (1,)])) is None
        assert rule.check(self._state([(2,), (1,), (1,)])) is None
        assert rule.check(self._state([(1,), (1,), (1,)])) is not None

    def test_full_coverage_fires_only_when_complete(self):
        rule = FullCoverageRule()
        assert rule.check(self._state([()], covered={1}, targetable={1, 2})) is None
        assert (
            rule.check(self._state([()], covered={1, 2, 3}, targetable={1, 2}))
            is not None
        )

    def test_budget_rule_never_stops(self):
        assert BudgetRule().check(self._state([(1,), (1,), (1,)])) is None

    def test_registry_resolution(self):
        assert set(STOPPING_REGISTRY.names()) == {
            "budget",
            "contract-stable",
            "full-coverage",
        }
        rules = resolve_stopping_rules(["contract-stable", BudgetRule()])
        assert isinstance(rules[0], ContractStableRule)
        assert isinstance(rules[1], BudgetRule)
        assert resolve_stopping_rules(None) == ()
        with pytest.raises(TypeError):
            resolve_stopping_rules([42])

    def test_budget_rule_exhausts_all_rounds(self):
        result = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=4,
            batch=40,
            stop="budget",
            seed=SEED,
        ).run()
        assert result.rounds_run == 4
        assert result.stop_reason == "budget-exhausted"

    def test_full_coverage_stops_the_pinned_scenario(self):
        """Every riscv-mem atom is distinguished within a few rounds."""
        result = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=12,
            batch=100,
            stop="full-coverage",
            seed=SEED,
        ).run()
        assert result.stop_reason.startswith("full atom coverage")
        assert result.records[-1].atom_coverage == 1.0
        assert result.rounds_run < 12


class TestRoundRecords:
    def test_records_are_cumulative_and_monotonic(self):
        result = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=4,
            batch=50,
            stop="budget",
            seed=SEED,
        ).run()
        cumulative = [record.cumulative_cases for record in result.records]
        assert cumulative == [50, 100, 150, 200]
        coverage = [record.atom_coverage for record in result.records]
        assert coverage == sorted(coverage)  # coverage never shrinks
        assert [record.start_id for record in result.records] == [0, 50, 100, 150]
        assert result.records[-1].stop_reason == "budget-exhausted"

    def test_curves_track_records(self):
        result = AdaptiveLoop(
            core=CORE,
            template=TEMPLATE,
            attacker=ATTACKER,
            generator="coverage",
            rounds=3,
            batch=40,
            stop="budget",
            seed=SEED,
        ).run()
        by_label = {series.label: series for series in result.curves()}
        assert set(by_label) == {
            "atom-coverage",
            "contract-atoms",
            "false-positives",
        }
        assert by_label["atom-coverage"].xs == [40.0, 80.0, 120.0]
        assert by_label["contract-atoms"].ys[-1] == float(
            len(result.contract.atom_ids)
        )


class TestWarmStart:
    def test_zero_fp_warm_start_skips_the_solve(self):
        """A previous selection that still covers everything at zero FP
        weight is reused without a cold solve."""
        from repro.contracts.riscv_template import build_riscv_template
        from repro.evaluation.results import EvaluationDataset, TestCaseResult
        from repro.synthesis.synthesizer import ContractSynthesizer

        template = build_riscv_template()
        dataset = EvaluationDataset(
            [
                TestCaseResult(0, True, frozenset({1, 2})),
                TestCaseResult(1, False, frozenset({3})),
            ]
        )
        synthesizer = ContractSynthesizer(template)
        cold = synthesizer.synthesize(dataset)
        assert "warm_start" not in cold.solver_result.stats
        extended = EvaluationDataset(
            dataset.results + [TestCaseResult(2, True, frozenset({1, 5}))]
        )
        warm = synthesizer.synthesize(
            extended, warm_start=cold.contract.atom_ids
        )
        assert warm.solver_result.stats.get("warm_start")
        assert warm.solver_result.optimal
        assert warm.contract.atom_ids == cold.contract.atom_ids

    def test_uncovering_data_falls_back_to_a_cold_solve(self):
        from repro.contracts.riscv_template import build_riscv_template
        from repro.evaluation.results import EvaluationDataset, TestCaseResult
        from repro.synthesis.synthesizer import ContractSynthesizer

        template = build_riscv_template()
        dataset = EvaluationDataset([TestCaseResult(0, True, frozenset({1}))])
        synthesizer = ContractSynthesizer(template)
        first = synthesizer.synthesize(dataset)
        # A new distinguishable case the old contract cannot cover.
        extended = EvaluationDataset(
            dataset.results + [TestCaseResult(1, True, frozenset({9}))]
        )
        warm = synthesizer.synthesize(extended, warm_start=first.contract.atom_ids)
        assert "warm_start" not in warm.solver_result.stats
        assert warm.contract.atom_ids == frozenset({1, 9})
