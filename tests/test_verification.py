"""Tests for testing-based contract-satisfaction checking."""

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.template import Contract
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore
from repro.verification.checker import (
    check_contract_satisfaction,
    check_dataset_satisfaction,
)


@pytest.fixture(scope="module")
def template():
    return build_riscv_template()


@pytest.fixture(scope="module")
def synthesis_artifacts(template):
    generator = TestCaseGenerator(template, seed=55)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    dataset = evaluator.evaluate_many(generator.iter_generate(2000))
    contract = synthesize(dataset, template).contract
    return dataset, contract


def test_synthesized_contract_satisfied_on_its_dataset(synthesis_artifacts):
    dataset, contract = synthesis_artifacts
    report = check_dataset_satisfaction(contract, dataset)
    assert report.satisfied
    assert report.covered == report.attacker_distinguishable
    assert "SATISFIED" in report.render()


def test_synthesized_contract_mostly_satisfied_on_fresh_cases(
    template, synthesis_artifacts
):
    _dataset, contract = synthesis_artifacts
    report = check_contract_satisfaction(
        contract, IbexCore(), test_cases=500, seed=991
    )
    # Random testing may expose rare uncovered leaks (the paper's
    # sensitivity is 99.93%, not 100%), but the bulk must be covered.
    assert report.attacker_distinguishable > 0
    assert report.covered >= 0.8 * report.attacker_distinguishable


def test_empty_contract_violated(template):
    empty = Contract(template, [])
    report = check_contract_satisfaction(
        empty, IbexCore(), test_cases=200, seed=3, max_violations=5
    )
    assert not report.satisfied
    assert len(report.violations) == 5  # stops at max_violations
    assert report.covered == 0
    text = report.render()
    assert "VIOLATED" in text


def test_violation_names_candidate_atoms(template):
    empty = Contract(template, [])
    report = check_contract_satisfaction(
        empty, IbexCore(), test_cases=300, seed=3, max_violations=1
    )
    assert report.violations
    violation = report.violations[0]
    assert violation.distinguishing_atom_names
    assert all(":" in name for name in violation.distinguishing_atom_names)


def test_wrong_core_contract_detected(template, synthesis_artifacts):
    """A contract synthesized for a barrel-shifter Ibex variant misses
    the serial-shifter leak of the default configuration."""
    from repro.uarch.ibex import IbexConfig

    generator = TestCaseGenerator(template, seed=56)
    safe_core = IbexCore(IbexConfig(shifter_step=32))
    evaluator = TestCaseEvaluator(safe_core, template)
    dataset = evaluator.evaluate_many(generator.iter_generate(1500))
    shiftless_contract = synthesize(dataset, template).contract

    report = check_contract_satisfaction(
        shiftless_contract, IbexCore(), test_cases=1500, seed=777
    )
    assert not report.satisfied
    witnessed = {
        name
        for violation in report.violations
        for name in violation.distinguishing_atom_names
    }
    # The witnesses point at the shift-amount leakage.
    assert any(
        name.startswith(("sll", "srl", "sra", "slli", "srli", "srai"))
        for name in witnessed
    )
