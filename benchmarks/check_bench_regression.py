#!/usr/bin/env python
"""Fail CI when a fast-path benchmark speedup regresses.

Compares the ``speedups_vs_reference`` sections of two
``BENCH_micro.json`` documents — the committed baseline and a freshly
exported measurement — and exits non-zero if any speedup fell by more
than the allowed fraction (default 25%).  Absolute timings vary across
runners, but the fast-path-vs-reference *ratio* is measured within one
process on one machine, so a large drop means the fast path itself got
slower relative to the oracle, not that CI got a noisy VM.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json FRESH.json \
        --max-regression 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def find_regressions(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    max_regression: float,
) -> List[str]:
    """Human-readable descriptions of every disallowed regression.

    A benchmark regresses when its fresh speedup is below
    ``baseline * (1 - max_regression)``; a paired benchmark missing
    from the fresh export counts as a regression (the pair was renamed
    or silently dropped — either way the gate must not go green).
    Benchmarks new in the fresh export are ignored: they have no
    baseline to regress from.
    """
    problems = []
    for name, baseline_speedup in sorted(baseline.items()):
        fresh_speedup = fresh.get(name)
        if fresh_speedup is None:
            problems.append(
                "%s: present in the baseline (%.2fx) but missing from the "
                "fresh export" % (name, baseline_speedup)
            )
            continue
        floor = baseline_speedup * (1.0 - max_regression)
        if fresh_speedup < floor:
            problems.append(
                "%s: speedup %.2fx fell below %.2fx (baseline %.2fx - %d%%)"
                % (
                    name,
                    fresh_speedup,
                    floor,
                    baseline_speedup,
                    round(max_regression * 100),
                )
            )
    return problems


def _load_speedups(path: str) -> Dict[str, float]:
    with open(path) as stream:
        document = json.load(stream)
    return dict(document.get("speedups_vs_reference", {}))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_micro.json")
    parser.add_argument("fresh", help="freshly exported BENCH_micro.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed fractional speedup drop before failing (default: 0.25)",
    )
    arguments = parser.parse_args(argv)
    baseline = _load_speedups(arguments.baseline)
    fresh = _load_speedups(arguments.fresh)
    if not baseline:
        print("baseline has no speedups_vs_reference section; nothing to gate")
        return 0

    for name, baseline_speedup in sorted(baseline.items()):
        fresh_speedup = fresh.get(name)
        print(
            "%s: baseline %.2fx, fresh %s"
            % (
                name,
                baseline_speedup,
                "%.2fx" % fresh_speedup if fresh_speedup is not None else "MISSING",
            )
        )
    problems = find_regressions(baseline, fresh, arguments.max_regression)
    if problems:
        print()
        for problem in problems:
            print("REGRESSION - %s" % problem)
        return 1
    print("no speedup regressed by more than %d%%" % round(arguments.max_regression * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
