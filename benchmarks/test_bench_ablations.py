"""Ablation benchmarks for the design choices called out in DESIGN.md.

- **Solver backend**: exact MILP vs pure-Python branch & bound vs the
  greedy set-cover heuristic — cost and objective quality.
- **Attacker model**: full retirement-timing attacker vs a weaker
  total-time attacker — how the attacker changes the contract.
- **Microarchitecture knobs**: replacing the serial shifter with a
  barrel shifter removes the corresponding contract atoms.
"""

import pytest

from repro.attacker.retirement import TotalTimeAttacker
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.synthesis.ilp import build_ilp_instance
from repro.synthesis.solvers import (
    BranchAndBoundSolver,
    GreedySolver,
    ScipyMilpSolver,
)
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexConfig, IbexCore


@pytest.fixture(scope="module")
def ibex_dataset(template):
    generator = TestCaseGenerator(template, seed=5)
    evaluator = TestCaseEvaluator(IbexCore(), template)
    return evaluator.evaluate_many(generator.iter_generate(600))


@pytest.fixture(scope="module")
def ibex_instance(ibex_dataset):
    return build_ilp_instance(ibex_dataset)


class TestSolverAblation:
    def test_bench_solver_scipy(self, benchmark, ibex_instance):
        result = benchmark.pedantic(
            ScipyMilpSolver().solve, args=(ibex_instance,), rounds=1, iterations=1
        )
        assert result.optimal
        print("\nscipy-milp: FPs=%d atoms=%d"
              % (result.false_positives, len(result.selected_atom_ids)))

    def test_bench_solver_branch_and_bound(self, benchmark, ibex_instance):
        solver = BranchAndBoundSolver(node_limit=200_000)
        result = benchmark.pedantic(
            solver.solve, args=(ibex_instance,), rounds=1, iterations=1
        )
        print("\nbranch-and-bound: FPs=%d atoms=%d optimal=%s nodes=%d"
              % (result.false_positives, len(result.selected_atom_ids),
                 result.optimal, result.stats["nodes"]))
        exact = ScipyMilpSolver().solve(ibex_instance)
        assert result.false_positives >= exact.false_positives

    def test_bench_solver_greedy(self, benchmark, ibex_instance):
        result = benchmark.pedantic(
            GreedySolver().solve, args=(ibex_instance,), rounds=1, iterations=1
        )
        exact = ScipyMilpSolver().solve(ibex_instance)
        print("\ngreedy: FPs=%d vs optimal %d"
              % (result.false_positives, exact.false_positives))
        # The heuristic is feasible and close, but not better than exact.
        assert result.false_positives >= exact.false_positives


class TestAttackerAblation:
    def test_bench_weaker_attacker_coarser_contract(
        self, benchmark, template, ibex_dataset
    ):
        """A total-time attacker sees strictly less: fewer test cases
        are distinguishable, so the synthesized contract shrinks."""
        generator = TestCaseGenerator(template, seed=5)

        def run():
            weak_evaluator = TestCaseEvaluator(
                IbexCore(), template, attacker=TotalTimeAttacker()
            )
            weak_dataset = weak_evaluator.evaluate_many(
                generator.iter_generate(600)
            )
            return weak_dataset

        weak_dataset = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(weak_dataset.distinguishable) <= len(
            ibex_dataset.distinguishable
        )
        weak_contract = synthesize(weak_dataset, template).contract
        strong_contract = synthesize(ibex_dataset, template).contract
        print("\nweak attacker: %d dist cases, %d atoms; "
              "strong attacker: %d dist cases, %d atoms"
              % (len(weak_dataset.distinguishable), len(weak_contract),
                 len(ibex_dataset.distinguishable), len(strong_contract)))
        assert len(weak_contract) <= len(strong_contract)


class TestTemplateRefinementAblation:
    def test_bench_zero_value_refinement_on_cva6(self, benchmark):
        """§III-E refinement: IS_ZERO_* atoms sharpen the zero-skip
        multiplier leak; the refined contract must not lose precision
        and should select the finer atoms."""
        from repro.contracts.riscv_template import build_riscv_template
        from repro.synthesis.metrics import evaluate_contract
        from repro.uarch.cva6 import CVA6Core

        refined_template = build_riscv_template(zero_value_atoms=True)

        def run():
            generator = TestCaseGenerator(refined_template, seed=71)
            evaluator = TestCaseEvaluator(CVA6Core(), refined_template)
            synthesis_set = evaluator.evaluate_many(generator.iter_generate(800))
            held_out = TestCaseEvaluator(CVA6Core(), refined_template).evaluate_many(
                TestCaseGenerator(refined_template, seed=72).iter_generate(1200)
            )
            base_ids = frozenset(
                atom.atom_id
                for atom in refined_template
                if not atom.source.startswith("IS_ZERO")
            )
            base = synthesize(
                synthesis_set, refined_template, allowed_atom_ids=base_ids
            ).contract
            refined = synthesize(synthesis_set, refined_template).contract
            return (
                evaluate_contract(base, held_out).precision,
                evaluate_contract(refined, held_out).precision,
                refined,
            )

        base_precision, refined_precision, refined = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(
            "\nbase precision %.3f -> refined precision %.3f"
            % (base_precision, refined_precision)
        )
        assert refined_precision >= base_precision - 0.02
        assert any(atom.source.startswith("IS_ZERO") for atom in refined.atoms)


class TestMicroarchitectureAblation:
    def test_bench_compressed_fetch_surfaces_il_atoms(self, benchmark, template):
        """RV32IMC fetch: encoding fields become timing-relevant and
        the contract gains instruction-leakage atoms."""
        from repro.contracts.atoms import LeakageFamily

        generator = TestCaseGenerator(template, seed=5)

        def run():
            core = IbexCore(IbexConfig(compressed_fetch=True))
            evaluator = TestCaseEvaluator(core, template)
            dataset = evaluator.evaluate_many(generator.iter_generate(600))
            return synthesize(dataset, template).contract

        contract = benchmark.pedantic(run, rounds=1, iterations=1)
        il_atoms = [a for a in contract.atoms if a.family is LeakageFamily.IL]
        print("\ncompressed-fetch contract: %d atoms, %d IL atoms"
              % (len(contract), len(il_atoms)))
        assert il_atoms

    def test_bench_dcache_surfaces_address_leakage(self, benchmark):
        """A data cache creates reuse-dependent timing: a focused
        memory-subsystem audit (template restricted to loads/stores)
        finds more attacker-distinguishable cases than the cache-less
        core and must expose address information on loads — the
        paper's motivating example ('expose the addresses of memory
        instructions to capture data-cache leaks')."""
        from repro.contracts.riscv_template import build_riscv_template
        from repro.isa.instructions import InstructionCategory, OPCODE_INFO

        memory_opcodes = [
            opcode
            for opcode, info in OPCODE_INFO.items()
            if info.category in (InstructionCategory.LOAD, InstructionCategory.STORE)
        ]
        memory_template = build_riscv_template(
            opcodes=memory_opcodes, name="memory-audit"
        )

        def evaluate(config):
            generator = TestCaseGenerator(memory_template, seed=5)
            evaluator = TestCaseEvaluator(IbexCore(config), memory_template)
            return evaluator.evaluate_many(generator.iter_generate(600))

        def run():
            baseline = evaluate(IbexConfig())
            cached = evaluate(IbexConfig(dcache=True))
            contract = synthesize(cached, memory_template).contract
            return baseline, cached, contract

        baseline, cached, contract = benchmark.pedantic(run, rounds=1, iterations=1)
        address_atoms = sorted(
            atom.name
            for atom in contract.atoms
            if atom.source in ("MEM_R_ADDR", "REG_RS1")
            and atom.opcode.value.startswith("l")
        )
        print(
            "\ndistinguishable: %d (no cache) -> %d (dcache); "
            "address atoms on loads: %s"
            % (len(baseline.distinguishable), len(cached.distinguishable), address_atoms)
        )
        # The cache makes strictly more behaviour attacker-visible ...
        assert len(cached.distinguishable) > len(baseline.distinguishable)
        # ... and the contract must reveal load addresses to cover it.
        assert address_atoms

    def test_bench_barrel_shifter_removes_shift_atoms(
        self, benchmark, template
    ):
        """With a barrel shifter the shift-amount leak disappears and
        the synthesized contract no longer needs shift-IMM atoms."""
        generator = TestCaseGenerator(template, seed=5)

        def run():
            core = IbexCore(IbexConfig(shifter_step=32))
            evaluator = TestCaseEvaluator(core, template)
            dataset = evaluator.evaluate_many(generator.iter_generate(600))
            return synthesize(dataset, template).contract

        contract = benchmark.pedantic(run, rounds=1, iterations=1)
        shift_imm_atoms = [
            atom for atom in contract.atoms
            if atom.source == "IMM"
            and atom.opcode.value in ("slli", "srli", "srai")
        ]
        print("\nbarrel-shifter contract: %d atoms, %d shift-IMM atoms"
              % (len(contract), len(shift_imm_atoms)))
        assert not shift_imm_atoms
