"""Benchmark: regenerate Figure 2 (precision vs synthesis-set size,
per template refinement) and assert its shape."""

from repro.experiments.fig2 import run_fig2


def test_bench_fig2_precision_curves(benchmark, bench_config):
    result = benchmark.pedantic(
        run_fig2, args=(bench_config,), rounds=1, iterations=1
    )

    # One curve per cumulative template refinement, base first.
    labels = [series.label for series in result.series]
    assert labels == [
        "IL+RL+ML",
        "IL+RL+ML+AL",
        "IL+RL+ML+AL+BL",
        "IL+RL+ML+AL+BL+DL",
    ]

    print("\n" + result.render())
    finals = {
        series.label: series.points[-1][1] for series in result.series
    }
    for label, value in finals.items():
        print("final precision %-22s %s"
              % (label, "n/a" if value is None else "%.3f" % value))

    # Paper shape: the refined templates improve precision, and the
    # full template (with DL) gives the largest gain.
    assert finals["IL+RL+ML+AL+BL+DL"] is not None
    assert finals["IL+RL+ML"] is not None
    assert finals["IL+RL+ML+AL+BL+DL"] >= finals["IL+RL+ML+AL+BL"]
    assert finals["IL+RL+ML+AL+BL+DL"] > finals["IL+RL+ML"]
