"""Benchmark: regenerate Table III (toolchain runtime breakdown) and
check the paper's qualitative shape (CVA6 ≫ Ibex in simulation)."""

from repro.experiments.table3 import run_table3


def test_bench_table3_runtime(benchmark, bench_config):
    result = benchmark.pedantic(
        run_table3,
        args=(bench_config,),
        kwargs={"test_cases": max(200, bench_config.synthesis_test_cases // 5)},
        rounds=1,
        iterations=1,
    )

    print("\n" + result.render())

    ibex = result.column("ibex")
    cva6 = result.column("cva6")
    # The paper's Table III shape: per-test-case simulation on CVA6
    # costs much more than on Ibex (0.2 s vs 88 s there), while
    # contract computation is comparable between the cores.
    assert cva6.simulation_per_test_case > ibex.simulation_per_test_case
    for timing in (ibex, cva6):
        assert timing.compilation_seconds >= 0
        assert timing.extraction_per_test_case > 0
        assert timing.overall_seconds >= (
            timing.contract_computation_seconds
        )
