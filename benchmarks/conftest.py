"""Shared fixtures for the benchmark harness.

All experiment benchmarks share one :class:`ExperimentConfig` (and its
dataset cache), so each core's test-case corpus is simulated once per
benchmark session; the budgets scale with ``REPRO_SCALE`` like the
experiment CLI.
"""

import os

import pytest

from repro.contracts.riscv_template import build_riscv_template
from repro.experiments.config import ExperimentConfig


def _bench_scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def bench_config(tmp_path_factory):
    """Benchmark-sized experiment configuration with a shared cache."""
    results_dir = str(tmp_path_factory.mktemp("bench-results"))
    return ExperimentConfig(
        scale=_bench_scale(),
        synthesis_test_cases=1500,
        evaluation_test_cases=4000,
        cva6_synthesis_test_cases=1000,
        results_dir=results_dir,
    )


@pytest.fixture(scope="session")
def template():
    return build_riscv_template()
