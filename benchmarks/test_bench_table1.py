"""Benchmark: regenerate Table I (the synthesized Ibex contract) and
check the paper's headline findings."""

from repro.contracts.atoms import LeakageFamily
from repro.experiments.contract_tables import run_table1
from repro.isa.instructions import InstructionCategory
from repro.reporting.tables import CellMarker


def test_bench_table1_ibex_contract(benchmark, bench_config):
    result = benchmark.pedantic(
        run_table1, args=(bench_config,), rounds=1, iterations=1
    )

    print("\n" + result.render())

    grid = result.grid
    # Headline finding 1: the Ibex core leaks whether memory accesses
    # are aligned — on loads, not on stores.
    assert grid[(InstructionCategory.LOAD, LeakageFamily.AL)] in (
        CellMarker.FULL,
        CellMarker.PARTIAL,
    )
    assert grid[(InstructionCategory.STORE, LeakageFamily.AL)] is CellMarker.NONE
    # Headline finding 2: branch timing depends on the outcome even
    # with identical targets.
    assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] in (
        CellMarker.FULL,
        CellMarker.PARTIAL,
    )
    # No memory-value leakage anywhere on Ibex.
    assert grid[(InstructionCategory.LOAD, LeakageFamily.ML)] is CellMarker.NONE
    assert grid[(InstructionCategory.STORE, LeakageFamily.ML)] is CellMarker.NONE
    # Division leaks operand values (early-exit divider).
    assert grid[(InstructionCategory.DIVISION, LeakageFamily.RL)] in (
        CellMarker.FULL,
        CellMarker.PARTIAL,
    )
    # Overall agreement with the paper's table.
    assert result.agreement_ratio >= 0.6
    assert result.atom_count >= 10
