"""Micro-benchmarks of the toolchain's hot paths.

These are conventional pytest-benchmark measurements (many rounds) of
the per-component costs that dominate the end-to-end experiments:
core simulation, atom extraction, test-case generation, and template
construction.
"""

import random

import pytest

from repro.contracts.compiled import compile_template
from repro.contracts.observations import (
    distinguishing_atoms,
    distinguishing_atoms_reference,
)
from repro.contracts.riscv_template import build_riscv_template
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.isa.state import ArchState
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore

_PROGRAM = """
    addi x1, x0, 0x102
    lw   x2, 0(x1)
    sw   x1, 2(x1)
    slli x3, x1, 9
    mul  x4, x3, x1
    div  x5, x4, x1
    beq  x5, x5, 4
    add  x6, x5, x4
    sub  x7, x6, x3
    and  x8, x7, x1
"""


@pytest.fixture(scope="module")
def program():
    return assemble(_PROGRAM)


@pytest.fixture(scope="module")
def test_case(template):
    generator = TestCaseGenerator(template, seed=1)
    return generator.generate(1)[0]


def test_bench_isa_executor(benchmark, program):
    def run():
        state = ArchState(pc=program.base_address)
        return execute_program(program, state)

    records = benchmark(run)
    assert len(records) == 10


def test_bench_ibex_simulation(benchmark, program):
    core = IbexCore()
    result = benchmark(core.simulate, program)
    assert result.retired_instructions == 10


def test_bench_cva6_simulation(benchmark, program):
    core = CVA6Core()
    result = benchmark(core.simulate, program)
    assert result.retired_instructions == 10


def test_bench_atom_extraction(benchmark, template, test_case):
    records_a = execute_program(
        test_case.program_a, test_case.initial_state.copy()
    )
    records_b = execute_program(
        test_case.program_b, test_case.initial_state.copy()
    )
    atoms = benchmark(distinguishing_atoms, template, records_a, records_b)
    assert isinstance(atoms, frozenset)


def test_bench_atom_extraction_reference(benchmark, template, test_case):
    """Reference (closure-per-atom) path — paired with
    ``test_bench_atom_extraction`` to measure the fast-path speedup."""
    records_a = execute_program(
        test_case.program_a, test_case.initial_state.copy()
    )
    records_b = execute_program(
        test_case.program_b, test_case.initial_state.copy()
    )
    atoms = benchmark(
        distinguishing_atoms_reference, template, records_a, records_b
    )
    assert isinstance(atoms, frozenset)


def test_bench_atom_extraction_fastpath_matches_reference(template, test_case):
    """Not a benchmark: pins the pairing of the two benchmarks above."""
    records_a = execute_program(
        test_case.program_a, test_case.initial_state.copy()
    )
    records_b = execute_program(
        test_case.program_b, test_case.initial_state.copy()
    )
    fast = compile_template(template).distinguishing_atoms(records_a, records_b)
    assert fast == distinguishing_atoms_reference(template, records_a, records_b)


def test_bench_test_case_generation(benchmark, template):
    generator = TestCaseGenerator(template, seed=9)
    counter = [0]

    def generate():
        counter[0] += 1
        return generator.generate(10, start_id=counter[0] * 10)

    cases = benchmark(generate)
    assert len(cases) == 10


def test_bench_template_construction(benchmark):
    template = benchmark(build_riscv_template)
    assert len(template) == 892


#: The pinned end-to-end corpus: generated once outside every timed
#: region so both sides of each pair evaluate the identical workload.
#: Sized to the evaluator's DEFAULT_BATCH_SIZE — the columnar engine's
#: intended operating width.
_E2E_COUNT = 256
_E2E_SEED = 17


@pytest.fixture(scope="module")
def e2e_corpus(template):
    generator = TestCaseGenerator(template, seed=_E2E_SEED)
    rng = random.Random(0)
    atoms = list(template)
    return [
        generator.generate_for_atom(
            atoms[rng.randrange(len(atoms))], test_id, rng
        )
        for test_id in range(_E2E_COUNT)
    ]


def test_bench_end_to_end_test_case(benchmark, template, e2e_corpus):
    """Full evaluation of the pinned corpus through the batched
    columnar engine (``use_fastpath="batch"``) — paired with
    ``test_bench_end_to_end_test_case_reference`` to measure the
    end-to-end speedup over the interpreter oracle."""
    from repro.evaluation.evaluator import TestCaseEvaluator

    evaluator = TestCaseEvaluator(IbexCore(), template, use_fastpath="batch")
    results = benchmark(evaluator.evaluate_batch, e2e_corpus)
    assert len(results) == _E2E_COUNT


def test_bench_end_to_end_test_case_reference(benchmark, template, e2e_corpus):
    """The same corpus through the per-case interpreter path — paired
    with ``test_bench_end_to_end_test_case`` to measure the speedup."""
    from repro.evaluation.evaluator import TestCaseEvaluator

    evaluator = TestCaseEvaluator(IbexCore(), template, use_fastpath=False)

    def evaluate_all():
        return [evaluator.evaluate(case) for case in e2e_corpus]

    results = benchmark(evaluate_all)
    assert len(results) == _E2E_COUNT


def test_bench_end_to_end_batch_matches_reference(template, e2e_corpus):
    """Not a benchmark: pins the pairing of the two benchmarks above —
    identical corpus, byte-identical results."""
    from repro.evaluation.evaluator import TestCaseEvaluator
    from repro.evaluation.results import EvaluationDataset

    batch = TestCaseEvaluator(IbexCore(), template, use_fastpath="batch")
    reference = TestCaseEvaluator(IbexCore(), template, use_fastpath=False)
    batched = EvaluationDataset(batch.evaluate_batch(e2e_corpus))
    scalar = EvaluationDataset([reference.evaluate(c) for c in e2e_corpus])
    assert batched.to_json() == scalar.to_json()


def _pair_lanes(corpus):
    """Both programs of every test case — the lanes the evaluator runs."""
    programs = [case.program_a for case in corpus]
    programs += [case.program_b for case in corpus]
    states = [case.initial_state for case in corpus] * 2
    return programs, states


def _bench_batch_simulation(benchmark, core, corpus):
    """Time the columnar engine in the form the batched evaluator
    consumes: one ``run_batch`` plus the attacker-sufficient lane views
    (full ``SimulationResult`` materialization is the scalar-compat
    path, not how the pipeline reads batches)."""
    from repro.batchsim.simulate import run_batch

    programs, states = _pair_lanes(corpus)

    def simulate_batch():
        simulation = run_batch(core, programs, states)
        return [simulation.view(lane) for lane in range(len(programs))]

    views = benchmark(simulate_batch)
    assert len(views) == 2 * _E2E_COUNT


def _bench_scalar_simulation(benchmark, core, corpus):
    """The same lanes through sequential ``Core.simulate`` calls."""
    programs, states = _pair_lanes(corpus)

    def simulate_all():
        return [
            core.simulate(program, state)
            for program, state in zip(programs, states)
        ]

    results = benchmark(simulate_all)
    assert len(results) == 2 * _E2E_COUNT


def test_bench_batch_ibex_simulation(benchmark, e2e_corpus):
    """Corpus pair lanes through the columnar engine on ibex — paired
    with ``test_bench_batch_ibex_simulation_reference`` to measure the
    engine's simulation-only speedup."""
    _bench_batch_simulation(benchmark, IbexCore(), e2e_corpus)


def test_bench_batch_ibex_simulation_reference(benchmark, e2e_corpus):
    _bench_scalar_simulation(benchmark, IbexCore(), e2e_corpus)


def test_bench_batch_cva6_simulation(benchmark, e2e_corpus):
    """The CVA6 twin of ``test_bench_batch_ibex_simulation``."""
    _bench_batch_simulation(benchmark, CVA6Core(), e2e_corpus)


def test_bench_batch_cva6_simulation_reference(benchmark, e2e_corpus):
    _bench_scalar_simulation(benchmark, CVA6Core(), e2e_corpus)


#: The pinned adaptive-convergence scenario: the riscv-mem contract on
#: ibex-dcache under the cache-state attacker saturates within a few
#: hundred cases, so convergence is deterministic.
_ADAPTIVE_SCENARIO = dict(core="ibex-dcache", attacker="cache-state")
_ADAPTIVE_TEMPLATE = "riscv-mem"
_ADAPTIVE_SEED = 7
_ADAPTIVE_ROUNDS = 12
_ADAPTIVE_BATCH = 60


def test_bench_adaptive_convergence(benchmark):
    """The coverage-guided loop run to convergence — paired with
    ``test_bench_adaptive_convergence_reference`` (the fixed-budget run
    at the loop's case ceiling).  The adaptive win is *cases to
    converge* (deterministic; recorded in ``extra_info``); the wall
    time additionally carries the per-round solver overhead, so the
    paired "speedup" may sit below 1.0 at this tiny scale where
    simulation is cheap."""
    from repro.adaptive import AdaptiveLoop

    def run_loop():
        return AdaptiveLoop(
            template=_ADAPTIVE_TEMPLATE,
            generator="coverage",
            rounds=_ADAPTIVE_ROUNDS,
            batch=_ADAPTIVE_BATCH,
            seed=_ADAPTIVE_SEED,
            **_ADAPTIVE_SCENARIO,
        ).run()

    result = benchmark(run_loop)
    benchmark.extra_info["cases_to_converge"] = result.total_cases
    assert result.stop_reason.startswith("contract stable")


def test_bench_adaptive_convergence_reference(benchmark):
    """The fixed-budget pipeline at the adaptive loop's case ceiling."""
    from repro.pipeline import SynthesisPipeline

    def run_fixed():
        return (
            SynthesisPipeline()
            .core(_ADAPTIVE_SCENARIO["core"])
            .attacker(_ADAPTIVE_SCENARIO["attacker"])
            .template(_ADAPTIVE_TEMPLATE)
            .budget(_ADAPTIVE_ROUNDS * _ADAPTIVE_BATCH, seed=_ADAPTIVE_SEED)
            .verify(0)
            .run()
        )

    result = benchmark(run_fixed)
    benchmark.extra_info["cases_to_converge"] = len(result.dataset)


def test_bench_adaptive_matches_fixed_with_fewer_cases():
    """Not a benchmark: pins the pairing of the two benchmarks above —
    same contract, measurably fewer evaluated cases."""
    from repro.adaptive import AdaptiveLoop
    from repro.pipeline import SynthesisPipeline

    adaptive = AdaptiveLoop(
        template=_ADAPTIVE_TEMPLATE,
        generator="coverage",
        rounds=_ADAPTIVE_ROUNDS,
        batch=_ADAPTIVE_BATCH,
        seed=_ADAPTIVE_SEED,
        **_ADAPTIVE_SCENARIO,
    ).run()
    fixed = (
        SynthesisPipeline()
        .core(_ADAPTIVE_SCENARIO["core"])
        .attacker(_ADAPTIVE_SCENARIO["attacker"])
        .template(_ADAPTIVE_TEMPLATE)
        .budget(_ADAPTIVE_ROUNDS * _ADAPTIVE_BATCH, seed=_ADAPTIVE_SEED)
        .verify(0)
        .run()
    )
    assert adaptive.contract.atom_ids == fixed.contract.atom_ids
    assert adaptive.total_cases < len(fixed.dataset)


#: The pinned workqueue-overhead corpus: small enough that evaluation
#: itself is cheap, so the paired ratio is dominated by what we want to
#: see — queue bookkeeping (enqueue, claim protocol, polling, result
#: files) plus worker startup.
_WORKQUEUE_COUNT = 60
_WORKQUEUE_SEED = 11
_WORKQUEUE_SHARD = 15


@pytest.fixture(scope="module")
def workqueue_reference_json():
    from repro.evaluation.parallel import evaluate_parallel

    dataset = evaluate_parallel(
        "ibex",
        _WORKQUEUE_COUNT,
        seed=_WORKQUEUE_SEED,
        shard_size=_WORKQUEUE_SHARD,
        executor="serial",
    )
    return dataset.to_json()


def test_bench_workqueue_overhead(benchmark, tmp_path, workqueue_reference_json):
    """The distributed work queue with embedded workers on a tiny fixed
    corpus — paired with ``test_bench_workqueue_overhead_reference``
    (serial on the identical workload).  The ratio is *overhead*, not a
    speedup: it prices the queue's claim/lease/result machinery against
    the bare evaluation loop, so it is reported informationally and
    never gated.  One round only: budget-free job ids would serve any
    repeat from the first round's results and measure nothing."""
    from repro.evaluation.parallel import evaluate_parallel
    from repro.service.workqueue import WorkQueueExecutor

    def run_workqueue():
        return evaluate_parallel(
            "ibex",
            _WORKQUEUE_COUNT,
            seed=_WORKQUEUE_SEED,
            shard_size=_WORKQUEUE_SHARD,
            executor=WorkQueueExecutor(
                queue_dir=str(tmp_path / "queue"),
                embedded_workers=2,
                poll_seconds=0.01,
                wait_for_workers=15.0,
            ),
        )

    dataset = benchmark.pedantic(run_workqueue, rounds=1, iterations=1)
    assert dataset.to_json() == workqueue_reference_json


def test_bench_workqueue_overhead_reference(
    benchmark, workqueue_reference_json
):
    """The serial executor on the workqueue benchmark's exact workload."""
    from repro.evaluation.parallel import evaluate_parallel

    def run_serial():
        return evaluate_parallel(
            "ibex",
            _WORKQUEUE_COUNT,
            seed=_WORKQUEUE_SEED,
            shard_size=_WORKQUEUE_SHARD,
            executor="serial",
        )

    dataset = benchmark.pedantic(run_serial, rounds=1, iterations=1)
    assert dataset.to_json() == workqueue_reference_json
