"""Benchmark: regenerate Figure 3 (sensitivity vs synthesis-set size,
logarithmic x-axis) and assert its shape."""

from repro.experiments.fig3 import run_fig3


def test_bench_fig3_sensitivity_curve(benchmark, bench_config):
    result = benchmark.pedantic(
        run_fig3, args=(bench_config,), rounds=1, iterations=1
    )

    print("\n" + result.render())

    values = [y for _x, y in result.series.points if y is not None]
    assert values
    # Paper shape: rapid initial rise, then saturation toward 1
    # (99.93% at the paper's 2M-case budget).
    assert result.final_sensitivity >= 0.75
    assert values[0] < 0.5 * result.final_sensitivity
    # Saturation: the last two prefix points are close to each other.
    if len(values) >= 2:
        assert abs(values[-1] - values[-2]) < 0.15
