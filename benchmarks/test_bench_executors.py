"""Benchmark: the evaluation executor backends against one another.

One round per backend over the same shard plan (the corpus scales with
``REPRO_SCALE`` like the experiment suites), asserting the determinism
contract on the way: every backend's dataset is byte-identical.

On multi-core hardware the process backends should approach linear
speedup over ``serial``; on a single-core CI runner they mostly
measure their own dispatch overhead — either way the relative numbers
land in the benchmark table, so executor regressions are visible.
"""

import pytest

from repro.evaluation.backends import EXECUTOR_REGISTRY
from repro.evaluation.parallel import evaluate_parallel

_SEED = 11


@pytest.fixture(scope="module")
def corpus_size(bench_config):
    return max(40, int(200 * bench_config.scale))


@pytest.fixture(scope="module")
def reference_json(corpus_size):
    dataset = evaluate_parallel(
        "ibex", corpus_size, seed=_SEED, executor="serial", shard_size=50
    )
    return dataset.to_json()


@pytest.mark.parametrize(
    "name",
    [
        # External backends (workqueue) need broker/worker infrastructure;
        # their overhead is measured by the dedicated paired benchmark.
        name
        for name in EXECUTOR_REGISTRY.names()
        if not getattr(EXECUTOR_REGISTRY.get(name), "external", False)
    ],
)
def test_bench_executor_backend(benchmark, name, corpus_size, reference_json):
    dataset = benchmark.pedantic(
        evaluate_parallel,
        args=("ibex", corpus_size),
        kwargs={
            "seed": _SEED,
            "processes": 2,
            "shard_size": 50,
            "executor": name,
        },
        rounds=1,
        iterations=1,
    )
    assert len(dataset) == corpus_size
    assert dataset.to_json() == reference_json
