#!/usr/bin/env python
"""Export the micro-benchmark suite to ``BENCH_micro.json``.

Runs ``benchmarks/test_bench_micro.py`` under pytest-benchmark, distills
the raw report into a compact, diff-friendly summary, and writes it to
``BENCH_micro.json`` at the repository root so the performance
trajectory is tracked across PRs (commit the file as evidence).

Usage::

    PYTHONPATH=src python benchmarks/export_bench.py          # full suite
    PYTHONPATH=src python benchmarks/export_bench.py -k atom  # subset

Fast-path benchmarks are paired with their ``*_reference`` twins; the
summary includes the resulting speedups so regressions are visible in
the JSON diff without re-deriving them.  ``REPRO_SCALE`` (consumed by
``benchmarks/conftest.py`` for the experiment-level suites) is recorded
for reproducibility; the micro suite itself is scale-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_micro.json")

#: fast-path benchmark -> paired reference benchmark.  These ratios sit
#: under the CI regression gate: both sides run the *same* workload, so
#: the ratio is machine-insensitive and a drop means a real regression.
PAIRED_BENCHMARKS = {
    "test_bench_atom_extraction": "test_bench_atom_extraction_reference",
    "test_bench_end_to_end_test_case": "test_bench_end_to_end_test_case_reference",
    "test_bench_batch_ibex_simulation": (
        "test_bench_batch_ibex_simulation_reference"
    ),
    "test_bench_batch_cva6_simulation": (
        "test_bench_batch_cva6_simulation_reference"
    ),
}

#: Cross-algorithm pairs reported for context but NOT gated: the
#: adaptive/fixed ratio mixes per-round MILP solver time against
#: simulation time, so it shifts with the runner's scipy build and
#: legitimately sits below 1.0 on this tiny scenario where simulation
#: is cheap.  The adaptive win is the *deterministic* cases-to-converge
#: count, recorded in each entry's extra_info.  The workqueue pair
#: prices the distributed queue's claim/lease/result machinery against
#: the bare serial loop on an identical tiny corpus — an overhead
#: ratio (expected well below 1.0), not a fast path.
INFORMATIONAL_PAIRS = {
    "test_bench_adaptive_convergence": "test_bench_adaptive_convergence_reference",
    "test_bench_workqueue_overhead": "test_bench_workqueue_overhead_reference",
}

_STAT_FIELDS = ("min", "max", "mean", "median", "stddev", "rounds")


def run_benchmarks(selector: str, raw_json_path: str) -> None:
    """Run the micro suite, writing pytest-benchmark's raw JSON."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        os.path.join("benchmarks", "test_bench_micro.py"),
        "-q",
        "--benchmark-json",
        raw_json_path,
    ]
    if selector:
        command.extend(["-k", selector])
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join((src, existing))
    subprocess.run(command, check=True, cwd=REPO_ROOT, env=env)


def summarize(raw_report: dict) -> dict:
    """Distill the raw report into ``{benchmark: {stat: value}}``.

    A benchmark's ``extra_info`` (e.g. the adaptive pair's
    deterministic ``cases_to_converge`` counts) rides along verbatim.
    """
    summary = {}
    for entry in raw_report.get("benchmarks", []):
        stats = entry.get("stats", {})
        distilled = {field: stats.get(field) for field in _STAT_FIELDS}
        if entry.get("extra_info"):
            distilled["extra_info"] = entry["extra_info"]
        summary[entry["name"]] = distilled
    return summary


def speedups(summary: dict, pairs: dict = None) -> dict:
    """Fast-path vs reference mean-time speedups for the paired runs."""
    ratios = {}
    for fast_name, reference_name in (pairs or PAIRED_BENCHMARKS).items():
        fast = summary.get(fast_name, {}).get("mean")
        reference = summary.get(reference_name, {}).get("mean")
        if fast and reference:
            ratios[fast_name] = round(reference / fast, 3)
    return ratios


def export(selector: str = "") -> dict:
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix="bench-raw-", delete=False
    ) as handle:
        raw_json_path = handle.name
    try:
        run_benchmarks(selector, raw_json_path)
        with open(raw_json_path) as stream:
            raw_report = json.load(stream)
    finally:
        os.unlink(raw_json_path)

    summary = summarize(raw_report)
    if selector and os.path.exists(OUTPUT_PATH):
        # A -k subset must not erase the rest of the evidence file:
        # merge the re-measured entries over the existing document.
        with open(OUTPUT_PATH) as stream:
            previous = json.load(stream).get("benchmarks", {})
        previous.update(summary)
        summary = previous
    document = {
        "suite": "benchmarks/test_bench_micro.py",
        "unit": "seconds",
        "datetime": raw_report.get("datetime"),
        "repro_scale": os.environ.get("REPRO_SCALE", "1.0"),
        "machine": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "speedups_vs_reference": speedups(summary),
        "informational_ratios": speedups(summary, INFORMATIONAL_PAIRS),
        "benchmarks": dict(sorted(summary.items())),
    }
    with open(OUTPUT_PATH, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=False)
        stream.write("\n")
    return document


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-k",
        dest="selector",
        default="",
        help="pytest -k selector restricting which benchmarks run",
    )
    arguments = parser.parse_args()
    document = export(arguments.selector)
    print("wrote %s (%d benchmarks)" % (OUTPUT_PATH, len(document["benchmarks"])))
    for name, ratio in document["speedups_vs_reference"].items():
        print("  %s: %.2fx vs reference" % (name, ratio))
    for name, ratio in document["informational_ratios"].items():
        print("  %s: %.2fx vs reference (informational, not gated)" % (name, ratio))


if __name__ == "__main__":
    main()
