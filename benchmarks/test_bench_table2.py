"""Benchmark: regenerate Table II (the synthesized CVA6 contract) and
check the paper's headline findings."""

from repro.contracts.atoms import LeakageFamily
from repro.experiments.contract_tables import run_table2
from repro.isa.instructions import InstructionCategory
from repro.reporting.tables import CellMarker


def test_bench_table2_cva6_contract(benchmark, bench_config):
    result = benchmark.pedantic(
        run_table2, args=(bench_config,), rounds=1, iterations=1
    )

    print("\n" + result.render())

    grid = result.grid
    # CVA6's memory interface exposes nothing about individual
    # accesses: no ML or AL leakage on loads or stores.
    for family in (LeakageFamily.ML, LeakageFamily.AL):
        for category in (InstructionCategory.LOAD, InstructionCategory.STORE):
            assert grid[(category, family)] is CellMarker.NONE, (category, family)
    # Branch outcome leaks through the predictor.
    assert grid[(InstructionCategory.BRANCH, LeakageFamily.BL)] in (
        CellMarker.FULL,
        CellMarker.PARTIAL,
    )
    # Deeper pipeline: dependency leakage at distances beyond 1
    # (the paper observes n up to 4 for control dependencies).
    distances = {
        int(atom.source.rpartition("_")[2])
        for atom in result.contract.atoms
        if atom.family is LeakageFamily.DL
    }
    assert distances, "no dependency atoms in the CVA6 contract"
    assert max(distances) >= 2
    assert result.agreement_ratio >= 0.5
