#!/usr/bin/env python3
"""A resumable campaign: one grid of pipeline configurations,
executed, killed partway, and resumed at cell granularity.

A :class:`~repro.campaign.CampaignSpec` names value lists per pipeline
axis and expands into the cross product of cells; the runner executes
every cell through :class:`~repro.pipeline.SynthesisPipeline`, reusing
the dataset cache across cells that share a corpus (exact key or a
prefix of a larger cached budget) and checkpointing each finished cell
to a JSONL manifest.  The equivalent from the command line::

    repro-synthesize campaign run \\
        --core ibex,ibex-dcache --attacker retirement-timing,cache-state \\
        --budgets 200,400 --solver greedy --verify 0 \\
        --campaign-name sweep --max-parallel-cells 2
    repro-synthesize campaign status --campaign-name sweep ... --resume
    repro-synthesize campaign report --campaign-name sweep ... --resume

Run with::

    python examples/campaign_sweep.py [results-dir]
"""

import sys

from repro.campaign import CampaignRunner, CampaignSpec


class SimulatedCrash(Exception):
    pass


def build_spec():
    return CampaignSpec(
        name="sweep",
        cores=("ibex", "ibex-dcache"),
        attackers=("retirement-timing", "cache-state"),
        budgets=(200, 400),
        solvers=("greedy",),
        # The dcache-less Ibex shows nothing to a cache-state attacker;
        # drop those cells instead of paying for them.
        exclude=[{"core": "ibex", "attacker": "cache-state"}],
        verify=0,
    )


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    spec = build_spec()

    def crash_after(limit):
        def callback(event):
            print(
                "  [%d/%d] %s"
                % (event.completed_cells, event.total_cells, event.cell.label())
            )
            if event.completed_cells == limit:
                raise SimulatedCrash()

        return callback

    print("first run (killed after 2 of %d cells):" % len(spec.expand()))
    try:
        CampaignRunner(spec, results_dir=results_dir, progress=crash_after(2)).run()
    except SimulatedCrash:
        print("  ...crashed; completed cells are checkpointed\n")

    print("resumed run:")
    result = CampaignRunner(
        spec,
        results_dir=results_dir,
        progress=lambda event: print(
            "  [%d/%d] %s%s"
            % (
                event.completed_cells,
                event.total_cells,
                event.cell.label(),
                " (resumed)" if event.resumed else "",
            )
        ),
    ).run()

    print()
    print(result.render())


if __name__ == "__main__":
    main()
