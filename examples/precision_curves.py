#!/usr/bin/env python3
"""Precision and sensitivity curves (Figures 2 and 3) at example scale.

Evaluates one synthesis corpus and one held-out corpus on the Ibex-like
core, then sweeps the synthesis-set size for all four cumulative
template refinements (Fig. 2) and plots the full-template sensitivity
curve (Fig. 3).  Use ``REPRO_SCALE`` or the CLI for larger budgets.
"""

import sys
import tempfile

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    config = ExperimentConfig(
        scale=scale, results_dir=tempfile.mkdtemp(prefix="repro-curves-")
    )
    print(
        "synthesis budget: %d test cases, evaluation budget: %d\n"
        % (config.synthesis_test_cases, config.evaluation_test_cases)
    )

    fig2 = run_fig2(config)
    print(fig2.render())
    print()
    for series in fig2.series:
        final = series.points[-1][1]
        print("  final precision %-22s %s"
              % (series.label, "n/a" if final is None else "%.3f" % final))

    print()
    fig3 = run_fig3(config)
    print(fig3.render())
    print("\nCSV outputs in %s/" % config.results_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
