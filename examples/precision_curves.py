#!/usr/bin/env python3
"""Precision and sensitivity curves (Figures 2 and 3) at example scale.

Evaluates one synthesis corpus and one held-out corpus (both through
the shared :mod:`repro.pipeline` dataset cache), then sweeps the
synthesis-set size for all four cumulative template refinements
(Fig. 2) and plots the full-template sensitivity curve (Fig. 3).

Usage::

    python examples/precision_curves.py [scale] [core-name]

``core-name`` is any registered core (``repro-synthesize list``); use
``REPRO_SCALE`` or the CLI for larger budgets.
"""

import sys
import tempfile

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    core_name = sys.argv[2] if len(sys.argv) > 2 else "ibex"
    config = ExperimentConfig(
        scale=scale, results_dir=tempfile.mkdtemp(prefix="repro-curves-")
    )
    print(
        "synthesis budget: %d test cases, evaluation budget: %d (core: %s)\n"
        % (config.synthesis_test_cases, config.evaluation_test_cases, core_name)
    )

    fig2 = run_fig2(config, core_name=core_name)
    print(fig2.render())
    print()
    for series in fig2.series:
        final = series.points[-1][1]
        print("  final precision %-22s %s"
              % (series.label, "n/a" if final is None else "%.3f" % final))

    print()
    fig3 = run_fig3(config, core_name=core_name)
    print(fig3.render())
    print("\nCSV outputs in %s/" % config.results_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
