#!/usr/bin/env python3
"""Quickstart: synthesize a leakage contract for the Ibex-like core.

The five-step pipeline of the paper, end to end:

1. build the RISC-V contract template (892 atoms),
2. generate atom-targeted test cases,
3. evaluate them on the core (attacker distinguishability + atoms),
4. synthesize the most precise correct contract via ILP,
5. render the paper-style contract table.

Run with::

    python examples/quickstart.py [test-case-count]
"""

import sys

from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.reporting.tables import render_contract_table
from repro.synthesis.ranking import format_ranking, rank_atoms_by_false_positives
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.ibex import IbexCore


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print("1. building the RV32IM contract template ...")
    template = build_riscv_template()
    print("   %d atoms across %s" % (
        len(template),
        ", ".join(family.name for family in
                  sorted({atom.family for atom in template})),
    ))

    print("2. generating %d atom-targeted test cases ..." % count)
    generator = TestCaseGenerator(template, seed=2024)

    print("3. evaluating on the Ibex-like core ...")
    evaluator = TestCaseEvaluator(IbexCore(), template)
    dataset = evaluator.evaluate_many(generator.iter_generate(count))
    print(
        "   %d of %d test cases are attacker distinguishable"
        % (len(dataset.distinguishable), len(dataset))
    )

    print("4. synthesizing the most precise contract (ILP) ...")
    result = synthesize(dataset, template)
    print(
        "   %d atoms selected, %d false positives on the synthesis set"
        % (result.atom_count, result.false_positives)
    )

    print("5. contract table (paper notation):\n")
    print(render_contract_table(result.contract))
    print("\nTop false-positive atoms (refinement candidates, §III-E):")
    print(format_ranking(
        rank_atoms_by_false_positives(result.contract, dataset), top=5
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
