#!/usr/bin/env python3
"""Quickstart: synthesize a leakage contract for the Ibex-like core.

The five-step pipeline of the paper — generate atom-targeted test
cases, evaluate them on the core, synthesize the most precise correct
contract via ILP, verify it, and report — behind the single public
entry point, :class:`repro.pipeline.SynthesisPipeline`:

    result = (SynthesisPipeline()
              .core("ibex")                  # any CORE_REGISTRY name
              .attacker("retirement-timing") # any ATTACKER_REGISTRY name
              .template("riscv-rv32im")
              .budget(count, seed)
              .solver("scipy-milp")          # any SOLVER_REGISTRY name
              .run())

For large budgets, add ``.executor("multiprocess").resume(...)`` to fan
the evaluation out in checkpointed shards — see
``examples/resumable_evaluation.py``.

Run with::

    python examples/quickstart.py [test-case-count]
"""

import sys

from repro.pipeline import SynthesisPipeline, describe_registries
from repro.reporting.tables import render_contract_table
from repro.synthesis.ranking import format_ranking, rank_atoms_by_false_positives


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print("available plugins:\n")
    print(describe_registries())

    print("\nrunning the pipeline (%d test cases, Ibex-like core) ..." % count)
    result = (
        SynthesisPipeline()
        .core("ibex")
        .attacker("retirement-timing")
        .template("riscv-rv32im")
        .budget(count, seed=2024)
        .solver("scipy-milp")
        .run()
    )
    print(result.render())
    print(
        "\n%d of %d test cases are attacker distinguishable"
        % (len(result.dataset.distinguishable), len(result.dataset))
    )

    print("\ncontract table (paper notation):\n")
    print(render_contract_table(result.contract))
    print("\nTop false-positive atoms (refinement candidates, §III-E):")
    print(format_ranking(
        rank_atoms_by_false_positives(result.contract, result.dataset), top=5
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
