#!/usr/bin/env python3
"""Audit code for secret-dependent timing using a synthesized contract.

The point of leakage contracts (§II-D): once a contract is known to be
satisfied by a core, *programs* can be audited purely at the ISA level —
if the contract's leakage trace is identical for all secret values, no
attacker on that core can learn the secret.

This example audits two implementations of the same function

    result = (secret != 0) ? a : b

- a *branching* version (``beq`` on the secret), and
- a *branchless* constant-time version (mask arithmetic),

against a contract synthesized for the Ibex-like core, then confirms
the contract's verdicts against actual retirement timing.
"""

import sys

from repro.attacker import ATTACKER_REGISTRY
from repro.contracts.observations import contract_observation_trace
from repro.isa.assembler import assemble
from repro.isa.executor import execute_program
from repro.isa.state import ArchState
from repro.pipeline import SynthesisPipeline
from repro.uarch import CORE_REGISTRY

# secret in a0; inputs in a1 (a), a2 (b); result in a3.
BRANCHING = """
    beq  a0, zero, use_b
    mv   a3, a1
    j    done
use_b:
    mv   a3, a2
done:
    add  a4, a3, a3
"""

# Branchless: mask = (secret != 0) ? -1 : 0; result = (a & mask) | (b & ~mask)
BRANCHLESS = """
    sltu a5, zero, a0      # a5 = secret != 0
    sub  a5, zero, a5      # mask = 0 or 0xffffffff
    and  a6, a1, a5
    not  a7, a5
    and  a7, a2, a7
    or   a3, a6, a7
    add  a4, a3, a3
"""

SECRET_REGISTER = 10  # a0


def run_with_secret(program, secret):
    state = ArchState(pc=program.base_address)
    state.write_register(SECRET_REGISTER, secret)
    state.write_register(11, 1111)  # a
    state.write_register(12, 2222)  # b
    return state


def audit(name, source, contract, core, attacker):
    program = assemble(source)
    state_zero = run_with_secret(program, 0)
    state_nonzero = run_with_secret(program, 57)

    records_zero = execute_program(program, state_zero.copy())
    records_nonzero = execute_program(program, state_nonzero.copy())
    trace_zero = contract_observation_trace(contract, records_zero)
    trace_nonzero = contract_observation_trace(contract, records_nonzero)
    contract_says_leaky = trace_zero != trace_nonzero

    result_zero = core.simulate(program, state_zero)
    result_nonzero = core.simulate(program, state_nonzero)
    actually_leaky = attacker.distinguishes(result_zero, result_nonzero)

    print("%-12s contract verdict: %-26s attacker: %s" % (
        name,
        "LEAKS secret" if contract_says_leaky else "safe (trace independent)",
        "distinguishes" if actually_leaky else "cannot distinguish",
    ))
    return contract_says_leaky, actually_leaky


def main() -> int:
    print("synthesizing a contract for the Ibex-like core ...")
    contract = (
        SynthesisPipeline()
        .core("ibex")
        .attacker("retirement-timing")
        .budget(2500, seed=7)
        .run()
        .contract
    )
    print("contract has %d atoms\n" % len(contract))

    core = CORE_REGISTRY.create("ibex")
    attacker = ATTACKER_REGISTRY.create("retirement-timing")
    leaky_verdict, leaky_actual = audit("branching", BRANCHING, contract, core, attacker)
    safe_verdict, safe_actual = audit("branchless", BRANCHLESS, contract, core, attacker)

    print()
    if leaky_verdict and leaky_actual and not safe_actual:
        print("the contract correctly flags the branching version and")
        print("clears the branchless one — it can be used as a")
        print("constant-time checker for this core.")
        if safe_verdict:
            print("(note: the contract over-approximates — it flags the")
            print(" branchless version although the attacker cannot")
            print(" distinguish it; soundness permits false alarms.)")
        return 0
    print("unexpected verdict combination — inspect the contract")
    return 1


if __name__ == "__main__":
    sys.exit(main())
