#!/usr/bin/env python3
"""The observability layer end-to-end: trace a run, fold the file,
render the watch view.

Every layer of the toolchain appends span and event records to one
shared JSONL trace file (:mod:`repro.trace`): the pipeline its phase
spans, the adaptive loop its rounds, a campaign its cells, the service
its jobs and workers.  This example traces a small campaign with an
adaptive cell, then consumes the file both ways — the offline metrics
fold and the live ``watch`` frame.  The equivalent from the command
line::

    repro-synthesize campaign run --budgets 100,200 --solver greedy \\
        --campaign-name traced --trace trace.jsonl
    repro-synthesize watch --trace trace.jsonl --once

Run with::

    python examples/trace_watch.py [results-dir]
"""

import os
import sys

from repro.campaign import CampaignSpec, run_campaign
from repro.pipeline import SynthesisPipeline
from repro.trace import fold_file, render_once

def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    trace_path = os.path.join(results_dir, "trace.jsonl")
    if os.path.exists(trace_path):
        os.remove(trace_path)

    # A campaign writes campaign/cell records; each cell's pipeline
    # appends its phase spans to the same file.
    spec = CampaignSpec(
        name="traced",
        cores=("ibex",),
        solvers=("greedy",),
        budgets=(100, 200),
        verify=0,
        trace_path=trace_path,
    )
    print("running a traced 2-cell campaign...")
    run_campaign(spec, results_dir=results_dir)

    # An adaptive run interleaves into the same file: round spans carry
    # per-round coverage and contract-size fields.
    print("running a traced adaptive pipeline...")
    (
        SynthesisPipeline()
        .solver("greedy")
        .budget(150, seed=0)
        .adaptive(rounds=3, batch=50, stop="budget")
        .trace(trace_path)
        .run()
    )

    print("\n== fold: per-span summaries and detail tables ==\n")
    print(fold_file(trace_path).render(slowest=5))

    print("\n== watch: the live frame, from the file alone ==\n")
    print(render_once(trace_path))


if __name__ == "__main__":
    main()
