#!/usr/bin/env python3
"""Sharded, resumable evaluation through the executor backends.

The evaluation phase fans out in shards through a pluggable executor
(``repro.evaluation.backends.EXECUTOR_REGISTRY``) and checkpoints every
completed shard to a JSONL manifest, so an interrupted run — or one
whose budget you later extend — resumes instead of restarting::

    result = (
        SynthesisPipeline()
        .core("ibex")
        .budget(100_000, seed=1)
        .executor("multiprocess", processes=8, shard_size=500)
        .cache_dir("results/cache")
        .resume()  # manifest derived from the dataset cache key
        .run()
    )

This script demonstrates the mechanics at a small scale: it starts a
run, kills it partway through (simulating a crash), then resumes and
shows that only the missing shards are evaluated.

Run with::

    python examples/resumable_evaluation.py [test-case-count]
"""

import sys

from repro.pipeline import SynthesisPipeline


class SimulatedCrash(Exception):
    pass


def build_pipeline(count, manifest_path):
    return (
        SynthesisPipeline()
        .core("ibex")
        .attacker("retirement-timing")
        .template("riscv-rv32im")
        .budget(count, seed=7)
        .solver("greedy")
        .executor("serial", shard_size=max(10, count // 8))
        .resume(manifest_path)
    )


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    manifest_path = "results/resumable-demo.shards.jsonl"

    def crash_midway(event):
        print(
            "  shard %r done (%d/%d cases)"
            % (event.shard, event.completed_cases, event.total_cases)
        )
        if event.completed_cases >= event.total_cases // 2:
            raise SimulatedCrash()

    print("first run (will crash halfway):")
    try:
        build_pipeline(count, manifest_path).on_shard(crash_midway).evaluate()
    except SimulatedCrash:
        print("  ... crashed; completed shards are checkpointed\n")

    def report(event):
        print(
            "  shard %r %s (%d/%d cases)"
            % (
                event.shard,
                "resumed from manifest" if event.resumed else "evaluated",
                event.completed_cases,
                event.total_cases,
            )
        )

    print("second run (resumes from %s):" % manifest_path)
    result = build_pipeline(count, manifest_path).on_shard(report).run()
    print()
    print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
