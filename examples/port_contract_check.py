#!/usr/bin/env python3
"""Port a contract between cores and check whether it still holds.

Workflow a hardware vendor would follow: synthesize a contract for one
core, ship it as JSON, and validate it against another implementation
of the same ISA with the testing-based satisfaction checker
(`repro.verification`).  Leakage is microarchitectural, so a contract
for the Ibex-like core generally does *not* transfer to the CVA6-like
core — the checker finds concrete witnesses (e.g. CVA6's zero-operand
multiplier fast path, which Ibex does not have).
"""

import sys
import tempfile
import os

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.serialization import (
    diff_contracts,
    load_contract,
    save_contract,
)
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore
from repro.verification.checker import check_contract_satisfaction


def synthesize_contract(core, template, count, seed=21):
    generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(core, template)
    dataset = evaluator.evaluate_many(generator.iter_generate(count))
    return synthesize(dataset, template).contract


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    template = build_riscv_template()

    print("synthesizing a contract for ibex (%d test cases) ..." % count)
    ibex_contract = synthesize_contract(IbexCore(), template, count)

    path = os.path.join(tempfile.mkdtemp(prefix="repro-port-"), "ibex.json")
    save_contract(ibex_contract, path, metadata={"core": "ibex"})
    print("saved %d atoms to %s" % (len(ibex_contract), path))

    restored = load_contract(path, build_riscv_template())
    print("reloaded contract: %d atoms" % len(restored))

    print("\nchecking the ibex contract against ibex itself ...")
    self_report = check_contract_satisfaction(
        restored, IbexCore(), test_cases=count, seed=500
    )
    print(self_report.render())

    print("\nchecking the ibex contract against cva6 ...")
    ported_report = check_contract_satisfaction(
        restored, CVA6Core(), test_cases=count, seed=500
    )
    print(ported_report.render())

    if not ported_report.satisfied:
        print("\nas expected: leakage contracts are per-microarchitecture.")
        print("synthesizing a native cva6 contract and diffing:")
        cva6_contract = synthesize_contract(CVA6Core(), template, count)
        print(diff_contracts(restored, cva6_contract).render("ibex", "cva6"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
