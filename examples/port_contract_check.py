#!/usr/bin/env python3
"""Port a contract between cores and check whether it still holds.

Workflow a hardware vendor would follow: synthesize a contract for one
core, ship it as JSON, and validate it against another implementation
of the same ISA with the testing-based satisfaction checker
(`repro.verification`).  Leakage is microarchitectural, so a contract
for the Ibex-like core generally does *not* transfer to the CVA6-like
core — the checker finds concrete witnesses (e.g. CVA6's zero-operand
multiplier fast path, which Ibex does not have).
"""

import sys
import tempfile
import os

from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.serialization import (
    diff_contracts,
    load_contract,
    save_contract,
)
from repro.pipeline import SynthesisPipeline
from repro.uarch import CORE_REGISTRY
from repro.verification.checker import check_contract_satisfaction


def synthesize_contract(core_name, count, seed=21):
    return (
        SynthesisPipeline()
        .core(core_name)
        .template("riscv-rv32im")
        .budget(count, seed)
        .run()
        .contract
    )


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    print("synthesizing a contract for ibex (%d test cases) ..." % count)
    ibex_contract = synthesize_contract("ibex", count)

    path = os.path.join(tempfile.mkdtemp(prefix="repro-port-"), "ibex.json")
    save_contract(ibex_contract, path, metadata={"core": "ibex"})
    print("saved %d atoms to %s" % (len(ibex_contract), path))

    restored = load_contract(path, TEMPLATE_REGISTRY.create("riscv-rv32im"))
    print("reloaded contract: %d atoms" % len(restored))

    print("\nchecking the ibex contract against ibex itself ...")
    self_report = check_contract_satisfaction(
        restored, CORE_REGISTRY.create("ibex"), test_cases=count, seed=500
    )
    print(self_report.render())

    print("\nchecking the ibex contract against cva6 ...")
    ported_report = check_contract_satisfaction(
        restored, CORE_REGISTRY.create("cva6"), test_cases=count, seed=500
    )
    print(ported_report.render())

    if not ported_report.satisfied:
        print("\nas expected: leakage contracts are per-microarchitecture.")
        print("synthesizing a native cva6 contract and diffing:")
        cva6_contract = synthesize_contract("cva6", count)
        print(diff_contracts(restored, cva6_contract).render("ibex", "cva6"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
