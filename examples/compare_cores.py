#!/usr/bin/env python3
"""Compare the synthesized contracts of the Ibex- and CVA6-like cores.

Reproduces the qualitative comparison of Tables I and II: the same
template and the same test-case generation strategy yield different
contracts on different microarchitectures — Ibex leaks load alignment
through its word-aligned memory interface while CVA6's memory
interface hides accesses entirely; CVA6's deeper pipeline instead
shows dependency leakage at larger distances.
"""

import sys

from repro.contracts.atoms import LeakageFamily
from repro.isa.instructions import InstructionCategory
from repro.pipeline import SynthesisPipeline
from repro.reporting.tables import contract_summary_grid, render_contract_table


def synthesize_for(core_name, count, seed=11):
    result = (
        SynthesisPipeline()
        .core(core_name)
        .template("riscv-rv32im")
        .budget(count, seed)
        .run()
    )
    return result.contract


def dependency_distances(contract):
    """The DL distances n that occur in a contract."""
    distances = set()
    for atom in contract.atoms:
        if atom.family is LeakageFamily.DL:
            distances.add(int(atom.source.rpartition("_")[2]))
    return sorted(distances)


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    contracts = {}
    for core_name in ("ibex", "cva6"):
        print("synthesizing for %s (%d test cases) ..." % (core_name, count))
        contracts[core_name] = synthesize_for(core_name, count)

    for name, contract in contracts.items():
        print()
        print(render_contract_table(contract, title="=== %s ===" % name))

    print()
    ibex_grid = contract_summary_grid(contracts["ibex"])
    cva6_grid = contract_summary_grid(contracts["cva6"])
    alignment = (InstructionCategory.LOAD, LeakageFamily.AL)
    print("load alignment leakage:  ibex=%s  cva6=%s"
          % (ibex_grid[alignment].value, cva6_grid[alignment].value))
    print("DL distances:            ibex=%s  cva6=%s"
          % (dependency_distances(contracts["ibex"]),
             dependency_distances(contracts["cva6"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
