#!/usr/bin/env python3
"""Compare the synthesized contracts of the Ibex- and CVA6-like cores.

Reproduces the qualitative comparison of Tables I and II: the same
template and the same test-case generation strategy yield different
contracts on different microarchitectures — Ibex leaks load alignment
through its word-aligned memory interface while CVA6's memory
interface hides accesses entirely; CVA6's deeper pipeline instead
shows dependency leakage at larger distances.
"""

import sys

from repro.contracts.atoms import LeakageFamily
from repro.contracts.riscv_template import build_riscv_template
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.isa.instructions import InstructionCategory
from repro.reporting.tables import contract_summary_grid, render_contract_table
from repro.synthesis.synthesizer import synthesize
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore


def synthesize_for(core, template, count, seed=11):
    generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(core, template)
    dataset = evaluator.evaluate_many(generator.iter_generate(count))
    return synthesize(dataset, template).contract


def dependency_distances(contract):
    """The DL distances n that occur in a contract."""
    distances = set()
    for atom in contract.atoms:
        if atom.family is LeakageFamily.DL:
            distances.add(int(atom.source.rpartition("_")[2]))
    return sorted(distances)


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    template = build_riscv_template()

    contracts = {}
    for core in (IbexCore(), CVA6Core()):
        print("synthesizing for %s (%d test cases) ..." % (core.name, count))
        contracts[core.name] = synthesize_for(core, template, count)

    for name, contract in contracts.items():
        print()
        print(render_contract_table(contract, title="=== %s ===" % name))

    print()
    ibex_grid = contract_summary_grid(contracts["ibex"])
    cva6_grid = contract_summary_grid(contracts["cva6"])
    alignment = (InstructionCategory.LOAD, LeakageFamily.AL)
    print("load alignment leakage:  ibex=%s  cva6=%s"
          % (ibex_grid[alignment].value, cva6_grid[alignment].value))
    print("DL distances:            ibex=%s  cva6=%s"
          % (dependency_distances(contracts["ibex"]),
             dependency_distances(contracts["cva6"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
