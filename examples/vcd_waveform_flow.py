#!/usr/bin/env python3
"""The waveform leg of the toolchain (§IV-D): simulate a test case,
dump both RVFI retirement streams to VCD files, and re-derive the
distinguishing atoms from the waveforms alone.

The reconstruction decodes the instruction words from the dumped
``rvfi_insn`` signal, re-evaluates branch conditions from the operand
values, and recomputes dependency distances — so the atoms derived
from the VCD match the ones derived from the live simulation exactly.
"""

import sys
import tempfile
import os

from repro.contracts.observations import distinguishing_atoms
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.testgen.generator import TestCaseGenerator
from repro.uarch import CORE_REGISTRY
from repro.uarch.testbench import Testbench
from repro.vcd.rvfi_vcd import load_exec_records


def main() -> int:
    template = TEMPLATE_REGISTRY.create("riscv-rv32im")
    generator = TestCaseGenerator(template, seed=3)
    # Aim at the paper's headline Ibex leak: load alignment.
    atom = next(atom for atom in template if atom.name == "lw:IS_WORD_ALIGNED")
    import random

    test_case = generator.generate_for_atom(atom, 0, random.Random(5))
    print("test case targets %s" % atom.name)

    bench = Testbench(CORE_REGISTRY.create("ibex"), check_isa_consistency=True)
    directory = tempfile.mkdtemp(prefix="repro-vcd-")
    path_a = os.path.join(directory, "program_a.vcd")
    path_b = os.path.join(directory, "program_b.vcd")
    result_a = bench.run(test_case.program_a, test_case.initial_state, vcd_path=path_a)
    result_b = bench.run(test_case.program_b, test_case.initial_state, vcd_path=path_b)
    print("waveforms: %s (%d bytes), %s (%d bytes)" % (
        path_a, os.path.getsize(path_a), path_b, os.path.getsize(path_b),
    ))

    direct = distinguishing_atoms(
        template, result_a.trace.exec_records, result_b.trace.exec_records
    )
    records_a, cycles_a = load_exec_records(path_a)
    records_b, cycles_b = load_exec_records(path_b)
    via_vcd = distinguishing_atoms(template, records_a, records_b)

    print("retirement cycles A: %s" % (cycles_a,))
    print("retirement cycles B: %s" % (cycles_b,))
    print("distinguishing atoms (live):     %d" % len(direct))
    print("distinguishing atoms (from VCD): %d" % len(via_vcd))
    assert via_vcd == direct, "waveform extraction diverged!"
    names = sorted(template.atom(atom_id).name for atom_id in via_vcd)
    print("atoms: %s" % ", ".join(names[:12]))
    print("waveform-derived atoms match the live simulation.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
