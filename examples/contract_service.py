#!/usr/bin/env python3
"""The contract service in one process: a persistent store answering
leakage-contract requests, executing misses on the distributed work
queue with embedded workers.

A :class:`~repro.service.ContractRequest` names value lists per
pipeline axis (like a campaign spec) and expands into cells; the
:class:`~repro.service.ContractService` serves each cell from the
:class:`~repro.service.ContractStore` when a finished contract exists,
and schedules only the missing cells.  Because the store keys datasets
like the evaluation cache, a smaller-budget request is derived from a
larger cached corpus without enqueueing a single shard job.  The
equivalent with real processes::

    repro-synthesize serve --service-root svc --executor workqueue &
    repro-synthesize service worker --queue-dir svc/queue &
    repro-synthesize service worker --queue-dir svc/queue &
    repro-synthesize submit --core ibex --solver greedy --count 200 --wait 120
    repro-synthesize status

Run with::

    python examples/contract_service.py [service-root]
"""

import sys

from repro.service import (
    ContractRequest,
    ContractService,
    ContractStore,
    WorkQueueExecutor,
)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "service"

    store = ContractStore(root + "/store")
    executor = WorkQueueExecutor(
        queue_dir=root + "/queue",
        embedded_workers=2,
        poll_seconds=0.01,
        wait_for_workers=15.0,
    )
    service = ContractService(store, executor=executor, shard_size=25)

    print("miss: the full grid is executed on the work queue")
    ticket = service.request(
        ContractRequest(core="ibex", solver="greedy", budget=100, seed=[0, 1])
    )
    print(ticket.render())
    print("  shard jobs enqueued: %d\n" % ticket.jobs_enqueued)

    print("repeat: every cell is served from the store")
    repeat = service.request(
        ContractRequest(core="ibex", solver="greedy", budget=100, seed=[0, 1])
    )
    print(repeat.render())

    print()
    print("smaller budget: a new cell, but its dataset is a prefix of")
    print("the cached 100-case corpus — zero jobs reach the queue")
    smaller = service.request(
        ContractRequest(core="ibex", solver="greedy", budget=50, seed=0)
    )
    print(smaller.render())
    print("  shard jobs enqueued: %d" % smaller.jobs_enqueued)


if __name__ == "__main__":
    main()
