#!/usr/bin/env python3
"""Coverage-guided adaptive synthesis vs the fixed-budget pipeline.

The fixed-budget pipeline (§IV-B) generates its whole corpus up front;
the adaptive loop (``repro.adaptive``) generates in rounds, feeds the
evaluator's per-atom coverage back into the generation strategy, and
stops when the contract stops moving::

    result = (
        SynthesisPipeline()
        .core("ibex-dcache")
        .attacker("cache-state")
        .template("riscv-mem")
        .adaptive(generator="coverage", rounds=12, batch=100,
                  stop="contract-stable")
        .run()
    )

This script runs the pinned convergence scenario both ways, shows that
the adaptive loop reaches the same contract from fewer evaluated test
cases, and renders the per-round convergence curves.

Run with::

    python examples/adaptive_synthesis.py
"""

from repro.pipeline import SynthesisPipeline
from repro.reporting.curves import render_ascii_chart

CORE = "ibex-dcache"
ATTACKER = "cache-state"
TEMPLATE = "riscv-mem"
SEED = 7
FIXED_BUDGET = 1200


def main() -> int:
    print("== fixed budget (%d cases) ==" % FIXED_BUDGET)
    fixed = (
        SynthesisPipeline()
        .core(CORE)
        .attacker(ATTACKER)
        .template(TEMPLATE)
        .budget(FIXED_BUDGET, seed=SEED)
        .run()
    )
    print(fixed.render())

    print()
    print("== adaptive (coverage-guided rounds) ==")
    adaptive = (
        SynthesisPipeline()
        .core(CORE)
        .attacker(ATTACKER)
        .template(TEMPLATE)
        .budget(FIXED_BUDGET, seed=SEED)
        .adaptive(generator="coverage", rounds=12, batch=100)
        .run()
    )
    print(adaptive.render())

    print()
    same = fixed.contract.atom_ids == adaptive.contract.atom_ids
    print(
        "same contract: %s — %d adaptive cases vs %d fixed (%.0f%% saved)"
        % (
            same,
            len(adaptive.dataset),
            len(fixed.dataset),
            100.0 * (1 - len(adaptive.dataset) / len(fixed.dataset)),
        )
    )

    coverage = [
        series
        for series in adaptive.adaptive.curves()
        if series.label == "atom-coverage"
    ]
    print()
    print(render_ascii_chart(coverage, height=10))
    return 0 if same else 1


if __name__ == "__main__":
    raise SystemExit(main())
