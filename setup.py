"""Legacy setup shim.

Kept so that ``pip install -e . --no-use-pep517`` works on environments
without the ``wheel`` package (the offline evaluation environment); all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
