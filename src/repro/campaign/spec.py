"""Campaign specifications: declarative grids of pipeline configurations.

A :class:`CampaignSpec` names one value list per pipeline axis (cores,
attackers, templates, restrictions, solvers, budgets, seeds) and
expands into the cross product of :class:`CampaignCell`\\ s — each cell
one complete :class:`~repro.pipeline.SynthesisPipeline` configuration,
addressed entirely by registry names so cells serialize into the
campaign manifest and rebuild inside executor workers.

Two escape hatches keep real grids declarative:

- ``overrides`` maps an axis *value* to cell-field replacements, e.g.
  ``{"cva6": {"budget": 3000}}`` shrinks every CVA6 cell's budget the
  way the paper uses a smaller CVA6 synthesis set;
- ``exclude`` drops cells, either a predicate ``cell -> bool`` or a
  list of partial axis dicts (a cell matching *all* items of any dict
  is dropped).

Expansion validates every name against the owning registry up front,
so a typo fails before any cell has burned compute.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from itertools import product
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.evaluation.backends.base import EvaluationExecutor
from repro.pipeline import SynthesisPipeline

#: The sweep axes, in expansion (and display) order.
AXES = (
    "core",
    "attacker",
    "template",
    "restriction",
    "solver",
    "generator",
    "budget",
    "seed",
)

#: ``exclude`` may be a predicate or a list of partial axis matches.
ExcludeLike = Union[
    Callable[["CampaignCell"], bool], Sequence[Mapping[str, object]], None
]


@dataclass(frozen=True)
class CampaignCell:
    """One point of the grid: a complete pipeline configuration.

    Every plugin is a registry name (never an instance), so a cell can
    be stored in the campaign manifest, compared across runs, and
    rebuilt anywhere.
    """

    core: str
    attacker: str
    template: str
    restriction: Optional[str]
    solver: str
    budget: int
    seed: int
    #: Generation strategy (``GENERATOR_REGISTRY`` name).
    generator: str = "random"
    #: ``None`` → the classic one-shot pipeline; ``n`` → an adaptive
    #: run of up to ``n`` rounds whose per-round batch is ``batch``
    #: (default: the cell budget split evenly across the rounds, so
    #: ``budget`` stays the cell's total case ceiling on both paths).
    adaptive_rounds: Optional[int] = None
    batch: Optional[int] = None
    #: Stopping rule of an adaptive cell (``STOPPING_REGISTRY`` name;
    #: ``None`` → the pipeline default, ``contract-stable``).
    stop: Optional[str] = None
    #: Fast-path mode: ``False`` (reference), ``True`` (compiled), or
    #: ``"batch"`` — see :mod:`repro.evaluation.fastpath`.
    fastpath: "bool | str" = True
    #: Pipeline verification budget: ``None`` checks the synthesized
    #: contract against its own dataset, ``0`` skips, ``n`` runs
    #: directed satisfaction testing.
    verify: Optional[int] = None
    #: Per-shard retry budget of the cell's evaluation phase (``None``
    #: → no retries; failures propagate as before).  Also the cell's
    #: own retry budget in the runner: a cell whose pipeline keeps
    #: failing retryably is re-run up to ``retries`` times and then
    #: quarantined instead of aborting the campaign.
    retries: Optional[int] = None
    #: Soft per-shard deadline in seconds (``None`` → no watchdog).
    shard_timeout: Optional[float] = None

    def identity(self) -> dict:
        """The manifest key of this cell: every field that changes its
        :class:`~repro.pipeline.PipelineResult`.

        ``retries``/``shard_timeout`` enter the identity only when
        set — identity-by-absence, so manifests written before these
        fields existed still resume every cell that leaves them unset.
        """
        identity = {
            "core": self.core,
            "attacker": self.attacker,
            "template": self.template,
            "restriction": self.restriction,
            "solver": self.solver,
            "budget": self.budget,
            "seed": self.seed,
            "generator": self.generator,
            "adaptive_rounds": self.adaptive_rounds,
            "batch": self.batch,
            "stop": self.stop,
            # Compiled and batch fast paths are byte-identical, so the
            # identity only splits on reference-vs-fast.
            "fastpath": bool(self.fastpath),
            "verify": self.verify,
        }
        if self.retries is not None:
            identity["retries"] = self.retries
        if self.shard_timeout is not None:
            identity["shard_timeout"] = self.shard_timeout
        return identity

    def key(self) -> str:
        """A canonical string key (dict-order independent)."""
        return json.dumps(self.identity(), sort_keys=True)

    def label(self) -> str:
        """A compact human-readable cell label."""
        label = (
            "core=%s attacker=%s template=%s restrict=%s solver=%s "
            "budget=%d seed=%d"
            % (
                self.core,
                self.attacker,
                self.template,
                self.restriction if self.restriction is not None else "-",
                self.solver,
                self.budget,
                self.seed,
            )
        )
        if self.generator != "random" or self.adaptive_rounds is not None:
            label += " generator=%s" % self.generator
        if self.adaptive_rounds is not None:
            label += " rounds=%d" % self.adaptive_rounds
        return label

    def axis(self, name: str) -> object:
        """The cell's value on one of :data:`AXES`."""
        if name not in AXES:
            raise ValueError(
                "unknown campaign axis %r (axes: %s)" % (name, ", ".join(AXES))
            )
        return getattr(self, name)

    def dataset_group(self) -> Tuple[str, str, str, int, bool, str, Optional[int]]:
        """The axes determining the evaluated dataset *stream* — the
        dataset cache key minus the budget.  Cells in one group share
        test cases (generation is per test id), so a cached dataset of
        a larger budget serves any smaller budget by prefix.

        The generator is part of the group: different strategies emit
        different corpora from the same seed, so their caches must
        never be conflated.  Adaptive cells additionally carry their
        round budget — their corpora are feedback-shaped and bypass the
        dataset cache, so each adaptive configuration is its own
        (inert) group."""
        return (
            self.core,
            self.template,
            self.attacker,
            self.seed,
            bool(self.fastpath),
            self.generator,
            self.adaptive_rounds,
        )

    def effective_rounds(self) -> Optional[int]:
        """The round budget actually run: ``adaptive_rounds``, clamped
        so the derived-batch case ceiling (``rounds * batch``) never
        exceeds the cell budget (an explicit ``batch`` is the user's
        own ceiling and is respected as-is) — the shared
        :func:`~repro.adaptive.loop.derive_round_plan` derivation."""
        if self.adaptive_rounds is None:
            return None
        from repro.adaptive.loop import derive_round_plan

        return derive_round_plan(self.adaptive_rounds, self.batch, self.budget)[0]

    def effective_batch(self) -> Optional[int]:
        """The per-round batch of an adaptive cell: explicit ``batch``,
        or the cell budget split evenly across the effective rounds."""
        if self.adaptive_rounds is None:
            return self.batch
        from repro.adaptive.loop import derive_round_plan

        return derive_round_plan(self.adaptive_rounds, self.batch, self.budget)[1]

    def pipeline(
        self,
        cache_dir: Optional[str] = None,
        executor: Union[None, str, EvaluationExecutor] = None,
        processes: Optional[int] = None,
        shard_size: Optional[int] = None,
        trace_path: Optional[str] = None,
    ) -> SynthesisPipeline:
        """A :class:`SynthesisPipeline` configured exactly as this cell.

        ``trace_path`` wires the cell's run into a shared trace file
        (its phase/round/shard spans interleave with the campaign's
        cell spans); like executor sizing it is runner-level plumbing,
        never part of the cell identity."""
        pipeline = (
            SynthesisPipeline()
            .core(self.core)
            .attacker(self.attacker)
            .template(self.template)
            .solver(self.solver)
            .budget(self.budget, self.seed)
            .generator(self.generator)
            .fastpath(self.fastpath)
            .cache_dir(cache_dir)
        )
        if self.adaptive_rounds is not None:
            adaptive_settings = dict(
                rounds=self.effective_rounds(),
                batch=self.effective_batch(),
            )
            if self.stop is not None:
                adaptive_settings["stop"] = self.stop
            pipeline.adaptive(**adaptive_settings)
        if self.restriction is not None:
            pipeline.restrict(self.restriction)
        if self.verify is not None:
            pipeline.verify(self.verify)
        if self.retries is not None:
            # N retries == N+1 attempts, the CLI/runner spelling.
            pipeline.retry(self.retries + 1)
        if self.shard_timeout is not None:
            pipeline.timeout(self.shard_timeout)
        if executor is not None:
            pipeline.executor(executor, processes=processes, shard_size=shard_size)
        if trace_path is not None:
            pipeline.trace(trace_path)
        return pipeline


#: Cell fields an ``overrides`` entry may replace.
_OVERRIDABLE = tuple(f.name for f in fields(CampaignCell))


@dataclass
class CampaignSpec:
    """A declarative grid of pipeline configurations.

    ``expand()`` produces the cross product of all axis value lists as
    :class:`CampaignCell`\\ s — overrides applied, excluded cells
    dropped, duplicates (e.g. collapsed by an override) removed — in a
    deterministic order: the axes nest left-to-right as declared in
    :data:`AXES`, so the last axis (seed) varies fastest.
    """

    name: str
    cores: Sequence[str] = ("ibex",)
    attackers: Sequence[str] = ("retirement-timing",)
    templates: Sequence[str] = ("riscv-rv32im",)
    restrictions: Sequence[Optional[str]] = (None,)
    solvers: Sequence[str] = ("scipy-milp",)
    generators: Sequence[str] = ("random",)
    budgets: Sequence[int] = (1000,)
    seeds: Sequence[int] = (0,)
    #: Applied to every cell (overridable per axis value): ``None``
    #: keeps cells on the classic one-shot pipeline, ``n`` runs each
    #: cell as an adaptive loop of up to ``n`` rounds with per-round
    #: batches of ``batch`` (default: budget split across rounds) and
    #: the ``stop`` stopping rule (default: contract-stable).
    adaptive_rounds: Optional[int] = None
    batch: Optional[int] = None
    stop: Optional[str] = None
    fastpath: "bool | str" = True
    verify: Optional[int] = None
    #: Fault tolerance, applied to every cell (overridable per axis
    #: value): ``retries`` grants each cell (and each of its evaluation
    #: shards) that many retries before quarantine; ``shard_timeout``
    #: arms the per-shard watchdog.
    retries: Optional[int] = None
    shard_timeout: Optional[float] = None
    #: Trace file every cell (and the runner itself) appends spans to.
    #: Pure observability: not a cell axis, never part of any cell
    #: identity or cache key — tracing on and off produce identical
    #: results.  ``CampaignRunner``'s ``trace`` argument overrides it.
    trace_path: Optional[str] = None
    #: Axis value -> cell-field replacements, applied to every cell
    #: carrying that value on any axis (e.g. ``{"cva6": {"budget":
    #: 3000}}``).
    overrides: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: Cells to drop: a predicate or partial axis dicts (see module
    #: docstring).
    exclude: ExcludeLike = None

    def grid_shape(self) -> Dict[str, int]:
        """Axis -> declared value count (before overrides/excludes)."""
        return {
            "core": len(self.cores),
            "attacker": len(self.attackers),
            "template": len(self.templates),
            "restriction": len(self.restrictions),
            "solver": len(self.solvers),
            "generator": len(self.generators),
            "budget": len(self.budgets),
            "seed": len(self.seeds),
        }

    def expand(self) -> List[CampaignCell]:
        """The grid as a deduplicated, validated list of cells."""
        self._validate()
        cells: List[CampaignCell] = []
        seen = set()
        for (
            core,
            attacker,
            template,
            restriction,
            solver,
            generator,
            budget,
            seed,
        ) in product(
            self.cores,
            self.attackers,
            self.templates,
            self.restrictions,
            self.solvers,
            self.generators,
            self.budgets,
            self.seeds,
        ):
            cell = CampaignCell(
                core=core,
                attacker=attacker,
                template=template,
                restriction=restriction,
                solver=solver,
                budget=int(budget),
                seed=int(seed),
                generator=generator,
                adaptive_rounds=self.adaptive_rounds,
                batch=self.batch,
                stop=self.stop,
                fastpath=self.fastpath,
                verify=self.verify,
                retries=self.retries,
                shard_timeout=self.shard_timeout,
            )
            cell = self._apply_overrides(cell)
            if cell in seen or self._excluded(cell):
                continue
            seen.add(cell)
            cells.append(cell)
        if not cells:
            raise ValueError(
                "campaign %r expands to zero cells (all excluded?)" % self.name
            )
        return cells

    # -- expansion helpers ---------------------------------------------

    def _apply_overrides(self, cell: CampaignCell) -> CampaignCell:
        for axis in AXES:
            value = getattr(cell, axis)
            changes = self.overrides.get(value) if isinstance(value, str) else None
            if changes:
                cell = replace(cell, **dict(changes))
        return cell

    def _excluded(self, cell: CampaignCell) -> bool:
        if self.exclude is None:
            return False
        if callable(self.exclude):
            return bool(self.exclude(cell))
        for match in self.exclude:
            if all(cell.axis(axis) == value for axis, value in match.items()):
                return True
        return False

    def _validate(self) -> None:
        """Fail fast on empty axes, unknown names, bad overrides."""
        from repro.pipeline.registries import REGISTRIES

        if not self.name:
            raise ValueError("a campaign needs a non-empty name")
        named_axes = (
            ("cores", self.cores, REGISTRIES["cores"]),
            ("attackers", self.attackers, REGISTRIES["attackers"]),
            ("templates", self.templates, REGISTRIES["templates"]),
            ("solvers", self.solvers, REGISTRIES["solvers"]),
            ("generators", self.generators, REGISTRIES["generators"]),
        )
        for axis_name, values, registry in named_axes:
            if not values:
                raise ValueError("campaign axis %r is empty" % axis_name)
            for value in values:
                if value not in registry:
                    raise ValueError(
                        "campaign axis %r: unknown %s %r (registered: %s)"
                        % (axis_name, registry.kind, value, ", ".join(registry.names()))
                    )
        restriction_registry = REGISTRIES["restrictions"]
        if not self.restrictions:
            raise ValueError("campaign axis 'restrictions' is empty")
        for value in self.restrictions:
            if value is not None and value not in restriction_registry:
                raise ValueError(
                    "campaign axis 'restrictions': unknown restriction %r "
                    "(registered: %s, or None for the unrestricted template)"
                    % (value, ", ".join(restriction_registry.names()))
                )
        if not self.budgets or not self.seeds:
            raise ValueError("campaign axes 'budgets'/'seeds' must be non-empty")
        for budget in self.budgets:
            if int(budget) < 0:
                raise ValueError("campaign budgets must be non-negative")
        if self.adaptive_rounds is not None and self.adaptive_rounds < 1:
            raise ValueError("adaptive_rounds must be at least 1")
        if self.batch is not None and self.batch < 1:
            raise ValueError("batch must be at least 1")
        if self.adaptive_rounds is None and (
            self.batch is not None or self.stop is not None
        ):
            raise ValueError(
                "batch/stop only apply to adaptive cells: set adaptive_rounds"
            )
        if self.adaptive_rounds is not None and self.batch is None:
            for budget in self.budgets:
                if int(budget) < 1:
                    raise ValueError(
                        "adaptive cells derive their per-round batch from "
                        "the budget: budgets must be positive (or set an "
                        "explicit batch)"
                    )
        if self.retries is not None and self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.stop is not None:
            stopping_registry = REGISTRIES["stopping-rules"]
            if self.stop not in stopping_registry:
                raise ValueError(
                    "unknown stopping rule %r (registered: %s)"
                    % (self.stop, ", ".join(stopping_registry.names()))
                )
        known_values = set()
        for values in (
            self.cores,
            self.attackers,
            self.templates,
            self.solvers,
            self.generators,
        ):
            known_values.update(values)
        known_values.update(v for v in self.restrictions if v is not None)
        for target, changes in self.overrides.items():
            if target not in known_values:
                raise ValueError(
                    "override target %r matches no declared axis value" % target
                )
            for field_name in changes:
                if field_name not in _OVERRIDABLE:
                    raise ValueError(
                        "override for %r sets unknown cell field %r (fields: %s)"
                        % (target, field_name, ", ".join(_OVERRIDABLE))
                    )


def filter_cells(
    cells: Iterable[CampaignCell], filters: Mapping[str, str]
) -> List[CampaignCell]:
    """Cells matching every ``axis=value`` filter (values compared as
    strings, so ``budget=500`` works from the command line; ``restriction=-``
    matches the unrestricted template)."""
    selected = []
    for cell in cells:
        for axis, wanted in filters.items():
            value = cell.axis(axis)
            rendered = "-" if value is None else str(value)
            if rendered != str(wanted):
                break
        else:
            selected.append(cell)
    return selected
