"""Campaign-manifest checkpointing: append-only JSONL of finished cells.

The cell-granularity sibling of the evaluation shard manifest, built
on the same :class:`repro.checkpoint.JsonlCheckpoint` mechanics: line
1 binds the file to the campaign name, every further line is one
completed cell's :class:`~repro.campaign.result.CellOutcome`::

    {"manifest": "campaign-cells", "version": 1, "key": {"campaign": "sweep"}}
    {"cell": {"core": "ibex", ...}, "atom_ids": [...], ...}

Cells are keyed by their full identity (every axis plus fastpath and
the verification budget), while the header key deliberately covers
only the campaign name — exactly as the shard manifest omits the total
budget.  Extending a campaign's grid (more budgets, a new core) or
re-running after a kill therefore reuses every stored cell whose
identity still appears in the plan, and runs only the rest.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.campaign.result import CellOutcome
from repro.campaign.spec import CampaignCell
from repro.checkpoint import CheckpointKeyError, JsonlCheckpoint
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.template import template_digest


class CampaignKeyError(CheckpointKeyError):
    """The manifest on disk belongs to a different campaign."""


class CampaignManifest(JsonlCheckpoint):
    """An append-only JSONL checkpoint of completed campaign cells."""

    kind = "campaign-cells"
    description = "campaign manifest"
    subject = "campaign"
    hint = "pass a different --resume path"
    key_error = CampaignKeyError

    def __init__(self, path: str, campaign_name: str):
        #: Completed cell outcomes loaded from disk, keyed by
        #: :meth:`CampaignCell.key`.
        self.completed: Dict[str, CellOutcome] = {}
        super().__init__(path, {"campaign": campaign_name})

    # -- checkpoint payload --------------------------------------------

    def _accept(self, entry: dict) -> None:
        outcome = CellOutcome.from_dict(entry, resumed=True)
        self.completed[outcome.cell.key()] = outcome

    def _entries(self) -> Iterable[dict]:
        for outcome in self.completed.values():
            yield outcome.to_dict()

    def append_cell(self, outcome: CellOutcome) -> None:
        """Checkpoint one completed cell (flushed immediately)."""
        self._append(outcome.to_dict())
        self.completed[outcome.cell.key()] = outcome

    def reset(self) -> None:
        """Drop every stored cell (a fresh, non-resuming campaign run)."""
        self.completed.clear()
        self._rewrite()

    # -- plan intersection ---------------------------------------------

    def stored(self, cells: Sequence[CampaignCell]) -> Dict[str, CellOutcome]:
        """The subset of ``cells`` already completed in this manifest,
        keyed by cell key.  Matching is by full cell identity — a cell
        whose budget, solver, or verification setting changed simply
        reuses nothing, which is always sound.

        A cell names its template by registry name only, so each
        stored outcome also carries a digest of the template's atom
        list; an outcome computed under a differently-defined template
        of the same name (or an old manifest without digests) is not
        reused."""
        digests: Dict[str, str] = {}
        reused = {}
        for cell in cells:
            key = cell.key()
            outcome = self.completed.get(key)
            if outcome is None:
                continue
            if cell.template not in digests:
                digests[cell.template] = template_digest(
                    TEMPLATE_REGISTRY.create(cell.template)
                )
            if outcome.template_digest != digests[cell.template]:
                continue
            reused[key] = outcome
        return reused

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CampaignManifest(%s, %d cells)" % (self.path, len(self.completed))


def load_outcomes(
    path: str, campaign_name: str, cells: Sequence[CampaignCell]
) -> List[CellOutcome]:
    """The stored outcomes for ``cells``, in plan order (for
    ``campaign report``/``status`` without executing anything)."""
    manifest = CampaignManifest(path, campaign_name)
    stored = manifest.stored(cells)
    return [stored[cell.key()] for cell in cells if cell.key() in stored]
