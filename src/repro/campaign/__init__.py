"""``repro.campaign`` — resumable grid sweeps over pipeline configs.

The paper's headline results are grids: every figure and table sweeps
contract templates, attackers, and budgets over a core and compares
the synthesized contracts.  This package treats such a grid as one
unit of work::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="ibex-vs-cva6",
        cores=("ibex", "cva6"),
        attackers=("retirement-timing", "cache-state"),
        budgets=(500, 2000),
        overrides={"cva6": {"budget": 1500}},   # denser ILP, smaller set
        exclude=[{"core": "ibex", "attacker": "cache-state"}],
        verify=0,
    )
    result = run_campaign(spec, results_dir="results", max_parallel_cells=2)
    print(result.render())                      # cross-config comparison table

Layer map:

- :mod:`~repro.campaign.spec` — :class:`CampaignSpec` /
  :class:`CampaignCell`: the declarative grid and its expansion
  (overrides, excludes, registry validation).
- :mod:`~repro.campaign.runner` — :class:`CampaignRunner` /
  :func:`run_campaign`: execution with cross-cell dataset-cache reuse
  (exact key *and* prefix-of-larger-budget), concurrent cells under a
  per-campaign process budget, and cell-granularity resumption.
- :mod:`~repro.campaign.manifest` — :class:`CampaignManifest`: the
  JSONL checkpoint (same :mod:`repro.checkpoint` mechanics as the
  evaluation shard manifest).
- :mod:`~repro.campaign.result` — :class:`CellOutcome` /
  :class:`CampaignResult`: persistable per-cell summaries and the
  comparison tables rendered through :mod:`repro.reporting`.

The experiment drivers (``fig2``, ``fig3``, ``table3``, the contract
tables) are campaign specs resolved through the plugin registries, and
the CLI exposes the same surface as ``repro-synthesize campaign
run/status/report``.
"""

from repro.campaign.manifest import CampaignKeyError, CampaignManifest, load_outcomes
from repro.campaign.result import CampaignResult, CellOutcome, varying_axes
from repro.campaign.runner import (
    CampaignRunner,
    CampaignStatus,
    CellProgress,
    run_campaign,
)
from repro.campaign.spec import AXES, CampaignCell, CampaignSpec, filter_cells

__all__ = [
    "AXES",
    "CampaignCell",
    "CampaignKeyError",
    "CampaignManifest",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "CellOutcome",
    "CellProgress",
    "filter_cells",
    "load_outcomes",
    "run_campaign",
    "varying_axes",
]
