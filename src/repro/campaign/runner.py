"""The campaign runner: a grid of pipeline runs as one resumable unit.

:class:`CampaignRunner` executes every cell of a
:class:`~repro.campaign.spec.CampaignSpec` through
:class:`~repro.pipeline.SynthesisPipeline`, adding the three things a
single pipeline cannot provide:

**Cross-cell dataset reuse.**  Cells sharing a dataset group (core,
template, attacker, seed, extraction engine) are provisioned under one
lock: the first cell of a group evaluates and populates the pipeline
dataset cache, later cells hit it, and a cell whose budget is *smaller*
than an already-cached sibling derives its dataset as a prefix (test
cases are generated per test id, so ``dataset(n).prefix(m) ==
dataset(m)`` for the same stream).  Execution is ordered
largest-budget-first within each group, and whichever sibling
provisions first generates the group's largest *pending* budget, so
one generation serves the whole group even under parallel scheduling.

**Concurrent cells under a process budget.**  ``max_parallel_cells``
cells run on a thread pool; each cell's evaluation phase may fan out
through an ``EXECUTOR_REGISTRY`` backend, with the per-campaign
``process_budget`` divided evenly among concurrent cells so a 2x8 grid
cannot fork 16 pools at once.

**Cell-granularity resumption.**  Completed cells are appended to a
:class:`~repro.campaign.manifest.CampaignManifest`; a killed (or
grid-extended) campaign re-runs only the cells missing from it.
"""

from __future__ import annotations

import os
import re
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.campaign.manifest import CampaignManifest
from repro.campaign.result import CampaignResult, CellOutcome
from repro.campaign.spec import CampaignCell, CampaignSpec, filter_cells
from repro.evaluation.backends.base import EvaluationExecutor
from repro.evaluation.results import EvaluationDataset
from repro.metrics.registry import Metrics, current_metrics, install_metrics
from repro.metrics.runs import record_run
from repro.pipeline import PipelineResult, SynthesisPipeline
from repro.reporting.tables import render_comparison_table
from repro.resilience.injection import maybe_inject
from repro.resilience.quarantine import FailureLog, FailureRecord
from repro.resilience.retry import RetryPolicy, is_retryable
from repro.trace.tracer import Tracer

#: Optional per-cell progress callback.
CellCallback = Callable[["CellProgress"], None]

#: Dataset cache file names, as produced by ``SynthesisPipeline.cache_path``:
#: ``<stem>-n<count>[-ref].json`` where the stem carries core, template
#: digest, attacker, and seed.
_CACHE_NAME = re.compile(r"^(?P<stem>.+)-n(?P<count>\d+)(?P<ref>-ref)?\.json$")


@dataclass(frozen=True)
class CellProgress:
    """One per-cell progress event, emitted as cells complete."""

    cell: CampaignCell
    outcome: CellOutcome
    completed_cells: int
    total_cells: int
    #: True when the cell came from the campaign manifest instead of
    #: being executed in this run.
    resumed: bool
    elapsed_seconds: float


@dataclass
class CampaignStatus:
    """Manifest-derived completion state (``campaign status``)."""

    name: str
    manifest_path: Optional[str]
    completed: List[CampaignCell]
    pending: List[CampaignCell]

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.pending)

    def render(self) -> str:
        rows = [[cell.label(), "done"] for cell in self.completed]
        rows += [[cell.label(), "pending"] for cell in self.pending]
        table = render_comparison_table(
            ["cell", "state"],
            rows,
            title="Campaign %r: %d/%d cells completed%s"
            % (
                self.name,
                len(self.completed),
                self.total,
                " (manifest: %s)" % self.manifest_path if self.manifest_path else "",
            ),
        )
        return table


class CampaignRunner:
    """Executes a :class:`CampaignSpec` cell by cell, resumably.

    Parameters mirror the experiment drivers: ``results_dir`` hosts the
    dataset cache (``cache=False`` disables caching *and* cross-cell
    reuse — every cell then measures live, which is what the timing
    experiments want) and the derived manifest path.  ``manifest`` is
    ``True`` (derive ``<results_dir>/campaigns/<name>.cells.jsonl``),
    a path, or ``False``; ``resume=False`` drops previously stored
    cells instead of reusing them.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        results_dir: str = "results",
        cache: bool = True,
        executor: Union[None, str, "EvaluationExecutor"] = None,
        process_budget: Optional[int] = None,
        shard_size: Optional[int] = None,
        max_parallel_cells: int = 1,
        manifest: Union[bool, str] = True,
        resume: bool = True,
        filters: Optional[Mapping[str, str]] = None,
        progress: Optional[CellCallback] = None,
        keep_results: bool = True,
        trace: Union[None, str, Tracer] = None,
    ):
        if max_parallel_cells < 1:
            raise ValueError("max_parallel_cells must be at least 1")
        if process_budget is not None and process_budget < 1:
            raise ValueError("process_budget must be at least 1")
        self.spec = spec
        self.results_dir = results_dir
        self.cache = cache
        #: Evaluation executor backend for every cell — a registry
        #: name or an :class:`EvaluationExecutor` instance (e.g. a
        #: configured workqueue broker); a process budget without an
        #: explicit backend implies the default pool.
        self.executor = executor or ("multiprocess" if process_budget else None)
        self.process_budget = process_budget
        self.shard_size = shard_size
        self.max_parallel_cells = max_parallel_cells
        self.manifest = manifest
        self.resume = resume
        self.filters = dict(filters or {})
        self.progress = progress
        self.keep_results = keep_results
        self._group_locks: Dict[tuple, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        #: Failure records of the current run; ``_execute`` appends
        #: from pool threads, so mutation goes through ``_failures_lock``.
        self._failures: List[FailureRecord] = []
        self._failures_lock = threading.Lock()
        self._failure_log: Optional[FailureLog] = None
        #: Campaign-level trace emitter: ``campaign-start``/``-end``
        #: events, one ``cell`` span per executed cell, a
        #: ``cell-resumed`` event per manifest-reused cell.  ``trace``
        #: is a path, a ready :class:`Tracer` (the contract service
        #: passes a child of its own), or ``None`` — which falls back
        #: to ``spec.trace_path``.  Cell pipelines get the same path,
        #: so one file interleaves every layer of the campaign.
        if isinstance(trace, Tracer):
            self.tracer = trace
        else:
            self.tracer = Tracer(
                trace if trace is not None else spec.trace_path,
                source="campaign",
            )

    # -- configuration surface -----------------------------------------

    def cells(self) -> List[CampaignCell]:
        """The (filtered) cell plan, in spec expansion order."""
        cells = self.spec.expand()
        if self.filters:
            cells = filter_cells(cells, self.filters)
            if not cells:
                raise ValueError(
                    "campaign filters %r match none of the %d cells"
                    % (self.filters, len(self.spec.expand()))
                )
        return cells

    def cache_dir(self) -> Optional[str]:
        if not self.cache:
            return None
        path = os.path.join(self.results_dir, "cache")
        os.makedirs(path, exist_ok=True)
        return path

    def manifest_path(self) -> Optional[str]:
        """The campaign manifest file, or ``None`` when disabled."""
        if self.manifest is False:
            return None
        if isinstance(self.manifest, str):
            return self.manifest
        return os.path.join(
            self.results_dir, "campaigns", "%s.cells.jsonl" % self.spec.name
        )

    def quarantine_path(self) -> str:
        """The campaign's quarantine :class:`FailureLog` file (created
        lazily, on the first quarantined cell)."""
        return os.path.join(
            self.results_dir, "campaigns", "%s.quarantine.jsonl" % self.spec.name
        )

    def cell_pipeline(
        self, cell: CampaignCell, processes: Optional[int] = None
    ) -> SynthesisPipeline:
        """The pipeline for one cell, under this runner's settings."""
        return cell.pipeline(
            cache_dir=self.cache_dir(),
            executor=self.executor,
            processes=processes,
            shard_size=self.shard_size,
            trace_path=self.tracer.path,
        )

    def status(self) -> CampaignStatus:
        """Completion state from the manifest, without executing."""
        cells = self.cells()
        path = self.manifest_path()
        stored = {}
        if path is not None and os.path.exists(path):
            stored = CampaignManifest(path, self.spec.name).stored(cells)
        completed = [cell for cell in cells if cell.key() in stored]
        pending = [cell for cell in cells if cell.key() not in stored]
        return CampaignStatus(
            name=self.spec.name,
            manifest_path=path,
            completed=completed,
            pending=pending,
        )

    def report(self) -> CampaignResult:
        """A :class:`CampaignResult` built purely from stored cells."""
        cells = self.cells()
        path = self.manifest_path()
        stored = {}
        if path is not None and os.path.exists(path):
            stored = CampaignManifest(path, self.spec.name).stored(cells)
        done = [cell for cell in cells if cell.key() in stored]
        return CampaignResult(
            spec=self.spec,
            cells=done,
            outcomes=[stored[cell.key()] for cell in done],
            manifest_path=path,
            pipeline_factory=self.cell_pipeline,
        )

    # -- execution -----------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute every pending cell and return the aggregate result.

        Traced runs own the process-wide metrics registry for their
        duration (cell pipelines accumulate into it instead of
        installing their own) and append one campaign record to the
        results root's run-history index.
        """
        previous_metrics = None
        if self.tracer.enabled and not current_metrics().enabled:
            previous_metrics = install_metrics(Metrics(self.tracer))
        try:
            result = self._run()
        finally:
            if previous_metrics is not None:
                current_metrics().flush(final=True)
                install_metrics(previous_metrics)
        cases = sum(outcome.test_cases for outcome in result.outcomes)
        record_run(
            self.results_dir,
            kind="campaign",
            label=self.spec.name,
            seconds=result.total_seconds,
            cases=cases,
            phases={
                "cell:%s" % outcome.cell.label(): sum(
                    outcome.timings.values()
                )
                for outcome in result.outcomes
                if not outcome.resumed
            },
            extra={
                "cells": len(result.outcomes),
                "reused": sum(
                    1 for outcome in result.outcomes if outcome.dataset_reused
                ),
            },
        )
        return result

    def _run(self) -> CampaignResult:
        started = time.perf_counter()
        with self._failures_lock:
            self._failures = []
            self._failure_log = None
        cells = self.cells()
        path = self.manifest_path()
        manifest = CampaignManifest(path, self.spec.name) if path else None
        if manifest is not None and not self.resume:
            manifest.reset()
        stored = manifest.stored(cells) if manifest is not None else {}
        self.tracer.event(
            "campaign-start", campaign=self.spec.name, cells=len(cells)
        )

        outcomes: Dict[str, CellOutcome] = {}
        pipeline_results: Dict[str, PipelineResult] = {}
        completed = 0

        def emit(outcome: CellOutcome, resumed: bool) -> None:
            nonlocal completed
            completed += 1
            if self.progress is not None:
                self.progress(
                    CellProgress(
                        cell=outcome.cell,
                        outcome=outcome,
                        completed_cells=completed,
                        total_cells=len(cells),
                        resumed=resumed,
                        elapsed_seconds=time.perf_counter() - started,
                    )
                )

        for cell in cells:
            key = cell.key()
            if key in stored:
                outcomes[key] = stored[key]
                self.tracer.event("cell-resumed", cell=cell.label())
                emit(stored[key], resumed=True)
        pending = [cell for cell in cells if cell.key() not in outcomes]

        def handle(
            cell: CampaignCell, result: PipelineResult, dataset_reused: bool
        ) -> None:
            outcome = CellOutcome.from_pipeline_result(
                cell, result, dataset_reused=dataset_reused
            )
            if manifest is not None:
                manifest.append_cell(outcome)
            outcomes[cell.key()] = outcome
            if self.keep_results:
                pipeline_results[cell.key()] = result
            if result.failures:
                # Surface each cell's shard-level retries/quarantines
                # on the campaign result too.
                with self._failures_lock:
                    self._failures.extend(result.failures)
            emit(outcome, resumed=False)

        # Largest budget first within each dataset group, so smaller
        # sibling budgets derive their dataset by prefix instead of
        # regenerating (the plan order of the result is unaffected).
        # group_max carries each group's largest pending budget, so the
        # invariant survives parallel scheduling too: whichever sibling
        # provisions first evaluates the group maximum once and every
        # other budget is derived from it.
        ordered = sorted(pending, key=lambda cell: (cell.dataset_group(), -cell.budget))
        group_max: Dict[tuple, int] = {}
        for cell in pending:
            group = cell.dataset_group()
            group_max[group] = max(group_max.get(group, 0), cell.budget)
        if self.max_parallel_cells == 1 or len(ordered) <= 1:
            for cell in ordered:
                executed = self._execute(cell, 1, group_max)
                if executed is not None:  # None → quarantined, skip
                    handle(cell, *executed)
        else:
            self._run_parallel(ordered, group_max, handle)

        self.tracer.event(
            "campaign-end",
            campaign=self.spec.name,
            completed=completed,
            seconds=round(time.perf_counter() - started, 6),
        )
        return CampaignResult(
            spec=self.spec,
            cells=cells,
            # Quarantined cells have no outcome — they live in
            # ``failures`` (kind="cell") and the quarantine log.
            outcomes=[
                outcomes[cell.key()] for cell in cells if cell.key() in outcomes
            ],
            manifest_path=path,
            total_seconds=time.perf_counter() - started,
            pipeline_results=pipeline_results,
            pipeline_factory=self.cell_pipeline,
            failures=list(self._failures),
        )

    def _run_parallel(
        self,
        ordered: List[CampaignCell],
        group_max: Dict[tuple, int],
        handle: Callable[[CampaignCell, PipelineResult, bool], None],
    ) -> None:
        """Fan pending cells out on a thread pool.  Each cell is
        handled (manifest append, progress) in the submitting thread
        the moment it completes, so a killed parallel campaign keeps
        every finished cell.  On a cell failure, completed siblings are
        still checkpointed, the not-yet-started rest is cancelled, and
        the failure re-raises.  A ``KeyboardInterrupt`` (almost always
        delivered inside the ``wait`` call, where this thread spends
        its time) likewise flushes every already-completed cell to the
        manifest before propagating — Ctrl-C must never cost finished
        work."""
        workers = min(self.max_parallel_cells, len(ordered))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(self._execute, cell, workers, group_max): cell
                for cell in ordered
            }
            remaining = set(futures)

            def consume(future) -> None:
                executed = future.result()
                if executed is not None:  # None → quarantined, skip
                    handle(futures[future], *executed)

            try:
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    failure = None
                    for future in done:
                        error = future.exception()
                        if error is not None:
                            failure = error
                            continue
                        consume(future)
                    if failure is not None:
                        for pending_future in remaining:
                            pending_future.cancel()
                        raise failure
            except KeyboardInterrupt:
                # The interrupt hit between a future completing and its
                # handle() — the cells in ``remaining`` that are already
                # done would silently lose their results.  Cancel the
                # rest, checkpoint the finished ones, then propagate.
                for future in remaining:
                    future.cancel()
                for future in remaining:
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        consume(future)
                raise

    def _execute(
        self, cell: CampaignCell, concurrent: int, group_max: Dict[tuple, int]
    ) -> Optional[Tuple[PipelineResult, bool]]:
        """Run one cell's pipeline; returns ``(result, dataset_reused)``,
        or ``None`` when the cell exhausted its retries and was
        quarantined (recorded durably; the campaign continues)."""
        processes = None
        if self.process_budget is not None:
            processes = max(1, self.process_budget // max(1, concurrent))
        policy = (
            RetryPolicy.from_retries(cell.retries) if cell.retries is not None else None
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                cell_span = self.tracer.span(
                    "cell", cell=cell.label(), attempt=attempt
                )
                with cell_span:
                    maybe_inject("cell", cell=cell.label(), attempt=attempt)
                    pipeline = self.cell_pipeline(cell, processes=processes)
                    dataset_reused = self._provision_dataset(
                        pipeline, cell, group_max
                    )
                    result = pipeline.run()
                    cell_span.add(
                        atoms=result.atom_count,
                        false_positives=result.false_positives,
                        cases=len(result.dataset),
                        dataset_reused=dataset_reused,
                    )
                return result, dataset_reused
            except Exception as error:
                if policy is None or not is_retryable(error):
                    raise
                if attempt >= policy.max_attempts:
                    self._record_failure(
                        FailureRecord(
                            kind="cell",
                            unit={"cell": cell.label()},
                            error=repr(error),
                            attempts=attempt,
                        ),
                        durable=True,
                    )
                    return None
                self._record_failure(
                    FailureRecord(
                        kind="retry",
                        unit={"cell": cell.label()},
                        error=repr(error),
                        attempts=attempt,
                    )
                )
                time.sleep(policy.delay(attempt))

    def _record_failure(self, record: FailureRecord, durable: bool = False) -> None:
        """Collect one failure record (thread-safe; ``_execute`` runs
        on pool threads), appending quarantines to the failure log."""
        self.tracer.event(
            "failure",
            failure=record.kind,
            unit=record.unit,
            error=record.error,
            attempts=record.attempts,
        )
        with self._failures_lock:
            self._failures.append(record)
            if durable:
                if self._failure_log is None:
                    self._failure_log = FailureLog(
                        self.quarantine_path(), {"campaign": self.spec.name}
                    )
                self._failure_log.append_record(record)

    # -- cross-cell dataset provisioning --------------------------------

    def _group_lock(self, cell: CampaignCell) -> threading.Lock:
        with self._locks_guard:
            return self._group_locks.setdefault(cell.dataset_group(), threading.Lock())

    def _provision_dataset(
        self,
        pipeline: SynthesisPipeline,
        cell: CampaignCell,
        group_max: Optional[Dict[tuple, int]] = None,
    ) -> bool:
        """Ensure the cell's dataset cache entry exists before its
        pipeline runs; returns ``True`` when the cell performed zero
        generation work (exact cache hit or prefix of a larger cached
        budget).  Serialized per dataset group so concurrent sibling
        cells never evaluate one corpus twice.

        When the group has a pending sibling with a *larger* budget
        (``group_max``), generation targets that budget instead — this
        cell takes a prefix and the sibling later finds its exact
        cache entry — so the one-generation-per-group invariant holds
        even when parallel scheduling runs a small budget first."""
        cache_path = pipeline.cache_path()
        if cache_path is None:
            return False
        with self._group_lock(cell):
            if os.path.exists(cache_path):
                return True
            superset = self._superset_cache_path(cache_path, cell.budget)
            if superset is not None:
                EvaluationDataset.load(superset).prefix(cell.budget).save(cache_path)
                current_metrics().counter("dataset.prefix.derived").inc()
                return True
            target = max(cell.budget, (group_max or {}).get(cell.dataset_group(), 0))
            if target > cell.budget:
                # Evaluate the group's largest pending budget once,
                # under *its* cache key, and serve this cell a prefix.
                self.cell_pipeline(replace(cell, budget=target)).evaluate()
                EvaluationDataset.load(
                    self._superset_cache_path(cache_path, cell.budget)
                ).prefix(cell.budget).save(cache_path)
                current_metrics().counter("dataset.prefix.derived").inc()
                return False
            pipeline.evaluate()  # populates the cache for run() and siblings
            return False

    @staticmethod
    def _superset_cache_path(cache_path: str, budget: int) -> Optional[str]:
        """A cached dataset of the same stream with a larger budget, if
        any (smallest such superset, to minimize load cost)."""
        directory, name = os.path.split(cache_path)
        match = _CACHE_NAME.match(name)
        if match is None or not os.path.isdir(directory):
            return None
        best: Optional[Tuple[int, str]] = None
        for candidate in os.listdir(directory):
            other = _CACHE_NAME.match(candidate)
            if (
                other is None
                or other.group("stem") != match.group("stem")
                or other.group("ref") != match.group("ref")
            ):
                continue
            count = int(other.group("count"))
            if count > budget and (best is None or count < best[0]):
                best = (count, os.path.join(directory, candidate))
        return best[1] if best is not None else None


def run_campaign(spec: CampaignSpec, **kwargs) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(spec, **kwargs).run()``."""
    return CampaignRunner(spec, **kwargs).run()
