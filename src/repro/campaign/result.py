"""Campaign outcomes: per-cell summaries and cross-config tables.

A :class:`CellOutcome` is the manifest-persistable distillation of one
cell's :class:`~repro.pipeline.PipelineResult` — the selected atom
ids, the synthesis diagnostics, the verification verdict, and the
phase timings — everything the comparison tables and the experiment
drivers need without holding the evaluated dataset.  The contract
itself is reconstructible (``Contract(template, atom_ids)``) because
cells address templates by registry name.

:class:`CampaignResult` aggregates the outcomes of one campaign run
and renders them as a cross-configuration comparison table through
:mod:`repro.reporting` — only the axes that actually vary across the
grid become columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import AXES, CampaignCell, CampaignSpec
from repro.contracts.riscv_template import TEMPLATE_REGISTRY
from repro.contracts.template import Contract, template_digest
from repro.pipeline import PipelineResult, SynthesisPipeline
from repro.reporting.tables import render_comparison_table
from repro.resilience.quarantine import FailureRecord

#: Phase-timing keys persisted per cell (seconds).
TIMING_KEYS = (
    "setup",
    "evaluation",
    "simulation",
    "extraction",
    "synthesis",
    "verification",
    "total",
)


@dataclass(frozen=True)
class CellOutcome:
    """The persistable summary of one executed campaign cell."""

    cell: CampaignCell
    #: Sorted atom ids of the synthesized contract.
    atom_ids: Tuple[int, ...]
    false_positives: int
    test_cases: int
    distinguishable: int
    optimal: bool
    solver_name: str
    #: Verification verdict (``None`` when verification was skipped).
    satisfied: Optional[bool]
    #: Phase name -> wall seconds (:data:`TIMING_KEYS`).
    timings: Dict[str, float]
    #: The cell's dataset came from the pipeline cache.
    cache_hit: bool
    #: The dataset was provisioned by an earlier cell of this campaign
    #: (exact cache key or prefix of a larger cached budget) — the
    #: cell performed zero generation work.
    dataset_reused: bool
    #: The outcome came from the campaign manifest, not this run.
    resumed: bool = False
    #: Digest of the template's atom list at execution time.  The cell
    #: names its template by registry name only; the manifest compares
    #: this digest against the currently registered template so an
    #: outcome computed under a differently-defined template of the
    #: same name is re-run instead of silently resumed.
    template_digest: str = ""
    #: Structured failure records of the cell's pipeline run (shard
    #: retries/quarantines, executor downgrades); empty on clean runs.
    failures: Tuple[FailureRecord, ...] = ()

    @property
    def atom_count(self) -> int:
        return len(self.atom_ids)

    def contract(self) -> Contract:
        """Rebuild the synthesized contract from the registry template."""
        template = TEMPLATE_REGISTRY.create(self.cell.template)
        return Contract(template, self.atom_ids)

    @staticmethod
    def from_pipeline_result(
        cell: CampaignCell, result: PipelineResult, dataset_reused: bool = False
    ) -> "CellOutcome":
        timings = result.timings
        return CellOutcome(
            cell=cell,
            atom_ids=tuple(sorted(result.contract.atom_ids)),
            false_positives=result.false_positives,
            test_cases=len(result.dataset),
            distinguishable=len(result.dataset.distinguishable),
            optimal=result.synthesis.solver_result.optimal,
            solver_name=result.synthesis.solver_result.solver_name,
            satisfied=result.satisfied,
            timings={
                "setup": timings.setup_seconds,
                "evaluation": timings.evaluation_seconds,
                "simulation": timings.simulation_seconds,
                "extraction": timings.extraction_seconds,
                "synthesis": timings.synthesis_seconds,
                "verification": timings.verification_seconds,
                "total": timings.total_seconds,
            },
            cache_hit=timings.cache_hit,
            dataset_reused=dataset_reused,
            template_digest=template_digest(result.contract.template),
            failures=tuple(result.failures),
        )

    # -- manifest serialization ----------------------------------------

    def to_dict(self) -> dict:
        return {
            "cell": self.cell.identity(),
            "atom_ids": list(self.atom_ids),
            "false_positives": self.false_positives,
            "test_cases": self.test_cases,
            "distinguishable": self.distinguishable,
            "optimal": self.optimal,
            "solver_name": self.solver_name,
            "satisfied": self.satisfied,
            "timings": {key: self.timings.get(key, 0.0) for key in TIMING_KEYS},
            "cache_hit": self.cache_hit,
            "dataset_reused": self.dataset_reused,
            "template_digest": self.template_digest,
            "failures": [record.to_dict() for record in self.failures],
        }

    @staticmethod
    def from_dict(data: dict, resumed: bool = False) -> "CellOutcome":
        return CellOutcome(
            cell=CampaignCell(**data["cell"]),
            atom_ids=tuple(data["atom_ids"]),
            false_positives=data["false_positives"],
            test_cases=data["test_cases"],
            distinguishable=data["distinguishable"],
            optimal=data["optimal"],
            solver_name=data["solver_name"],
            satisfied=data["satisfied"],
            timings=dict(data["timings"]),
            cache_hit=data["cache_hit"],
            dataset_reused=data["dataset_reused"],
            resumed=resumed,
            template_digest=data.get("template_digest", ""),
            # Absent in manifests written before the resilience layer.
            failures=tuple(
                FailureRecord.from_dict(entry) for entry in data.get("failures", [])
            ),
        )


def varying_axes(cells: Sequence[CampaignCell]) -> List[str]:
    """The axes taking more than one value across ``cells`` — the
    informative columns of a comparison table."""
    axes = []
    for axis in AXES:
        if len({cell.axis(axis) for cell in cells}) > 1:
            axes.append(axis)
    return axes


@dataclass
class CampaignResult:
    """Everything one campaign run produced, in plan order."""

    spec: CampaignSpec
    cells: List[CampaignCell]
    outcomes: List[CellOutcome]
    manifest_path: Optional[str] = None
    total_seconds: float = 0.0
    #: Full pipeline results for cells executed in this run (resumed
    #: cells have outcomes only); rebuildable via :meth:`result_for`.
    pipeline_results: Dict[str, PipelineResult] = field(default_factory=dict)
    #: Rebuilds a cell's pipeline (runner-provided), for
    #: :meth:`result_for` on resumed cells.
    pipeline_factory: Optional[Callable[[CampaignCell], SynthesisPipeline]] = None
    #: Campaign-level failure records from this run: cell retries and
    #: quarantines, plus every executed cell's own pipeline failures.
    failures: List[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {outcome.cell.key(): outcome for outcome in self.outcomes}

    # -- selection -----------------------------------------------------

    def outcome_for(self, cell: CampaignCell) -> CellOutcome:
        return self._by_key[cell.key()]

    def select(self, **axes) -> List[CellOutcome]:
        """Outcomes whose cells match every ``axis=value`` keyword."""
        selected = []
        for outcome in self.outcomes:
            if all(outcome.cell.axis(axis) == value for axis, value in axes.items()):
                selected.append(outcome)
        return selected

    def outcome(self, **axes) -> CellOutcome:
        """The single outcome matching ``axes`` (raises otherwise)."""
        selected = self.select(**axes)
        if len(selected) != 1:
            raise KeyError(
                "expected exactly one cell matching %r, found %d"
                % (axes, len(selected))
            )
        return selected[0]

    def result_for(self, cell: CampaignCell) -> PipelineResult:
        """The full :class:`PipelineResult` of ``cell``.

        Cells executed in this run return their in-memory result; a
        resumed cell re-runs its pipeline (cheap when the dataset cache
        is warm — evaluation is a cache hit, only synthesis repeats).
        """
        key = cell.key()
        if key in self.pipeline_results:
            return self.pipeline_results[key]
        if self.pipeline_factory is None:
            raise KeyError(
                "no in-memory result for cell %s and no pipeline factory "
                "to rebuild it" % cell.label()
            )
        result = self.pipeline_factory(cell).run()
        self.pipeline_results[key] = result
        return result

    # -- aggregation ---------------------------------------------------

    @property
    def resumed_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.resumed)

    @property
    def quarantined_cells(self) -> List[FailureRecord]:
        """Cells dropped after exhausting their retries (no outcome)."""
        return [record for record in self.failures if record.kind == "cell"]

    def comparison_table(self) -> str:
        """The cross-configuration comparison table: one row per cell,
        one column per *varying* axis plus the synthesis metrics."""
        axes = varying_axes(self.cells) or ["core"]
        headers = list(axes) + [
            "cases",
            "dist",
            "atoms",
            "FPs",
            "optimal",
            "verified",
            "total s",
            "dataset",
        ]
        rows = []
        for outcome in self.outcomes:
            cell = outcome.cell
            row = []
            for axis in axes:
                value = cell.axis(axis)
                row.append("-" if value is None else str(value))
            if outcome.satisfied is None:
                verified = "skipped"
            else:
                verified = "yes" if outcome.satisfied else "VIOLATED"
            # "fresh" includes cells whose run() hit a cache entry the
            # cell's own provisioning just wrote — the generation work
            # still happened in this cell.
            if outcome.resumed:
                dataset = "resumed"
            elif outcome.dataset_reused:
                dataset = "reused"
            else:
                dataset = "fresh"
            row.extend(
                [
                    str(outcome.test_cases),
                    str(outcome.distinguishable),
                    str(outcome.atom_count),
                    str(outcome.false_positives),
                    "yes" if outcome.optimal else "no",
                    verified,
                    "%.3f" % outcome.timings.get("total", 0.0),
                    dataset,
                ]
            )
            rows.append(row)
        return render_comparison_table(
            headers,
            rows,
            title="Campaign %r — %d cells (%d resumed)"
            % (self.spec.name, len(self.outcomes), self.resumed_count),
        )

    def render(self) -> str:
        lines = [self.comparison_table()]
        quarantined = self.quarantined_cells
        if quarantined:
            lines.append(
                "quarantined: %d cell(s) dropped after exhausting retries (%s)"
                % (
                    len(quarantined),
                    "; ".join(
                        str(record.unit.get("cell", record.unit))
                        for record in quarantined
                    ),
                )
            )
        lines.append(
            "campaign wall time: %.3fs%s"
            % (
                self.total_seconds,
                " (manifest: %s)" % self.manifest_path if self.manifest_path else "",
            )
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CampaignResult(%s: %d cells, %d resumed)" % (
            self.spec.name,
            len(self.outcomes),
            self.resumed_count,
        )
