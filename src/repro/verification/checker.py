"""Contract-satisfaction checking by directed random testing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.attacker.base import Attacker
from repro.contracts.template import Contract
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset
from repro.testgen.generator import TestCaseGenerator
from repro.testgen.testcase import TestCase
from repro.uarch.core import Core


@dataclass
class Violation:
    """One witnessed contract violation.

    The two programs are attacker distinguishable on the core although
    no atom of the contract distinguishes them — the contract
    under-approximates the core's leakage.
    """

    test_case: TestCase
    distinguishing_atom_names: Tuple[str, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Violation(test %d)" % self.test_case.test_id


@dataclass
class SatisfactionReport:
    """Outcome of a satisfaction check."""

    contract_atoms: int
    test_cases: int
    violations: List[Violation]
    #: Of the attacker-distinguishable cases, how many the contract
    #: covered (diagnostic counterpart of sensitivity).
    covered: int
    attacker_distinguishable: int

    @property
    def satisfied(self) -> bool:
        """No violation found (within the tested budget)."""
        return not self.violations

    def render(self) -> str:
        lines = [
            "contract satisfaction check: %d atoms, %d test cases"
            % (self.contract_atoms, self.test_cases),
            "attacker-distinguishable: %d, covered by contract: %d"
            % (self.attacker_distinguishable, self.covered),
        ]
        if self.satisfied:
            lines.append("SATISFIED (no violations found)")
        else:
            lines.append("VIOLATED: %d witnesses" % len(self.violations))
            for violation in self.violations[:5]:
                lines.append(
                    "  test %d (template atoms that would cover it: %s)"
                    % (
                        violation.test_case.test_id,
                        ", ".join(violation.distinguishing_atom_names[:6]) or "none",
                    )
                )
        return "\n".join(lines)


def check_contract_satisfaction(
    contract: Contract,
    core: Core,
    test_cases: int = 1000,
    seed: int = 0,
    attacker: Optional[Attacker] = None,
    max_violations: int = 25,
    generator: Optional[TestCaseGenerator] = None,
) -> SatisfactionReport:
    """Search for violations of ``contract`` on ``core``.

    Test cases are generated with the same atom-targeted strategy used
    for synthesis (over the contract's *template*, so leaks outside
    the contract are probed too) and evaluated on the core; every
    attacker-distinguishable, contract-indistinguishable case is a
    violation witness.
    """
    template = contract.template
    if generator is None:
        generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(core, template, attacker=attacker)

    violations: List[Violation] = []
    covered = 0
    distinguishable = 0
    evaluated = 0
    for test_case in generator.iter_generate(test_cases):
        result = evaluator.evaluate(test_case)
        evaluated += 1
        if not result.attacker_distinguishable:
            continue
        distinguishable += 1
        if contract.distinguishes(result.distinguishing_atom_ids):
            covered += 1
            continue
        violations.append(
            Violation(
                test_case=test_case,
                distinguishing_atom_names=tuple(
                    sorted(
                        template.atom(atom_id).name
                        for atom_id in result.distinguishing_atom_ids
                    )
                ),
            )
        )
        if len(violations) >= max_violations:
            break
    return SatisfactionReport(
        contract_atoms=len(contract),
        test_cases=evaluated,
        violations=violations,
        covered=covered,
        attacker_distinguishable=distinguishable,
    )


def check_dataset_satisfaction(
    contract: Contract, dataset: EvaluationDataset
) -> SatisfactionReport:
    """Satisfaction check against an already-evaluated dataset."""
    template = contract.template
    violations: List[Violation] = []
    covered = 0
    distinguishable = 0
    for result in dataset.distinguishable:
        distinguishable += 1
        if contract.distinguishes(result.distinguishing_atom_ids):
            covered += 1
        else:
            violations.append(
                Violation(
                    test_case=TestCase(
                        test_id=result.test_id,
                        program_a=_EMPTY_PROGRAM,
                        program_b=_EMPTY_PROGRAM,
                        initial_state=_EMPTY_STATE,
                    ),
                    distinguishing_atom_names=tuple(
                        sorted(
                            template.atom(atom_id).name
                            for atom_id in result.distinguishing_atom_ids
                        )
                    ),
                )
            )
    return SatisfactionReport(
        contract_atoms=len(contract),
        test_cases=len(dataset),
        violations=violations,
        covered=covered,
        attacker_distinguishable=distinguishable,
    )


# Placeholder program/state for dataset-only violations (the original
# programs are not stored in evaluation results).
from repro.isa.program import Program as _Program
from repro.isa.state import ArchState as _ArchState

_EMPTY_PROGRAM = _Program([])
_EMPTY_STATE = _ArchState()
