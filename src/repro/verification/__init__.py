"""Testing-based contract-satisfaction checking.

The dual of synthesis: given a *candidate* contract (hand-written,
synthesized elsewhere, or ported from another core), check whether a
core satisfies it by searching for violating test cases — pairs of
executions the contract calls equivalent but the attacker tells
apart.  This is the pre-silicon analogue of the black-box validation
tools (Revizor, Scam-V) the paper cites, built on the same evaluation
machinery as synthesis.
"""

from repro.verification.checker import (
    SatisfactionReport,
    Violation,
    check_contract_satisfaction,
)

__all__ = ["SatisfactionReport", "Violation", "check_contract_satisfaction"]
