"""Command-line entry point: ``repro-synthesize``.

Runs the paper's experiments end-to-end, lists the plugin registries,
runs an ad-hoc synthesis pipeline, or drives a whole configuration
grid as a resumable campaign::

    repro-synthesize fig2
    repro-synthesize table1 --scale 2
    repro-synthesize all --results-dir results
    repro-synthesize list
    repro-synthesize list templates
    repro-synthesize run --core cva6 --attacker cache-state --count 500
    repro-synthesize run --executor multiprocess --resume --count 100000
    repro-synthesize run --generator coverage --adaptive-rounds 8 --batch 250
    repro-synthesize campaign run --core ibex,cva6 --budgets 500,2000
    repro-synthesize campaign run --generator random,coverage --adaptive-rounds 8
    repro-synthesize campaign run --resume --max-parallel-cells 4
    repro-synthesize campaign status --core ibex,cva6 --budgets 500,2000
    repro-synthesize campaign report --core ibex,cva6 --budgets 500,2000

The contract service turns the same machinery into a long-running
request front-end (see README "Running the contract service")::

    repro-synthesize serve --service-root service --executor workqueue
    repro-synthesize service worker --queue-dir service/queue
    repro-synthesize submit --core ibex --budget 500 --wait 60
    repro-synthesize status

Every run/campaign/serve/worker invocation accepts ``--trace PATH``
to append :mod:`repro.trace` spans to one shared JSONL file, and
``repro-synthesize watch`` tails that file as a live progress view::

    repro-synthesize run --count 5000 --trace trace.jsonl
    repro-synthesize campaign run --budgets 500,2000 --trace trace.jsonl
    repro-synthesize watch --trace trace.jsonl
    repro-synthesize watch --service-root service

After a run, the same trace file feeds the reporting rung — a
self-contained run report, a Chrome-trace export for Perfetto /
``chrome://tracing``, and the run-history index (see README "Run
reports & metrics")::

    repro-synthesize report --trace trace.jsonl
    repro-synthesize report --trace trace.jsonl --format html --output run.html
    repro-synthesize trace export --trace trace.jsonl
    repro-synthesize runs list
    repro-synthesize runs diff -2 -1
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.contract_tables import run_table1, run_table2
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.table3 import run_table3
from repro.pipeline import REGISTRIES, SynthesisPipeline, describe_registries

_EXPERIMENTS = ("fig2", "fig3", "table1", "table2", "table3")
_COMMANDS = _EXPERIMENTS + (
    "all",
    "list",
    "run",
    "campaign",
    "service",
    "serve",
    "submit",
    "status",
    "watch",
    "report",
    "runs",
    "trace",
)
_CAMPAIGN_ACTIONS = ("run", "status", "report")
_SERVICE_ACTIONS = ("worker",)
_TRACE_ACTIONS = ("export",)
_RUNS_ACTIONS = ("list", "diff")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize",
        description="Synthesize hardware-software leakage contracts for the "
        "bundled RISC-V core models and reproduce the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=_COMMANDS,
        help="which figure/table to regenerate, 'all' for every "
        "experiment, 'list' to print the plugin registries, 'run' "
        "for an ad-hoc pipeline, 'campaign' for a resumable grid "
        "sweep, serve/submit/status/'service worker' for the "
        "contract service, 'watch' to tail a trace file live, "
        "'report' for a run report from a trace, 'trace export' for "
        "a Chrome-trace file, or 'runs' for the run-history index",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="for 'campaign': run (default), status, or report; "
        "for 'list': a registry name to print just that registry; "
        "for 'service': worker; for 'status': a request id to render "
        "that ticket; for 'trace': export; for 'runs': list "
        "(default) or diff",
    )
    parser.add_argument(
        "extra",
        nargs="*",
        default=[],
        help="for 'runs diff': the two runs to compare, each an id, "
        "an unambiguous id prefix, or a 1-based index (-1 = latest)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="test-case budget multiplier (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory for CSV/text outputs and the dataset cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not cache or reuse evaluated datasets",
    )
    pipeline_group = parser.add_argument_group(
        "pipeline plugins",
        "registry names (see 'repro-synthesize list'); 'campaign' accepts "
        "comma-separated lists on every plugin flag",
    )
    pipeline_group.add_argument(
        "--core",
        default=None,
        help="core model for fig2/fig3/table3/run/campaign (default: ibex)",
    )
    pipeline_group.add_argument(
        "--attacker",
        default=None,
        help="attacker model (default: retirement-timing)",
    )
    pipeline_group.add_argument(
        "--solver",
        default=None,
        help="ILP solver backend (default: scipy-milp)",
    )
    pipeline_group.add_argument(
        "--template",
        default=None,
        help="contract template for run/campaign (default: riscv-rv32im)",
    )
    pipeline_group.add_argument(
        "--restrict",
        default=None,
        help="template restriction for run/campaign, e.g. 'base' or "
        "'IL+RL+ML+AL'",
    )
    pipeline_group.add_argument(
        "--generator",
        default=None,
        help="test-case generation strategy for run/campaign "
        "(random, mutate, coverage; default: random)",
    )
    pipeline_group.add_argument(
        "--executor",
        default=None,
        help="evaluation executor backend (serial, multiprocess, "
        "futures, threaded; default: in-process evaluation)",
    )
    pipeline_group.add_argument(
        "--fastpath",
        default=None,
        choices=["reference", "compiled", "batch"],
        help="evaluation fast-path mode (default: compiled)",
    )
    run_group = parser.add_argument_group("ad-hoc pipeline ('run' only)")
    run_group.add_argument(
        "--count", type=int, default=1000, help="test-case budget (default: 1000)"
    )
    run_group.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    run_group.add_argument(
        "--verify",
        type=int,
        default=None,
        metavar="N",
        help="verify with N fresh directed test cases (default: check "
        "the synthesized contract against the evaluated dataset)",
    )
    run_group.add_argument(
        "--adaptive-rounds",
        type=int,
        default=None,
        metavar="N",
        help="run the evaluation phase as an adaptive loop of up to N "
        "rounds (see also --batch and --stop)",
    )
    run_group.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="test cases per adaptive round (default: --count split "
        "evenly across the rounds)",
    )
    run_group.add_argument(
        "--stop",
        default=None,
        metavar="RULE",
        help="adaptive stopping rule (contract-stable, full-coverage, "
        "budget; default: contract-stable)",
    )
    run_group.add_argument(
        "--resume",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="run: checkpoint completed evaluation shards to PATH and "
        "resume from them (implies --executor multiprocess); campaign: "
        "reuse completed cells from the campaign manifest at PATH "
        "(default with no PATH: derive the path from the campaign name)",
    )
    run_group.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="run: executor worker count; campaign: total process "
        "budget shared by all concurrently running cells",
    )
    run_group.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="test cases per evaluation shard (default: 250)",
    )
    run_group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry failing evaluation shards (and campaign cells) up "
        "to N times with deterministic backoff, then quarantine them "
        "and continue (default: fail fast)",
    )
    run_group.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="soft per-shard deadline: shards hung past it are "
        "cancelled and rescheduled in a fresh worker pool",
    )
    campaign_group = parser.add_argument_group("campaign grid ('campaign' only)")
    campaign_group.add_argument(
        "--campaign-name",
        default="cli",
        help="campaign name, keying the cell manifest (default: cli)",
    )
    campaign_group.add_argument(
        "--budgets",
        default=None,
        metavar="N,N,...",
        help="comma-separated test-case budgets (default: --count)",
    )
    campaign_group.add_argument(
        "--seeds",
        default=None,
        metavar="N,N,...",
        help="comma-separated generator seeds (default: --seed)",
    )
    campaign_group.add_argument(
        "--max-parallel-cells",
        type=int,
        default=1,
        metavar="N",
        help="cells executed concurrently (default: 1)",
    )
    campaign_group.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="AXIS=VALUE",
        dest="filters",
        help="only cells matching AXIS=VALUE (repeatable), e.g. "
        "--filter core=ibex --filter budget=500",
    )
    service_group = parser.add_argument_group(
        "contract service ('service worker', 'serve', 'submit', 'status')"
    )
    service_group.add_argument(
        "--service-root",
        default="service",
        metavar="DIR",
        help="service state root: request spool, contract store, trace "
        "(default: service)",
    )
    service_group.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="work-queue root shared by broker and workers (default: "
        "REPRO_QUEUE_DIR env; serve defaults to <service-root>/queue)",
    )
    service_group.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity for leases/heartbeats "
        "(default: worker-<pid>)",
    )
    service_group.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="job lease: a shard claimed longer than this without "
        "completing is reclaimed and requeued (default: 30)",
    )
    service_group.add_argument(
        "--poll",
        type=float,
        default=None,
        metavar="SECONDS",
        help="queue/spool poll interval (default: 0.05 worker, 0.2 serve)",
    )
    service_group.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="worker: lease-refresh/telemetry heartbeat interval "
        "(default: 2.0)",
    )
    service_group.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker: exit after completing N jobs",
    )
    service_group.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="worker/serve: exit after this long with nothing to do "
        "(default: run until shutdown)",
    )
    service_group.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="serve: exit after serving N requests",
    )
    service_group.add_argument(
        "--embedded-workers",
        type=int,
        default=0,
        metavar="N",
        help="serve/run/campaign with --executor workqueue: run N "
        "in-process worker threads alongside the broker",
    )
    service_group.add_argument(
        "--failure-log",
        default=None,
        metavar="PATH",
        help="worker: append quarantine records for failed shards here",
    )
    service_group.add_argument(
        "--fault",
        default=None,
        metavar="NAME",
        help="worker: arm a fault plan from the fault registry "
        "(testing only; see also --fault-state)",
    )
    service_group.add_argument(
        "--fault-state",
        default=None,
        metavar="JSON",
        help="worker: JSON kwargs for the --fault plan",
    )
    service_group.add_argument(
        "--wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="submit: block until the ticket lands (or fail after "
        "SECONDS) instead of returning immediately",
    )
    trace_group = parser.add_argument_group(
        "observability (run/campaign/serve/'service worker'/submit/"
        "watch/report/'trace export'/runs)"
    )
    trace_group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append repro.trace span/event records to this JSONL file "
        "(serve and workers default to <service-root>/trace.jsonl; "
        "watch tails it; report and 'trace export' read it)",
    )
    trace_group.add_argument(
        "--once",
        action="store_true",
        help="watch: render one frame and exit instead of tailing",
    )
    trace_group.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="watch: refresh interval (default: 1.0)",
    )
    trace_group.add_argument(
        "--format",
        default=None,
        dest="output_format",
        metavar="FMT",
        help="report: markdown (default) or html; trace export: "
        "chrome (default)",
    )
    trace_group.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="report/'trace export': write here instead of stdout "
        "(export default: <trace>.chrome.json)",
    )
    trace_group.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="runs diff: relative change flagged as a regression "
        "(default: 0.10)",
    )
    return parser


def _run_pipeline(arguments) -> int:
    """The ``run`` subcommand: one ad-hoc pipeline, fully printed."""
    from repro.reporting.tables import render_contract_table

    pipeline = SynthesisPipeline().budget(arguments.count, arguments.seed)
    if arguments.core:
        pipeline.core(arguments.core)
    if arguments.attacker:
        pipeline.attacker(arguments.attacker)
    if arguments.solver:
        pipeline.solver(arguments.solver)
    if arguments.template:
        pipeline.template(arguments.template)
    if arguments.restrict:
        pipeline.restrict(arguments.restrict)
    if arguments.generator:
        pipeline.generator(arguments.generator)
    if arguments.fastpath:
        pipeline.fastpath(arguments.fastpath)
    adaptive_rounds = _effective_adaptive_rounds(arguments)
    if adaptive_rounds is not None:
        pipeline.adaptive(
            rounds=adaptive_rounds,
            batch=arguments.batch,
            stop=arguments.stop or "contract-stable",
        )
    if arguments.verify is not None:
        pipeline.verify(arguments.verify)
    if arguments.retries is not None:
        # N retries == N+1 attempts (0 → fail on the first error, but
        # still through the quarantine path).
        pipeline.retry(arguments.retries + 1)
    if arguments.shard_timeout is not None:
        pipeline.timeout(arguments.shard_timeout)
    if arguments.executor or arguments.processes or arguments.shard_size:
        pipeline.executor(
            _effective_cli_executor(arguments) or "multiprocess",
            processes=arguments.processes,
            shard_size=arguments.shard_size,
        )
    if arguments.resume is not None:
        pipeline.resume(arguments.resume)
    if arguments.trace:
        pipeline.trace(arguments.trace)
    pipeline.run_history(arguments.results_dir)
    if not arguments.no_cache:
        config = ExperimentConfig(results_dir=arguments.results_dir)
        pipeline.cache_dir(config.cache_dir())
    result = pipeline.run()
    print(result.render())
    print()
    print(render_contract_table(result.contract))
    return 0


def _effective_adaptive_rounds(arguments) -> Optional[int]:
    """The adaptive round budget implied by the ``run`` flags: any of
    ``--adaptive-rounds``, ``--batch``, or ``--stop`` switches the run
    into adaptive mode, so no adaptive flag is ever silently dropped.
    With only ``--batch``, the rounds derive from the case budget
    (``--count`` stays the total ceiling); with only ``--stop``, they
    default to 8."""
    if arguments.adaptive_rounds is not None:
        return arguments.adaptive_rounds
    if arguments.batch is not None:
        return max(1, arguments.count // max(1, arguments.batch))
    if arguments.stop is not None:
        return 8
    return None


def _campaign_adaptive_rounds(arguments) -> Optional[int]:
    """The campaign analogue: budgets are per-cell (``--budgets``), so
    rounds cannot be derived from the single ``--count`` — require the
    explicit flag instead of silently inflating cell ceilings."""
    if arguments.adaptive_rounds is not None:
        return arguments.adaptive_rounds
    if arguments.batch is not None or arguments.stop is not None:
        raise SystemExit(
            "campaign: --batch/--stop configure adaptive cells, whose "
            "round budget cannot be derived from --count (budgets are "
            "per-cell): pass --adaptive-rounds explicitly"
        )
    return None


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _parse_filters(pairs: List[str]) -> Dict[str, str]:
    from repro.campaign import AXES

    filters: Dict[str, str] = {}
    for pair in pairs:
        axis, separator, value = pair.partition("=")
        if not separator or not value or axis not in AXES:
            raise SystemExit(
                "bad --filter %r: expected AXIS=VALUE with AXIS one of %s"
                % (pair, ", ".join(AXES))
            )
        filters[axis] = value
    return filters


def _campaign_runner(arguments):
    """Build the spec and runner shared by campaign run/status/report."""
    from repro.campaign import CampaignRunner, CampaignSpec

    budgets = _split(arguments.budgets)
    seeds = _split(arguments.seeds)
    restrictions = _split(arguments.restrict)
    spec = CampaignSpec(
        name=arguments.campaign_name,
        cores=tuple(_split(arguments.core) or ("ibex",)),
        attackers=tuple(_split(arguments.attacker) or ("retirement-timing",)),
        templates=tuple(_split(arguments.template) or ("riscv-rv32im",)),
        restrictions=tuple(restrictions) if restrictions else (None,),
        solvers=tuple(_split(arguments.solver) or ("scipy-milp",)),
        generators=tuple(_split(arguments.generator) or ("random",)),
        budgets=tuple(int(budget) for budget in budgets)
        if budgets
        else (arguments.count,),
        seeds=tuple(int(seed) for seed in seeds) if seeds else (arguments.seed,),
        adaptive_rounds=_campaign_adaptive_rounds(arguments),
        batch=arguments.batch,
        stop=arguments.stop,
        verify=arguments.verify,
        retries=arguments.retries,
        shard_timeout=arguments.shard_timeout,
    )
    manifest = (
        arguments.resume if isinstance(arguments.resume, str) else True
    )
    return CampaignRunner(
        spec,
        results_dir=arguments.results_dir,
        cache=not arguments.no_cache,
        executor=_effective_cli_executor(arguments),
        process_budget=arguments.processes,
        shard_size=arguments.shard_size,
        max_parallel_cells=arguments.max_parallel_cells,
        manifest=manifest,
        resume=arguments.resume is not None,
        filters=_parse_filters(arguments.filters),
        trace=arguments.trace,
        keep_results=False,
        progress=lambda event: print(
            "[%d/%d] %s (%s%.3fs)"
            % (
                event.completed_cells,
                event.total_cells,
                event.cell.label(),
                "resumed, " if event.resumed else "",
                event.elapsed_seconds,
            )
        ),
    )


def _run_campaign(arguments) -> int:
    """The ``campaign`` subcommand: run, status, or report."""
    action = arguments.action or "run"
    if action not in _CAMPAIGN_ACTIONS:
        raise SystemExit(
            "unknown campaign action %r (choose from %s)"
            % (action, ", ".join(_CAMPAIGN_ACTIONS))
        )
    runner = _campaign_runner(arguments)
    if action == "status":
        print(runner.status().render())
        return 0
    if action == "report":
        print(runner.report().render())
        return 0
    result = runner.run()
    print()
    print(result.render())
    directory = os.path.join(arguments.results_dir)
    os.makedirs(directory, exist_ok=True)
    summary_path = os.path.join(
        directory, "campaign_%s.txt" % runner.spec.name
    )
    with open(summary_path, "w") as stream:
        stream.write(result.render() + "\n")
    print("summary written to %s" % summary_path)
    return 0


def _workqueue_executor(arguments, tracer=None):
    """A configured broker-side workqueue executor for run/campaign,
    or an actionable exit when nothing binds it to a queue."""
    from repro.service.queue import QueueUnavailableError, resolve_queue_root
    from repro.service.workqueue import WorkQueueExecutor

    try:
        queue_dir = resolve_queue_root(arguments.queue_dir)
    except QueueUnavailableError as error:
        raise SystemExit("--executor workqueue: %s" % error)
    return WorkQueueExecutor(
        processes=arguments.processes,
        queue_dir=queue_dir,
        lease_seconds=arguments.lease,
        embedded_workers=arguments.embedded_workers,
        tracer=tracer,
    )


def _effective_cli_executor(arguments, tracer=None):
    """The --executor value as the pipeline/campaign layers want it:
    the workqueue backend needs broker-side configuration (queue root,
    lease, embedded workers), so it becomes an instance here."""
    if arguments.executor == "workqueue":
        return _workqueue_executor(arguments, tracer=tracer)
    return arguments.executor


def _run_service(arguments) -> int:
    """The ``service`` subcommand: currently just the worker loop."""
    import json

    from repro.service.queue import JobQueue, QueueUnavailableError, resolve_queue_root
    from repro.service.worker import DEFAULT_HEARTBEAT_INTERVAL, JobWorker
    from repro.trace import Tracer

    action = arguments.action or "worker"
    if action not in _SERVICE_ACTIONS:
        raise SystemExit(
            "unknown service action %r (choose from %s)"
            % (action, ", ".join(_SERVICE_ACTIONS))
        )
    if arguments.fault:
        # Arm a fault plan inside this worker process — the fault
        # matrix's bridge across the machine boundary (tests SIGKILL /
        # hang workers this way).
        from repro.resilience.injection import install_fault

        state = json.loads(arguments.fault_state) if arguments.fault_state else {}
        install_fault(arguments.fault, state)
    try:
        root = resolve_queue_root(arguments.queue_dir)
    except QueueUnavailableError as error:
        raise SystemExit("service worker: %s" % error)
    queue = JobQueue(root)
    queue.ensure()
    worker = JobWorker(
        queue,
        worker_id=arguments.worker_id,
        poll_seconds=arguments.poll if arguments.poll is not None else 0.05,
        lease_seconds=arguments.lease,
        max_jobs=arguments.max_jobs,
        idle_timeout=arguments.idle_timeout,
        failure_log_path=arguments.failure_log,
        heartbeat_interval=arguments.heartbeat_interval
        if arguments.heartbeat_interval is not None
        else DEFAULT_HEARTBEAT_INTERVAL,
        tracer=Tracer(arguments.trace or os.path.join(root, "trace.jsonl")),
    )
    completed = worker.run()
    print("worker %s: completed %d job(s)" % (worker.worker_id, completed))
    return 0


def _run_serve(arguments) -> int:
    """The ``serve`` subcommand: the contract-service broker loop."""
    from repro.service import ContractServer, ContractService, ContractStore
    from repro.trace import Tracer

    root = arguments.service_root
    os.makedirs(root, exist_ok=True)
    tracer = Tracer(
        arguments.trace or os.path.join(root, "trace.jsonl"), source="serve"
    )
    store = ContractStore(os.path.join(root, "store"))
    executor = arguments.executor or "serial"
    if executor == "workqueue" and arguments.queue_dir is None:
        # The serve loop owns its queue by default — workers join with
        # `service worker --queue-dir <service-root>/queue`.
        arguments.queue_dir = os.path.join(root, "queue")
    executor = _effective_cli_executor(arguments, tracer=tracer)
    service = ContractService(
        store,
        executor=executor or "serial",
        process_budget=arguments.processes,
        shard_size=arguments.shard_size,
        max_parallel_cells=arguments.max_parallel_cells,
        tracer=tracer,
    )
    server = ContractServer(
        service,
        root,
        poll_seconds=arguments.poll if arguments.poll is not None else 0.2,
        idle_timeout=arguments.idle_timeout,
        max_requests=arguments.max_requests,
    )
    print(
        "serving %s (executor %s%s)"
        % (
            root,
            arguments.executor or "serial",
            ", queue %s" % arguments.queue_dir if arguments.queue_dir else "",
        )
    )
    served = server.serve()
    print("served %d request(s)" % served)
    return 0


def _submit_request(arguments):
    from repro.service import ContractRequest

    budgets = _split(arguments.budgets)
    seeds = _split(arguments.seeds)
    return ContractRequest(
        core=_split(arguments.core) or "ibex",
        attacker=_split(arguments.attacker) or "retirement-timing",
        template=_split(arguments.template) or "riscv-rv32im",
        restriction=_split(arguments.restrict),
        solver=_split(arguments.solver) or "scipy-milp",
        generator=_split(arguments.generator) or "random",
        budget=[int(budget) for budget in budgets] if budgets else arguments.count,
        seed=[int(seed) for seed in seeds] if seeds else arguments.seed,
        verify=arguments.verify,
    )


def _run_submit(arguments) -> int:
    """The ``submit`` subcommand: spool one request, optionally wait."""
    import time

    from repro.service.service import load_ticket, request_states, submit_request

    root = arguments.service_root
    request = _submit_request(arguments)
    request_id = submit_request(root, request)
    if arguments.trace:
        from repro.trace import Tracer

        Tracer(arguments.trace, source="submit").event(
            "submit", request=request_id
        )
    print("submitted %s to %s" % (request_id, root))
    if arguments.wait is None:
        return 0
    deadline = time.time() + arguments.wait
    while True:
        ticket = load_ticket(root, request_id)
        if ticket is not None:
            print(ticket.render())
            return 0
        if request_id in request_states(root)["failed"]:
            raise SystemExit(
                "request %s failed (see %s)"
                % (request_id, os.path.join(root, "requests", "failed"))
            )
        if time.time() > deadline:
            raise SystemExit(
                "request %s not served within %.0fs — is `repro-synthesize "
                "serve --service-root %s` running?"
                % (request_id, arguments.wait, root)
            )
        time.sleep(0.2)


def _run_status(arguments) -> int:
    """The ``status`` subcommand: the spool table, or one ticket."""
    from repro.service.service import load_ticket, render_status

    root = arguments.service_root
    if arguments.action:
        ticket = load_ticket(root, arguments.action)
        if ticket is None:
            raise SystemExit(
                "no finished ticket %r under %s" % (arguments.action, root)
            )
        print(ticket.render())
        return 0
    print(render_status(root))
    return 0


def _run_watch(arguments) -> int:
    """The ``watch`` subcommand: tail a trace file as a live view."""
    from repro.trace import watch

    path = arguments.trace or os.path.join(
        arguments.service_root, "trace.jsonl"
    )
    if not os.path.exists(path):
        raise SystemExit(
            "watch: no trace file at %r — pass --trace PATH (the same "
            "path given to run/campaign/serve), or --service-root DIR "
            "for a service's default <root>/trace.jsonl" % path
        )
    return watch(path, interval=arguments.interval, once=arguments.once)


def _run_report(arguments) -> int:
    """The ``report`` subcommand: a self-contained run report."""
    from repro.metrics import render_report

    if not arguments.trace:
        raise SystemExit("report: pass --trace PATH (the run's trace file)")
    if not os.path.exists(arguments.trace):
        raise SystemExit("report: no trace file at %r" % arguments.trace)
    fmt = arguments.output_format or "markdown"
    try:
        document = render_report(arguments.trace, fmt=fmt)
    except ValueError as error:
        raise SystemExit("report: %s" % error)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as stream:
            stream.write(document)
            if not document.endswith("\n"):
                stream.write("\n")
        print("report written to %s" % arguments.output)
        return 0
    print(document)
    return 0


def _run_trace(arguments) -> int:
    """The ``trace`` subcommand: currently just the chrome export."""
    from repro.trace.export import export_chrome

    action = arguments.action or "export"
    if action not in _TRACE_ACTIONS:
        raise SystemExit(
            "unknown trace action %r (choose from %s)"
            % (action, ", ".join(_TRACE_ACTIONS))
        )
    if not arguments.trace:
        raise SystemExit(
            "trace export: pass --trace PATH (the run's trace file)"
        )
    if not os.path.exists(arguments.trace):
        raise SystemExit("trace export: no trace file at %r" % arguments.trace)
    fmt = arguments.output_format or "chrome"
    if fmt != "chrome":
        raise SystemExit(
            "trace export: unknown format %r (only 'chrome')" % fmt
        )
    output = arguments.output or arguments.trace + ".chrome.json"
    document = export_chrome(arguments.trace, output)
    print(
        "exported %d trace event(s) to %s"
        % (len(document["traceEvents"]), output)
    )
    return 0


def _run_runs(arguments) -> int:
    """The ``runs`` subcommand: list the history index, or diff two."""
    from repro.metrics import diff_runs, load_runs, render_runs, resolve_run
    from repro.metrics.runs import DEFAULT_THRESHOLD, runs_path

    action = arguments.action or "list"
    if action not in _RUNS_ACTIONS:
        raise SystemExit(
            "unknown runs action %r (choose from %s)"
            % (action, ", ".join(_RUNS_ACTIONS))
        )
    runs = load_runs(arguments.results_dir)
    if action == "list":
        print(render_runs(runs))
        return 0
    if len(arguments.extra) != 2:
        raise SystemExit(
            "runs diff: pass exactly two runs (id, id prefix, or "
            "1-based index; -1 = latest), e.g. `repro-synthesize runs "
            "diff -2 -1`"
        )
    if not runs:
        raise SystemExit(
            "runs diff: no recorded runs in %s"
            % runs_path(arguments.results_dir)
        )
    before = resolve_run(runs, arguments.extra[0])
    after = resolve_run(runs, arguments.extra[1])
    threshold = (
        arguments.threshold
        if arguments.threshold is not None
        else DEFAULT_THRESHOLD
    )
    diff = diff_runs(before, after, threshold=threshold)
    print(diff.render())
    return 1 if diff.regressions else 0


def _list_registries(action: Optional[str]) -> int:
    """The ``list`` subcommand, optionally filtered to one registry."""
    if action is not None and action not in REGISTRIES:
        raise SystemExit(
            "unknown registry %r (choose from %s)"
            % (action, ", ".join(REGISTRIES))
        )
    print(describe_registries(only=action))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.experiment == "list":
        return _list_registries(arguments.action)
    if arguments.experiment == "run":
        return _run_pipeline(arguments)
    if arguments.experiment == "campaign":
        return _run_campaign(arguments)
    if arguments.experiment == "service":
        return _run_service(arguments)
    if arguments.experiment == "serve":
        return _run_serve(arguments)
    if arguments.experiment == "submit":
        return _run_submit(arguments)
    if arguments.experiment == "status":
        return _run_status(arguments)
    if arguments.experiment == "watch":
        return _run_watch(arguments)
    if arguments.experiment == "report":
        return _run_report(arguments)
    if arguments.experiment == "trace":
        return _run_trace(arguments)
    if arguments.experiment == "runs":
        return _run_runs(arguments)

    if arguments.executor == "workqueue":
        # The experiment drivers take the executor by registry name;
        # bind the queue root through the environment (and fail here,
        # actionably, when nothing binds one).
        from repro.service.queue import QueueUnavailableError, resolve_queue_root

        try:
            os.environ["REPRO_QUEUE_DIR"] = resolve_queue_root(arguments.queue_dir)
        except QueueUnavailableError as error:
            raise SystemExit("--executor workqueue: %s" % error)

    kwargs = {"results_dir": arguments.results_dir, "cache": not arguments.no_cache}
    if arguments.scale is not None:
        kwargs["scale"] = arguments.scale
    if arguments.attacker is not None:
        kwargs["attacker"] = arguments.attacker
    if arguments.solver is not None:
        kwargs["solver"] = arguments.solver
    if arguments.executor is not None:
        kwargs["executor"] = arguments.executor
    config = ExperimentConfig(**kwargs)
    core_kwargs = {}
    if arguments.core is not None:
        core_kwargs["core_name"] = arguments.core

    names = (
        list(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    )
    for name in names:
        print("== %s ==" % name)
        if name == "fig2":
            print(run_fig2(config, **core_kwargs).render())
        elif name == "fig3":
            print(run_fig3(config, **core_kwargs).render())
        elif name == "table1":
            print(run_table1(config).render())
        elif name == "table2":
            print(run_table2(config).render())
        elif name == "table3":
            print(
                run_table3(
                    config,
                    core_names=[arguments.core] if arguments.core else None,
                ).render()
            )
        print()
    print("results written to %s/" % config.results_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
