"""Command-line entry point: ``repro-synthesize``.

Runs the paper's experiments end-to-end, lists the plugin registries,
or runs an ad-hoc synthesis pipeline::

    repro-synthesize fig2
    repro-synthesize table1 --scale 2
    repro-synthesize all --results-dir results
    repro-synthesize list
    repro-synthesize run --core cva6 --attacker cache-state --count 500
    repro-synthesize run --executor multiprocess --resume --count 100000
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.contract_tables import run_table1, run_table2
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.table3 import run_table3
from repro.pipeline import SynthesisPipeline, describe_registries

_EXPERIMENTS = ("fig2", "fig3", "table1", "table2", "table3")
_COMMANDS = _EXPERIMENTS + ("all", "list", "run")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize",
        description="Synthesize hardware-software leakage contracts for the "
        "bundled RISC-V core models and reproduce the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=_COMMANDS,
        help="which figure/table to regenerate, 'all' for every "
        "experiment, 'list' to print the plugin registries, or 'run' "
        "for an ad-hoc pipeline",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="test-case budget multiplier (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory for CSV/text outputs and the dataset cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not cache or reuse evaluated datasets",
    )
    pipeline_group = parser.add_argument_group(
        "pipeline plugins", "registry names (see 'repro-synthesize list')"
    )
    pipeline_group.add_argument(
        "--core",
        default=None,
        help="core model for fig2/fig3/table3/run (default: ibex)",
    )
    pipeline_group.add_argument(
        "--attacker",
        default=None,
        help="attacker model (default: retirement-timing)",
    )
    pipeline_group.add_argument(
        "--solver",
        default=None,
        help="ILP solver backend (default: scipy-milp)",
    )
    pipeline_group.add_argument(
        "--executor",
        default=None,
        help="evaluation executor backend (serial, multiprocess, "
        "futures, threaded; default: in-process evaluation)",
    )
    run_group = parser.add_argument_group("ad-hoc pipeline ('run' only)")
    run_group.add_argument(
        "--template",
        default=None,
        help="contract template (default: riscv-rv32im)",
    )
    run_group.add_argument(
        "--restrict",
        default=None,
        help="template restriction, e.g. 'base' or 'IL+RL+ML+AL'",
    )
    run_group.add_argument(
        "--count", type=int, default=1000, help="test-case budget (default: 1000)"
    )
    run_group.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    run_group.add_argument(
        "--verify",
        type=int,
        default=None,
        metavar="N",
        help="verify with N fresh directed test cases (default: check "
        "the synthesized contract against the evaluated dataset)",
    )
    run_group.add_argument(
        "--resume",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="checkpoint completed evaluation shards to PATH (default "
        "with no PATH: derive from the dataset cache key) and resume "
        "from it; implies --executor multiprocess",
    )
    run_group.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="executor worker count (default: backend-specific)",
    )
    run_group.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="test cases per evaluation shard (default: 250)",
    )
    return parser


def _run_pipeline(arguments) -> int:
    """The ``run`` subcommand: one ad-hoc pipeline, fully printed."""
    from repro.reporting.tables import render_contract_table

    pipeline = SynthesisPipeline().budget(arguments.count, arguments.seed)
    if arguments.core:
        pipeline.core(arguments.core)
    if arguments.attacker:
        pipeline.attacker(arguments.attacker)
    if arguments.solver:
        pipeline.solver(arguments.solver)
    if arguments.template:
        pipeline.template(arguments.template)
    if arguments.restrict:
        pipeline.restrict(arguments.restrict)
    if arguments.verify is not None:
        pipeline.verify(arguments.verify)
    if arguments.executor or arguments.processes or arguments.shard_size:
        pipeline.executor(
            arguments.executor or "multiprocess",
            processes=arguments.processes,
            shard_size=arguments.shard_size,
        )
    if arguments.resume is not None:
        pipeline.resume(arguments.resume)
    if not arguments.no_cache:
        config = ExperimentConfig(results_dir=arguments.results_dir)
        pipeline.cache_dir(config.cache_dir())
    result = pipeline.run()
    print(result.render())
    print()
    print(render_contract_table(result.contract))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.experiment == "list":
        print(describe_registries())
        return 0
    if arguments.experiment == "run":
        return _run_pipeline(arguments)

    kwargs = {"results_dir": arguments.results_dir, "cache": not arguments.no_cache}
    if arguments.scale is not None:
        kwargs["scale"] = arguments.scale
    if arguments.attacker is not None:
        kwargs["attacker"] = arguments.attacker
    if arguments.solver is not None:
        kwargs["solver"] = arguments.solver
    if arguments.executor is not None:
        kwargs["executor"] = arguments.executor
    config = ExperimentConfig(**kwargs)
    core_kwargs = {}
    if arguments.core is not None:
        core_kwargs["core_name"] = arguments.core

    names = (
        list(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    )
    for name in names:
        print("== %s ==" % name)
        if name == "fig2":
            print(run_fig2(config, **core_kwargs).render())
        elif name == "fig3":
            print(run_fig3(config, **core_kwargs).render())
        elif name == "table1":
            print(run_table1(config).render())
        elif name == "table2":
            print(run_table2(config).render())
        elif name == "table3":
            print(
                run_table3(
                    config,
                    core_names=[arguments.core] if arguments.core else None,
                ).render()
            )
        print()
    print("results written to %s/" % config.results_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
