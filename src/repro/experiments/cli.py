"""Command-line entry point: ``repro-synthesize``.

Runs the paper's experiments end-to-end::

    repro-synthesize fig2
    repro-synthesize table1 --scale 2
    repro-synthesize all --results-dir results
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.contract_tables import run_table1, run_table2
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.table3 import run_table3

_EXPERIMENTS = ("fig2", "fig3", "table1", "table2", "table3")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize",
        description="Synthesize hardware-software leakage contracts for the "
        "bundled RISC-V core models and reproduce the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ("all",),
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="test-case budget multiplier (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--results-dir",
        default="results",
        help="directory for CSV/text outputs and the dataset cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not cache or reuse evaluated datasets",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    kwargs = {"results_dir": arguments.results_dir, "cache": not arguments.no_cache}
    if arguments.scale is not None:
        kwargs["scale"] = arguments.scale
    config = ExperimentConfig(**kwargs)

    names = (
        list(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    )
    for name in names:
        print("== %s ==" % name)
        if name == "fig2":
            print(run_fig2(config).render())
        elif name == "fig3":
            print(run_fig3(config).render())
        elif name == "table1":
            print(run_table1(config).render())
        elif name == "table2":
            print(run_table2(config).render())
        elif name == "table3":
            print(run_table3(config).render())
        print()
    print("results written to %s/" % config.results_dir)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
