"""Experiment sizing and paths."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def _scaled(count: int, scale: float, minimum: int = 10) -> int:
    return max(minimum, int(round(count * scale)))


@dataclass
class ExperimentConfig:
    """Shared sizing for all experiment drivers.

    ``scale`` multiplies every test-case count; set the ``REPRO_SCALE``
    environment variable (e.g. ``0.2`` for quick runs, ``10`` for
    closer-to-paper sizes) or pass ``scale`` explicitly.
    """

    scale: float = field(default_factory=_scale)
    #: Synthesis test-case budget (the paper's 100,000).
    synthesis_test_cases: int = 4000
    #: Held-out evaluation budget (the paper's 2,000,000).
    evaluation_test_cases: int = 12000
    #: CVA6 synthesis budget (the paper's 500,000); smaller because the
    #: CVA6 ILP instances are denser.
    cva6_synthesis_test_cases: int = 3000
    #: Seeds: synthesis and evaluation sets must be disjoint streams.
    synthesis_seed: int = 1
    evaluation_seed: int = 2
    #: Where datasets are cached and results written.
    results_dir: str = "results"
    cache: bool = True
    #: Pipeline plugins (registry names) shared by every driver.  The
    #: defaults reproduce the paper; the CLI's ``--attacker``,
    #: ``--solver``, and ``--executor`` flags override them.
    attacker: str = "retirement-timing"
    solver: str = "scipy-milp"
    #: Evaluation executor backend; ``None`` keeps the in-process
    #: evaluator (the sequential reference path).
    executor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        # Fail fast on unknown plugin names (the registries raise a
        # ValueError listing the registered choices).
        from repro.attacker import ATTACKER_REGISTRY
        from repro.evaluation.backends import EXECUTOR_REGISTRY
        from repro.synthesis import SOLVER_REGISTRY

        ATTACKER_REGISTRY.get(self.attacker)
        SOLVER_REGISTRY.get(self.solver)
        if self.executor is not None:
            EXECUTOR_REGISTRY.get(self.executor)
        self.synthesis_test_cases = _scaled(self.synthesis_test_cases, self.scale)
        self.evaluation_test_cases = _scaled(self.evaluation_test_cases, self.scale)
        self.cva6_synthesis_test_cases = _scaled(
            self.cva6_synthesis_test_cases, self.scale
        )

    def synthesis_prefixes(self) -> List[int]:
        """Fig. 2's x-axis: synthesis-set sizes."""
        total = self.synthesis_test_cases
        prefixes = []
        value = max(10, total // 64)
        while value < total:
            prefixes.append(value)
            value *= 2
        prefixes.append(total)
        return prefixes

    def sensitivity_prefixes(self) -> List[int]:
        """Fig. 3's log-scale x-axis."""
        total = self.synthesis_test_cases
        prefixes = []
        value = 1
        while value < total:
            prefixes.append(value)
            value = max(value + 1, int(value * 3))
        prefixes.append(total)
        return prefixes

    def ensure_results_dir(self) -> str:
        os.makedirs(self.results_dir, exist_ok=True)
        return self.results_dir

    def cache_dir(self) -> Optional[str]:
        if not self.cache:
            return None
        path = os.path.join(self.results_dir, "cache")
        os.makedirs(path, exist_ok=True)
        return path
