"""Tables I and II: the synthesized contracts for Ibex and CVA6.

Synthesizes a contract from the full synthesis budget, renders the
paper-style category/family grid, compares it cell-by-cell against the
paper's published table, and produces the §III-E refinement ranking.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.campaign import CampaignRunner, CampaignSpec
from repro.contracts.template import Contract
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.reporting.tables import (
    Grid,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    contract_summary_grid,
    grid_agreement,
    render_contract_table,
)
from repro.synthesis.metrics import evaluate_contract, verify_contract_correctness
from repro.synthesis.ranking import AtomRanking, format_ranking, rank_atoms_by_false_positives


@dataclass
class ContractTableResult:
    """A synthesized contract table plus comparison diagnostics."""

    core_name: str
    contract: Contract
    grid: Grid
    atom_count: int
    false_positives: int
    agreement_matches: int
    agreement_total: int
    mismatches: List[str]
    ranking: List[AtomRanking]
    held_out_precision: Optional[float]
    held_out_sensitivity: Optional[float]
    synthesis_count: int

    @property
    def agreement_ratio(self) -> float:
        return self.agreement_matches / self.agreement_total

    def render(self) -> str:
        lines = [
            render_contract_table(
                self.contract,
                title="Synthesized contract for %s (%d synthesis test cases)"
                % (self.core_name, self.synthesis_count),
            ),
            "",
            "Cell agreement with the paper: %d/%d"
            % (self.agreement_matches, self.agreement_total),
        ]
        for mismatch in self.mismatches:
            lines.append("  mismatch: %s" % mismatch)
        if self.held_out_precision is not None:
            lines.append("Held-out precision:   %.4f" % self.held_out_precision)
        if self.held_out_sensitivity is not None:
            lines.append("Held-out sensitivity: %.4f" % self.held_out_sensitivity)
        lines.append("")
        lines.append("Refinement ranking (§III-E):")
        lines.append(format_ranking(self.ranking, top=10))
        return "\n".join(lines)


def contract_table_campaign(
    config: ExperimentConfig, core_name: str, synthesis_count: int
) -> CampaignSpec:
    """The Table I/II grid: one full-budget synthesis cell per core.

    ``verify=0`` because :func:`verify_contract_correctness` below
    re-checks the contract against its synthesis set anyway.
    """
    return CampaignSpec(
        name="contract-table-%s" % core_name,
        cores=(core_name,),
        attackers=(config.attacker,),
        templates=("riscv-rv32im",),
        solvers=(config.solver,),
        budgets=(synthesis_count,),
        seeds=(config.synthesis_seed,),
        verify=0,
    )


def _run_contract_table(
    config: ExperimentConfig,
    core_name: str,
    synthesis_count: int,
    reference: Grid,
    output_stem: str,
) -> ContractTableResult:
    template = shared_template()
    spec = contract_table_campaign(config, core_name, synthesis_count)
    campaign = CampaignRunner(
        spec,
        results_dir=config.results_dir,
        cache=config.cache,
        executor=config.executor,
        manifest=False,
    ).run()
    # The diagnostics below need the evaluated dataset and the solver
    # result, not just the cell summary — pull the full PipelineResult.
    pipeline_result = campaign.result_for(campaign.cells[0])
    synthesis_set = pipeline_result.dataset
    evaluation_set = experiment_pipeline(
        config, core_name, template,
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()

    synthesis_result = pipeline_result.synthesis
    contract = synthesis_result.contract
    if not verify_contract_correctness(contract, synthesis_set):
        raise AssertionError("synthesized contract violates its own test set")

    grid = contract_summary_grid(contract)
    matches, total, mismatches = grid_agreement(grid, reference)
    counts = evaluate_contract(contract, evaluation_set)
    ranking = rank_atoms_by_false_positives(contract, synthesis_set)

    result = ContractTableResult(
        core_name=core_name,
        contract=contract,
        grid=grid,
        atom_count=len(contract),
        false_positives=synthesis_result.false_positives,
        agreement_matches=matches,
        agreement_total=total,
        mismatches=mismatches,
        ranking=ranking,
        held_out_precision=counts.precision,
        held_out_sensitivity=counts.sensitivity,
        synthesis_count=len(synthesis_set),
    )
    directory = config.ensure_results_dir()
    with open(os.path.join(directory, output_stem + ".txt"), "w") as stream:
        stream.write(result.render() + "\n")
    return result


def run_table1(config: Optional[ExperimentConfig] = None) -> ContractTableResult:
    """Table I: the synthesized Ibex contract."""
    config = config if config is not None else ExperimentConfig()
    return _run_contract_table(
        config, "ibex", config.synthesis_test_cases, PAPER_TABLE_1, "table1_ibex"
    )


def run_table2(config: Optional[ExperimentConfig] = None) -> ContractTableResult:
    """Table II: the synthesized CVA6 contract."""
    config = config if config is not None else ExperimentConfig()
    return _run_contract_table(
        config, "cva6", config.cva6_synthesis_test_cases, PAPER_TABLE_2, "table2_cva6"
    )
