"""Table III: runtime breakdown of the contract-synthesis toolchain.

The paper reports, per core: testbench compilation time, simulation
time for a single test case, extraction of distinguishing atoms per
test case, contract computation time, and overall time.  Our
"compilation" phase is the construction of the core model, template,
and generator (there is no Verilog elaboration in the Python
substrate — a documented substitution); the remaining phases map
one-to-one.  The expected *shape*: CVA6 costs far more than Ibex in
simulation, while contract computation is comparable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.campaign import CampaignRunner, CampaignSpec
from repro.experiments.config import ExperimentConfig


@dataclass
class CoreTiming:
    """One column of Table III."""

    core_name: str
    test_cases: int
    compilation_seconds: float
    simulation_per_test_case: float
    extraction_per_test_case: float
    contract_computation_seconds: float
    overall_seconds: float


@dataclass
class Table3Result:
    """Timing columns for every measured core."""

    timings: List[CoreTiming]

    def column(self, core_name: str) -> CoreTiming:
        for timing in self.timings:
            if timing.core_name == core_name:
                return timing
        raise KeyError(core_name)

    def render(self) -> str:
        header = "%-38s" % "Phase" + "".join(
            "%14s" % timing.core_name for timing in self.timings
        )
        rows = [
            (
                "Toolchain setup ('compilation')",
                ["%.3f s" % t.compilation_seconds for t in self.timings],
            ),
            (
                "Simulation of a single test case",
                ["%.3f ms" % (t.simulation_per_test_case * 1e3) for t in self.timings],
            ),
            (
                "Extraction of distinguishing atoms",
                ["%.3f ms" % (t.extraction_per_test_case * 1e3) for t in self.timings],
            ),
            (
                "Computation of the contract",
                ["%.3f s" % t.contract_computation_seconds for t in self.timings],
            ),
            (
                "Overall computation time",
                ["%.3f s" % t.overall_seconds for t in self.timings],
            ),
        ]
        lines = [
            "Table III — toolchain runtime (%d test cases per core)"
            % self.timings[0].test_cases,
            header,
        ]
        for label, cells in rows:
            lines.append("%-38s" % label + "".join("%14s" % cell for cell in cells))
        return "\n".join(lines)


def table3_campaign(
    config: ExperimentConfig, core_names: Sequence[str], test_cases: int
) -> CampaignSpec:
    """The Table III grid: one timing cell per core."""
    return CampaignSpec(
        name="table3",
        cores=tuple(core_names),
        attackers=(config.attacker,),
        templates=("riscv-rv32im",),
        solvers=(config.solver,),
        budgets=(test_cases,),
        seeds=(config.synthesis_seed,),
        verify=0,
    )


def run_table3(
    config: Optional[ExperimentConfig] = None,
    core_names: Optional[List[str]] = None,
    test_cases: Optional[int] = None,
) -> Table3Result:
    """Measure the toolchain phases on each core."""
    config = config if config is not None else ExperimentConfig()
    core_names = core_names if core_names is not None else ["ibex", "cva6"]
    count = test_cases if test_cases is not None else max(
        200, config.synthesis_test_cases // 4
    )

    # No cache, no manifest, no verification budget: every phase is
    # measured live, exactly as the paper times its toolchain (a
    # resumed or cache-served cell would report stale or zero timings).
    spec = table3_campaign(config, core_names, count)
    campaign = CampaignRunner(
        spec, results_dir=config.results_dir, cache=False, manifest=False
    ).run()

    timings = []
    for core_name in core_names:
        phases = campaign.outcome(core=core_name).timings
        timings.append(
            CoreTiming(
                core_name=core_name,
                test_cases=count,
                compilation_seconds=phases["setup"],
                simulation_per_test_case=phases["simulation"] / count,
                extraction_per_test_case=phases["extraction"] / count,
                contract_computation_seconds=phases["synthesis"],
                overall_seconds=phases["total"],
            )
        )

    result = Table3Result(timings=timings)
    directory = config.ensure_results_dir()
    with open(os.path.join(directory, "table3_runtime.txt"), "w") as stream:
        stream.write(result.render() + "\n")
    return result
