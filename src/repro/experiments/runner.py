"""Shared plumbing for experiment drivers: cores, datasets, caching."""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.contracts.riscv_template import build_riscv_template
from repro.contracts.template import ContractTemplate
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset
from repro.testgen.generator import TestCaseGenerator
from repro.uarch.core import Core
from repro.uarch.cva6 import CVA6Core
from repro.uarch.ibex import IbexCore

_CORES = {
    "ibex": IbexCore,
    "cva6": CVA6Core,
}


def build_core(name: str) -> Core:
    """Instantiate a core model by name (``ibex`` or ``cva6``)."""
    try:
        return _CORES[name]()
    except KeyError:
        raise ValueError(
            "unknown core %r (available: %s)" % (name, ", ".join(sorted(_CORES)))
        )


def shared_template() -> ContractTemplate:
    """The full RV32IM template used by all experiments."""
    return build_riscv_template()


def evaluate_dataset(
    core_name: str,
    template: ContractTemplate,
    count: int,
    seed: int,
    cache_dir: Optional[str] = None,
    progress_every: Optional[int] = None,
) -> Tuple[EvaluationDataset, Optional[TestCaseEvaluator]]:
    """Generate and evaluate ``count`` test cases on ``core_name``.

    Returns ``(dataset, evaluator)``; the evaluator carries the phase
    timers (``None`` when the dataset was loaded from cache).  Caching
    mirrors the paper's reuse of one big evaluated corpus across all
    synthesis-set sweeps.
    """
    cache_path = None
    if cache_dir is not None:
        cache_path = os.path.join(
            cache_dir,
            "%s-%s-seed%d-n%d.json" % (core_name, template.name, seed, count),
        )
        if os.path.exists(cache_path):
            return EvaluationDataset.load(cache_path), None

    core = build_core(core_name)
    generator = TestCaseGenerator(template, seed=seed)
    evaluator = TestCaseEvaluator(core, template)
    dataset = evaluator.evaluate_many(
        generator.iter_generate(count), progress_every=progress_every
    )
    if cache_path is not None:
        dataset.save(cache_path)
    return dataset, evaluator
