"""Shared plumbing for experiment drivers — a thin layer over
:mod:`repro.pipeline`.

The drivers describe *what* to run (core, attacker, solver, budget,
seed); the pipeline does the running and the dataset caching.  Core
construction goes through :data:`repro.uarch.CORE_REGISTRY`, so
``uarch/`` is the single source of truth for available cores.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.attacker.base import Attacker
from repro.contracts.riscv_template import TEMPLATE_REGISTRY, build_riscv_template
from repro.contracts.template import ContractTemplate
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset
from repro.pipeline import SynthesisPipeline
from repro.uarch import CORE_REGISTRY
from repro.uarch.core import Core


def build_core(name: str) -> Core:
    """Instantiate a registered core model by name."""
    return CORE_REGISTRY.create(name)


def shared_template() -> ContractTemplate:
    """The full RV32IM template used by all experiments."""
    return build_riscv_template()


def experiment_pipeline(
    config,
    core_name: str,
    template: Union[str, ContractTemplate],
    count: int,
    seed: int,
    progress_every: Optional[int] = None,
) -> SynthesisPipeline:
    """A pipeline configured the way the experiment drivers share it:
    attacker/solver/executor from the :class:`ExperimentConfig`,
    dataset cache under the results directory."""
    pipeline = (
        SynthesisPipeline()
        .core(core_name)
        .attacker(config.attacker)
        .solver(config.solver)
        .template(template)
        .budget(count, seed)
        .cache_dir(config.cache_dir())
        .progress(progress_every)
    )
    if config.executor is not None:
        # Executor workers rebuild plugins by registry name.  Drivers
        # share one template *instance*; when it is equal to what its
        # registered name rebuilds, ship the name — otherwise (a
        # bespoke instance, even one reusing a registered name) the
        # in-process evaluator is the only sound path.
        if isinstance(template, str):
            pipeline.executor(config.executor)
        elif _matches_registered_template(template):
            pipeline.template(template.name).executor(config.executor)
    return pipeline


def _matches_registered_template(template: ContractTemplate) -> bool:
    """Whether a worker rebuilding ``template.name`` from the registry
    gets the same atoms — the name alone proves nothing (e.g.
    ``build_riscv_template(max_distance=8)`` keeps the default name)."""
    if template.name not in TEMPLATE_REGISTRY:
        return False
    registered = TEMPLATE_REGISTRY.create(template.name)
    return [atom.name for atom in template] == [atom.name for atom in registered]


def evaluate_dataset(
    core_name: str,
    template: ContractTemplate,
    count: int,
    seed: int,
    cache_dir: Optional[str] = None,
    progress_every: Optional[int] = None,
    attacker: Optional[Union[str, Attacker]] = None,
) -> Tuple[EvaluationDataset, Optional[TestCaseEvaluator]]:
    """Generate and evaluate ``count`` test cases on ``core_name``.

    Returns ``(dataset, evaluator)``; the evaluator carries the phase
    timers (``None`` when the dataset was loaded from cache).  Caching
    mirrors the paper's reuse of one big evaluated corpus across all
    synthesis-set sweeps.
    """
    pipeline = (
        SynthesisPipeline()
        .core(core_name)
        .template(template)
        .budget(count, seed)
        .cache_dir(cache_dir)
        .progress(progress_every)
    )
    if attacker is not None:
        pipeline.attacker(attacker)
    return pipeline.evaluate_with_stats()
