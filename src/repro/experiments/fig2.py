"""Figure 2: precision of synthesized contracts vs. synthesis-set size,
for the base template and its cumulative refinements.

For each template restriction (IL+RL+ML, +AL, +BL, +DL) and each
prefix of the synthesis set, a contract is synthesized and its
precision measured on a held-out evaluation set.  The paper's shape:
precision increases with richer templates; data-dependency leakages
(DL) give the largest improvement; precision dips when new leak kinds
are first discovered (the contract must cover them with coarse atoms
until finer ones are available).

The (restriction x prefix) sweep is a :class:`CampaignSpec`: one cell
per grid point, all cells sharing one dataset stream, so the campaign
runner evaluates the largest budget once and serves every smaller
prefix from it.  Test cases are generated per test id, which makes a
budget-``n`` cell's dataset byte-identical to ``prefix(n)`` of the
full synthesis set — the campaign path reproduces the pre-campaign
driver output exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.campaign import CampaignRunner, CampaignSpec
from repro.contracts.riscv_template import cumulative_family_sets, restriction_label
from repro.contracts.template import Contract
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.reporting.curves import Series, render_ascii_chart, write_csv
from repro.synthesis.metrics import evaluate_contract


@dataclass
class Fig2Result:
    """Precision curves per template restriction."""

    series: List[Series]
    prefixes: List[int]
    evaluation_count: int
    core_name: str = "ibex"

    def final_precision(self, label: str) -> Optional[float]:
        for series in self.series:
            if series.label == label:
                return series.points[-1][1]
        raise KeyError(label)

    def render(self) -> str:
        chart = render_ascii_chart(self.series, log_x=False)
        return (
            "Fig. 2 — contract precision on %d held-out test cases (%s)\n%s"
            % (self.evaluation_count, self.core_name, chart)
        )


def fig2_campaign(config: ExperimentConfig, core_name: str = "ibex") -> CampaignSpec:
    """The Figure 2 grid: cumulative restrictions x synthesis prefixes."""
    return CampaignSpec(
        name="fig2-%s" % core_name,
        cores=(core_name,),
        attackers=(config.attacker,),
        templates=("riscv-rv32im",),
        restrictions=tuple(
            restriction_label(families) for families in cumulative_family_sets()
        ),
        solvers=(config.solver,),
        budgets=tuple(config.synthesis_prefixes()),
        seeds=(config.synthesis_seed,),
        verify=0,
    )


def run_fig2(
    config: Optional[ExperimentConfig] = None,
    core_name: str = "ibex",
) -> Fig2Result:
    """Run the Figure 2 experiment through the campaign runner."""
    config = config if config is not None else ExperimentConfig()
    spec = fig2_campaign(config, core_name)
    campaign = CampaignRunner(
        spec,
        results_dir=config.results_dir,
        cache=config.cache,
        executor=config.executor,
        manifest=config.cache,
    ).run()
    evaluation_set = experiment_pipeline(
        config, core_name, "riscv-rv32im",
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()

    template = shared_template()
    prefixes = config.synthesis_prefixes()
    series: List[Series] = []
    for restriction in spec.restrictions:
        points: List[Tuple[float, Optional[float]]] = []
        for prefix in prefixes:
            outcome = campaign.outcome(restriction=restriction, budget=prefix)
            contract = Contract(template, outcome.atom_ids)
            counts = evaluate_contract(contract, evaluation_set)
            points.append((float(prefix), counts.precision))
        series.append(Series(label=restriction, points=points))

    result = Fig2Result(
        series=series,
        prefixes=prefixes,
        evaluation_count=len(evaluation_set),
        core_name=core_name,
    )
    _save(config, result)
    return result


def _save(config: ExperimentConfig, result: Fig2Result) -> None:
    directory = config.ensure_results_dir()
    write_csv(os.path.join(directory, "fig2_precision.csv"), result.series)
    with open(os.path.join(directory, "fig2_precision.txt"), "w") as stream:
        stream.write(result.render() + "\n")
