"""Figure 2: precision of synthesized contracts vs. synthesis-set size,
for the base template and its cumulative refinements.

For each template restriction (IL+RL+ML, +AL, +BL, +DL) and each
prefix of the synthesis set, a contract is synthesized and its
precision measured on a held-out evaluation set.  The paper's shape:
precision increases with richer templates; data-dependency leakages
(DL) give the largest improvement; precision dips when new leak kinds
are first discovered (the contract must cover them with coarse atoms
until finer ones are available).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.contracts.atoms import LeakageFamily
from repro.contracts.riscv_template import cumulative_family_sets
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.reporting.curves import Series, render_ascii_chart, write_csv
from repro.synthesis.metrics import evaluate_contract


def _family_label(families: Tuple[LeakageFamily, ...]) -> str:
    return "+".join(family.name for family in families)


@dataclass
class Fig2Result:
    """Precision curves per template restriction."""

    series: List[Series]
    prefixes: List[int]
    evaluation_count: int
    core_name: str = "ibex"

    def final_precision(self, label: str) -> Optional[float]:
        for series in self.series:
            if series.label == label:
                return series.points[-1][1]
        raise KeyError(label)

    def render(self) -> str:
        chart = render_ascii_chart(self.series, log_x=False)
        return (
            "Fig. 2 — contract precision on %d held-out test cases (%s)\n%s"
            % (self.evaluation_count, self.core_name, chart)
        )


def run_fig2(
    config: Optional[ExperimentConfig] = None,
    core_name: str = "ibex",
) -> Fig2Result:
    """Run the Figure 2 experiment."""
    config = config if config is not None else ExperimentConfig()
    template = shared_template()

    synthesis_pipeline = experiment_pipeline(
        config, core_name, template,
        config.synthesis_test_cases, config.synthesis_seed,
    )
    synthesis_set = synthesis_pipeline.evaluate()
    evaluation_set = experiment_pipeline(
        config, core_name, template,
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()

    synthesizer = synthesis_pipeline.synthesizer()
    prefixes = config.synthesis_prefixes()
    series: List[Series] = []
    for families in cumulative_family_sets():
        allowed = template.ids_by_family(families)
        points: List[Tuple[float, Optional[float]]] = []
        for prefix in prefixes:
            synthesis_result = synthesizer.synthesize(
                synthesis_set.prefix(prefix), allowed_atom_ids=allowed
            )
            counts = evaluate_contract(synthesis_result.contract, evaluation_set)
            points.append((float(prefix), counts.precision))
        series.append(Series(label=_family_label(families), points=points))

    result = Fig2Result(
        series=series,
        prefixes=prefixes,
        evaluation_count=len(evaluation_set),
        core_name=core_name,
    )
    _save(config, result)
    return result


def _save(config: ExperimentConfig, result: Fig2Result) -> None:
    directory = config.ensure_results_dir()
    write_csv(os.path.join(directory, "fig2_precision.csv"), result.series)
    with open(os.path.join(directory, "fig2_precision.txt"), "w") as stream:
        stream.write(result.render() + "\n")
