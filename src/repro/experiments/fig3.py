"""Figure 3: sensitivity of full-template contracts vs. synthesis-set
size (logarithmic x-axis).

Sensitivity = TP / (TP + FN) on the held-out set: how much of the
processor's actual leakage the synthesized contract captures.  It
rises quickly while new leakage sources are being discovered and then
flattens (the paper: flat after ~15k cases, final value 99.93%).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.reporting.curves import Series, render_ascii_chart, write_csv
from repro.synthesis.metrics import evaluate_contract


@dataclass
class Fig3Result:
    """The sensitivity curve."""

    series: Series
    prefixes: List[int]
    evaluation_count: int
    core_name: str = "ibex"

    @property
    def final_sensitivity(self) -> Optional[float]:
        return self.series.points[-1][1]

    def render(self) -> str:
        chart = render_ascii_chart([self.series], log_x=True)
        return (
            "Fig. 3 — contract sensitivity on %d held-out test cases (%s)\n"
            "final sensitivity: %s\n%s"
            % (
                self.evaluation_count,
                self.core_name,
                "%.4f" % self.final_sensitivity
                if self.final_sensitivity is not None
                else "n/a",
                chart,
            )
        )


def run_fig3(
    config: Optional[ExperimentConfig] = None,
    core_name: str = "ibex",
) -> Fig3Result:
    """Run the Figure 3 experiment."""
    config = config if config is not None else ExperimentConfig()
    template = shared_template()

    synthesis_pipeline = experiment_pipeline(
        config, core_name, template,
        config.synthesis_test_cases, config.synthesis_seed,
    )
    synthesis_set = synthesis_pipeline.evaluate()
    evaluation_set = experiment_pipeline(
        config, core_name, template,
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()

    synthesizer = synthesis_pipeline.synthesizer()
    prefixes = config.sensitivity_prefixes()
    points: List[Tuple[float, Optional[float]]] = []
    for prefix in prefixes:
        synthesis_result = synthesizer.synthesize(synthesis_set.prefix(prefix))
        counts = evaluate_contract(synthesis_result.contract, evaluation_set)
        points.append((float(prefix), counts.sensitivity))

    result = Fig3Result(
        series=Series(label="full template", points=points),
        prefixes=prefixes,
        evaluation_count=len(evaluation_set),
        core_name=core_name,
    )
    directory = config.ensure_results_dir()
    write_csv(os.path.join(directory, "fig3_sensitivity.csv"), [result.series])
    with open(os.path.join(directory, "fig3_sensitivity.txt"), "w") as stream:
        stream.write(result.render() + "\n")
    return result
