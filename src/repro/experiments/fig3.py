"""Figure 3: sensitivity of full-template contracts vs. synthesis-set
size (logarithmic x-axis).

Sensitivity = TP / (TP + FN) on the held-out set: how much of the
processor's actual leakage the synthesized contract captures.  It
rises quickly while new leakage sources are being discovered and then
flattens (the paper: flat after ~15k cases, final value 99.93%).

Like Figure 2, the prefix sweep is a :class:`CampaignSpec` — one cell
per synthesis budget, unrestricted template — and all cells share one
dataset stream, so the campaign runner evaluates the largest budget
once and derives the rest by prefix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.campaign import CampaignRunner, CampaignSpec
from repro.contracts.template import Contract
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import experiment_pipeline, shared_template
from repro.reporting.curves import Series, render_ascii_chart, write_csv
from repro.synthesis.metrics import evaluate_contract


@dataclass
class Fig3Result:
    """The sensitivity curve."""

    series: Series
    prefixes: List[int]
    evaluation_count: int
    core_name: str = "ibex"

    @property
    def final_sensitivity(self) -> Optional[float]:
        return self.series.points[-1][1]

    def render(self) -> str:
        chart = render_ascii_chart([self.series], log_x=True)
        return (
            "Fig. 3 — contract sensitivity on %d held-out test cases (%s)\n"
            "final sensitivity: %s\n%s"
            % (
                self.evaluation_count,
                self.core_name,
                "%.4f" % self.final_sensitivity
                if self.final_sensitivity is not None
                else "n/a",
                chart,
            )
        )


def fig3_campaign(config: ExperimentConfig, core_name: str = "ibex") -> CampaignSpec:
    """The Figure 3 grid: full template x log-spaced synthesis budgets."""
    return CampaignSpec(
        name="fig3-%s" % core_name,
        cores=(core_name,),
        attackers=(config.attacker,),
        templates=("riscv-rv32im",),
        solvers=(config.solver,),
        budgets=tuple(config.sensitivity_prefixes()),
        seeds=(config.synthesis_seed,),
        verify=0,
    )


def run_fig3(
    config: Optional[ExperimentConfig] = None,
    core_name: str = "ibex",
) -> Fig3Result:
    """Run the Figure 3 experiment through the campaign runner."""
    config = config if config is not None else ExperimentConfig()
    spec = fig3_campaign(config, core_name)
    campaign = CampaignRunner(
        spec,
        results_dir=config.results_dir,
        cache=config.cache,
        executor=config.executor,
        manifest=config.cache,
    ).run()
    evaluation_set = experiment_pipeline(
        config, core_name, "riscv-rv32im",
        config.evaluation_test_cases, config.evaluation_seed,
    ).evaluate()

    template = shared_template()
    prefixes = config.sensitivity_prefixes()
    points: List[Tuple[float, Optional[float]]] = []
    for prefix in prefixes:
        outcome = campaign.outcome(budget=prefix)
        contract = Contract(template, outcome.atom_ids)
        counts = evaluate_contract(contract, evaluation_set)
        points.append((float(prefix), counts.sensitivity))

    result = Fig3Result(
        series=Series(label="full template", points=points),
        prefixes=prefixes,
        evaluation_count=len(evaluation_set),
        core_name=core_name,
    )
    directory = config.ensure_results_dir()
    write_csv(os.path.join(directory, "fig3_sensitivity.csv"), [result.series])
    with open(os.path.join(directory, "fig3_sensitivity.txt"), "w") as stream:
        stream.write(result.render() + "\n")
    return result
