"""Experiment drivers reproducing the paper's figures and tables.

Each driver is a pure function of an :class:`ExperimentConfig`; sizes
default to laptop-scale counts and scale linearly with the
``REPRO_SCALE`` environment variable (the paper uses 100k-2M test
cases on a 128-thread Threadripper; shapes saturate far earlier).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_core, evaluate_dataset, experiment_pipeline
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.contract_tables import (
    ContractTableResult,
    run_table1,
    run_table2,
)
from repro.experiments.table3 import Table3Result, run_table3

__all__ = [
    "ContractTableResult",
    "ExperimentConfig",
    "Fig2Result",
    "Fig3Result",
    "Table3Result",
    "build_core",
    "evaluate_dataset",
    "experiment_pipeline",
    "run_fig2",
    "run_fig3",
    "run_table1",
    "run_table2",
    "run_table3",
]
