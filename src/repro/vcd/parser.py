"""A parser for the VCD subset produced by :mod:`repro.vcd.writer`
(and by common simulators, for the constructs we emit)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class VcdSignal:
    """One declared signal and its change history."""

    name: str
    width: int
    identifier: str
    #: (time, value) pairs in file order; ``None`` marks unknown (x/z).
    changes: List[Tuple[int, Optional[int]]] = field(default_factory=list)

    def value_at(self, time: int) -> Optional[int]:
        """The signal's value at ``time`` (last change at or before)."""
        value: Optional[int] = None
        for change_time, change_value in self.changes:
            if change_time > time:
                break
            value = change_value
        return value


class VcdParseError(ValueError):
    """Raised on malformed VCD input."""


def parse_vcd(text: str) -> Dict[str, VcdSignal]:
    """Parse ``text`` into a mapping of signal name to history."""
    tokens = text.split()
    signals_by_id: Dict[str, VcdSignal] = {}
    signals: Dict[str, VcdSignal] = {}
    position = 0
    time = 0
    in_definitions = True

    def skip_directive(start: int) -> int:
        cursor = start
        while cursor < len(tokens) and tokens[cursor] != "$end":
            cursor += 1
        if cursor >= len(tokens):
            raise VcdParseError("unterminated directive")
        return cursor + 1

    while position < len(tokens):
        token = tokens[position]
        if in_definitions:
            if token == "$var":
                if position + 5 >= len(tokens):
                    raise VcdParseError("truncated $var")
                _kind = tokens[position + 1]
                width = int(tokens[position + 2])
                identifier = tokens[position + 3]
                name = tokens[position + 4]
                if tokens[position + 5] != "$end":
                    raise VcdParseError("malformed $var for %r" % name)
                signal = VcdSignal(name=name, width=width, identifier=identifier)
                signals_by_id[identifier] = signal
                signals[name] = signal
                position += 6
                continue
            if token == "$enddefinitions":
                in_definitions = False
                position = skip_directive(position + 1)
                continue
            if token.startswith("$"):
                position = skip_directive(position + 1)
                continue
            raise VcdParseError("unexpected token in header: %r" % token)

        if token.startswith("#"):
            time = int(token[1:])
            position += 1
            continue
        if token.startswith("b") or token.startswith("B"):
            literal = token[1:]
            if position + 1 >= len(tokens):
                raise VcdParseError("vector change missing identifier")
            identifier = tokens[position + 1]
            value: Optional[int]
            if set(literal) & {"x", "X", "z", "Z"}:
                value = None
            else:
                value = int(literal, 2)
            _record_change(signals_by_id, identifier, time, value)
            position += 2
            continue
        if token[0] in "01xXzZ":
            identifier = token[1:]
            value = None if token[0] in "xXzZ" else int(token[0])
            _record_change(signals_by_id, identifier, time, value)
            position += 1
            continue
        if token.startswith("$"):  # $dumpvars etc.
            position += 1
            continue
        raise VcdParseError("unexpected token in body: %r" % token)

    return signals


def _record_change(
    signals_by_id: Dict[str, VcdSignal],
    identifier: str,
    time: int,
    value: Optional[int],
) -> None:
    signal = signals_by_id.get(identifier)
    if signal is None:
        raise VcdParseError("change for undeclared signal: %r" % identifier)
    signal.changes.append((time, value))
