"""Dumping RVFI retirement streams to VCD and reconstructing them.

This reproduces the waveform leg of the paper's pipeline (§IV-D): the
testbench dumps RVFI signals to a VCD file, and the atom extractor
rebuilds the architectural trace from that waveform alone — decoding
the instruction words and re-deriving branch outcomes and dependency
distances from architectural values.

Cores with a multi-wide commit port retire several instructions in one
cycle; like hardware RVFI, the dump uses ``nret`` parallel channels
(``rvfi_ch<k>_*``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.encoding import decode_instruction
from repro.isa.executor import ExecRecord, annotate_dependency_distances
from repro.isa.instructions import InstructionCategory
from repro.vcd.parser import parse_vcd
from repro.vcd.writer import VcdWriter

_CHANNEL_FIELDS = (
    ("valid", 1),
    ("order", 16),
    ("insn", 32),
    ("pc_rdata", 32),
    ("pc_wdata", 32),
    ("rs1_rdata", 32),
    ("rs2_rdata", 32),
    ("rd_wdata", 32),
    ("mem_valid", 1),
    ("mem_is_store", 1),
    ("mem_addr", 32),
    ("mem_rdata", 32),
    ("mem_wdata", 32),
)


def _signal_name(channel: int, field: str) -> str:
    return "rvfi_ch%d_%s" % (channel, field)


def dump_rvfi_trace(trace, path: str, nret: int = 2) -> None:
    """Write ``trace`` (an :class:`~repro.uarch.rvfi.RvfiTrace`) to a
    VCD file at ``path``."""
    writer = VcdWriter(timescale="1ns", scope="rvfi")
    identifiers: Dict[str, str] = {}
    for channel in range(nret):
        for field, width in _CHANNEL_FIELDS:
            name = _signal_name(channel, field)
            identifiers[name] = writer.add_signal(name, width)

    for channel in range(nret):
        writer.change(0, identifiers[_signal_name(channel, "valid")], 0)

    by_cycle: Dict[int, List] = {}
    for record in trace:
        by_cycle.setdefault(record.retire_cycle, []).append(record)

    for cycle in sorted(by_cycle):
        retirements = by_cycle[cycle]
        if len(retirements) > nret:
            raise ValueError(
                "%d retirements in cycle %d exceed nret=%d"
                % (len(retirements), cycle, nret)
            )
        for channel in range(nret):

            def prefix(field, channel=channel):
                return identifiers[_signal_name(channel, field)]

            if channel < len(retirements):
                record = retirements[channel]
                exec_record = record.exec_record
                writer.change(cycle, prefix("valid"), 1)
                writer.change(cycle, prefix("order"), record.order)
                writer.change(cycle, prefix("insn"), record.insn)
                writer.change(cycle, prefix("pc_rdata"), record.pc_rdata)
                writer.change(cycle, prefix("pc_wdata"), record.pc_wdata)
                writer.change(cycle, prefix("rs1_rdata"), record.rs1_rdata)
                writer.change(cycle, prefix("rs2_rdata"), record.rs2_rdata)
                writer.change(cycle, prefix("rd_wdata"), record.rd_wdata)
                memory_address = exec_record.memory_address
                writer.change(cycle, prefix("mem_valid"), int(memory_address is not None))
                is_store = exec_record.mem_write_addr is not None
                writer.change(cycle, prefix("mem_is_store"), int(is_store))
                writer.change(cycle, prefix("mem_addr"), memory_address or 0)
                writer.change(cycle, prefix("mem_rdata"), exec_record.mem_read_data or 0)
                writer.change(cycle, prefix("mem_wdata"), exec_record.mem_write_data or 0)
            else:
                writer.change(cycle, prefix("valid"), 0)
        # Deassert valids after the retirement cycle so later cycles
        # without changes read as idle.
        for channel in range(min(len(retirements), nret)):
            writer.change(
                cycle + 1, identifiers[_signal_name(channel, "valid")], 0
            )
    writer.save(path)


def load_exec_records(path: str, nret: int = 2, dependency_window: int = 4):
    """Reconstruct the architectural trace from an RVFI VCD dump.

    Returns ``(exec_records, retire_cycles)``.  Branch outcomes are
    re-derived by evaluating the branch condition on the recorded
    operand values (``pc_wdata`` alone cannot distinguish a taken
    branch whose target is the fall-through pc), and dependency
    distances are recomputed over the reconstructed stream.
    """
    with open(path) as stream:
        signals = parse_vcd(stream.read())

    events = []
    for channel in range(nret):
        try:
            valid = signals[_signal_name(channel, "valid")]
        except KeyError:
            break
        fields = {
            field: signals[_signal_name(channel, field)]
            for field, _width in _CHANNEL_FIELDS
        }
        for time, value in valid.changes:
            if value == 1:
                events.append((time, channel, fields))

    records: List[ExecRecord] = []
    retire_cycles: List[int] = []
    for time, _channel, fields in sorted(events, key=lambda e: (e[0], e[1])):
        def at(field: str) -> int:
            value = fields[field].value_at(time)
            return 0 if value is None else value

        instruction = decode_instruction(at("insn"))
        record = ExecRecord(
            index=at("order"),
            pc=at("pc_rdata"),
            next_pc=at("pc_wdata"),
            instruction=instruction,
            rs1_value=at("rs1_rdata"),
            rs2_value=at("rs2_rdata"),
            rd_value=at("rd_wdata"),
        )
        if at("mem_valid"):
            if at("mem_is_store"):
                record.mem_write_addr = at("mem_addr")
                record.mem_write_data = at("mem_wdata")
            else:
                record.mem_read_addr = at("mem_addr")
                record.mem_read_data = at("mem_rdata")
        if instruction.category is InstructionCategory.BRANCH:
            from repro.isa.executor import _branch_condition

            record.branch_taken = _branch_condition(
                instruction.opcode, record.rs1_value, record.rs2_value
            )
        records.append(record)
        retire_cycles.append(time)

    records.sort(key=lambda record: record.index)
    annotate_dependency_distances(records, dependency_window)
    return records, retire_cycles
