"""Value-change-dump (VCD) waveforms.

The paper's toolchain derives distinguishing atoms from the VCD
waveform produced by the Verilog simulation (§IV-D).  This package
provides a writer and parser for the VCD subset needed to round-trip
RVFI retirement streams through waveform files.
"""

from repro.vcd.writer import VcdWriter
from repro.vcd.parser import VcdSignal, parse_vcd
from repro.vcd.rvfi_vcd import dump_rvfi_trace, load_exec_records

__all__ = [
    "VcdSignal",
    "VcdWriter",
    "dump_rvfi_trace",
    "load_exec_records",
    "parse_vcd",
]
