"""A minimal VCD (IEEE 1364 §18) writer.

Supports scalar and vector wires in a single scope, which is all the
RVFI dump needs; emitted files load in GTKWave and round-trip through
:mod:`repro.vcd.parser`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

_IDENTIFIER_ALPHABET = "".join(chr(code) for code in range(33, 127))


def _identifier_for(index: int) -> str:
    """Short printable identifier for signal ``index`` (base-94)."""
    if index < 0:
        raise ValueError("negative signal index")
    digits = []
    while True:
        digits.append(_IDENTIFIER_ALPHABET[index % 94])
        index //= 94
        if index == 0:
            break
    return "".join(reversed(digits))


class VcdWriter:
    """Collects signal declarations and value changes, then renders.

    Usage::

        writer = VcdWriter(timescale="1ns", scope="rvfi")
        clk = writer.add_signal("clk", width=1)
        writer.change(0, clk, 1)
        text = writer.render()
    """

    def __init__(self, timescale: str = "1ns", scope: str = "top",
                 date: str = "reproducible", version: str = "repro-vcd"):
        self.timescale = timescale
        self.scope = scope
        self.date = date
        self.version = version
        self._signals: List[Tuple[str, int, str]] = []  # (name, width, id)
        self._names: Dict[str, str] = {}
        self._changes: Dict[int, List[Tuple[str, int, Optional[int]]]] = {}

    def add_signal(self, name: str, width: int = 1) -> str:
        """Declare a wire; returns its VCD identifier."""
        if not 1 <= width <= 64:
            raise ValueError("signal width out of range: %r" % (width,))
        if name in self._names:
            raise ValueError("duplicate signal name: %r" % (name,))
        identifier = _identifier_for(len(self._signals))
        self._signals.append((name, width, identifier))
        self._names[name] = identifier
        return identifier

    def change(self, time: int, identifier: str, value: Optional[int]) -> None:
        """Record that ``identifier`` takes ``value`` at ``time``.

        ``None`` renders as all-x (unknown), matching how an RVFI bus
        is undriven between retirements.
        """
        if time < 0:
            raise ValueError("negative time: %r" % (time,))
        width = self._width_of(identifier)
        if value is not None and not 0 <= value < (1 << width):
            raise ValueError(
                "value %r does not fit signal of width %d" % (value, width)
            )
        self._changes.setdefault(time, []).append((identifier, width, value))

    def change_by_name(self, time: int, name: str, value: Optional[int]) -> None:
        self.change(time, self._names[name], value)

    def _width_of(self, identifier: str) -> int:
        for _name, width, candidate in self._signals:
            if candidate == identifier:
                return width
        raise KeyError("unknown signal identifier: %r" % (identifier,))

    def render(self) -> str:
        """Render the complete VCD document."""
        lines = [
            "$date %s $end" % self.date,
            "$version %s $end" % self.version,
            "$timescale %s $end" % self.timescale,
            "$scope module %s $end" % self.scope,
        ]
        for name, width, identifier in self._signals:
            lines.append("$var wire %d %s %s $end" % (width, identifier, name))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        for time in sorted(self._changes):
            lines.append("#%d" % time)
            for identifier, width, value in self._changes[time]:
                lines.append(_format_change(identifier, width, value))
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w") as stream:
            stream.write(self.render())


def _format_change(identifier: str, width: int, value: Optional[int]) -> str:
    if width == 1:
        if value is None:
            return "x%s" % identifier
        return "%d%s" % (value & 1, identifier)
    if value is None:
        return "bx %s" % identifier
    return "b%s %s" % (format(value, "b"), identifier)
