"""End-to-end contract synthesis (§III-D).

``synthesize`` ties the pieces together: reduce an evaluation dataset
to an ILP instance (optionally under a template restriction), solve
it, and package the optimal contract with its diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.contracts.template import Contract, ContractTemplate
from repro.evaluation.results import EvaluationDataset
from repro.metrics.registry import current_metrics
from repro.synthesis.ilp import IlpInstance, build_ilp_instance
from repro.synthesis.solvers import (
    IlpSolver,
    ScipyMilpSolver,
    SolverResult,
    eliminate_redundant_atoms,
)
from repro.trace.tracer import profile_step


@dataclass
class SynthesisResult:
    """A synthesized contract plus synthesis diagnostics."""

    contract: Contract
    solver_result: SolverResult
    instance: IlpInstance
    wall_seconds: float
    #: Test ids of false positives under the synthesized contract.
    false_positive_test_ids: Tuple[int, ...] = field(default=())

    @property
    def false_positives(self) -> int:
        return self.solver_result.false_positives

    @property
    def atom_count(self) -> int:
        return len(self.contract)

    @property
    def uncoverable_test_ids(self) -> Tuple[int, ...]:
        return self.instance.uncoverable_test_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SynthesisResult(%d atoms, %d false positives, %.3fs)" % (
            self.atom_count,
            self.false_positives,
            self.wall_seconds,
        )


class ContractSynthesizer:
    """Reusable synthesis front end bound to a template and solver."""

    def __init__(
        self,
        template: ContractTemplate,
        solver: Optional[IlpSolver] = None,
    ):
        self.template = template
        self.solver = solver if solver is not None else ScipyMilpSolver()

    # Profiled (end-only span records, via the process-wide tracer the
    # pipeline installs): the ILP solve is the phase Table III shows
    # dominating at scale, so its per-call durations are worth having
    # in every trace file without begin-record overhead.
    @profile_step("ilp-solve")
    def synthesize(
        self,
        dataset: EvaluationDataset,
        allowed_atom_ids: Optional[Iterable[int]] = None,
        warm_start: Optional[Iterable[int]] = None,
    ) -> SynthesisResult:
        """Synthesize the most precise correct contract for ``dataset``.

        ``allowed_atom_ids`` restricts the template (e.g. to the
        IL+RL+ML base families); atom ids refer to ``self.template``.

        ``warm_start`` is a previously synthesized selection (the
        adaptive loop passes the previous round's contract): when it
        still covers every coverage constraint of the new instance at
        zero false-positive weight it is *provably optimal* (the
        objective is a non-negative FP count), so the solve is skipped
        and the selection is re-canonicalized instead — in the steady
        state of a converged loop each round's synthesis degenerates to
        this feasibility check.  Any other warm selection is ignored
        and the backend solves cold.
        """
        start = time.perf_counter()
        metrics = current_metrics()
        instance = build_ilp_instance(dataset, allowed_atom_ids)
        solver_result = None
        if warm_start is not None:
            solver_result = self._try_warm_start(instance, warm_start)
        if solver_result is None:
            solver_result = self.solver.solve(instance)
            metrics.counter("solver.cold_solves").inc()
        else:
            metrics.counter("solver.warm_starts").inc()
        for stat in ("constraints", "variables"):
            value = solver_result.stats.get(stat)
            if value is not None:
                metrics.histogram("solver.%s" % stat).observe(value)
        contract = Contract(self.template, solver_result.selected_atom_ids)
        elapsed = time.perf_counter() - start
        return SynthesisResult(
            contract=contract,
            solver_result=solver_result,
            instance=instance,
            wall_seconds=elapsed,
            false_positive_test_ids=tuple(
                instance.false_positive_test_ids(solver_result.selected_atom_ids)
            ),
        )

    def _try_warm_start(
        self, instance: IlpInstance, warm_start: Iterable[int]
    ) -> Optional[SolverResult]:
        """A :class:`SolverResult` for a still-optimal warm selection,
        or ``None`` when a cold solve is needed.

        The warm selection is first intersected with the instance's
        candidate set (new data may have dominance-eliminated an atom);
        it is reused only when the intersection still covers every
        constraint at zero FP weight, which makes it objective-optimal.
        """
        if not instance.cover_sets:
            return None
        selection = frozenset(warm_start) & frozenset(instance.candidate_atom_ids)
        if not selection or not instance.covers_all(selection):
            return None
        if instance.false_positive_weight(selection) != 0:
            return None
        selected = frozenset(eliminate_redundant_atoms(instance, sorted(selection)))
        return SolverResult(
            selected_atom_ids=selected,
            false_positives=0,
            solver_name=self.solver.name,
            optimal=True,
            stats={"warm_start": 1.0},
        )


def synthesize(
    dataset: EvaluationDataset,
    template: ContractTemplate,
    allowed_atom_ids: Optional[Iterable[int]] = None,
    solver: Optional[IlpSolver] = None,
) -> SynthesisResult:
    """One-shot convenience wrapper around :class:`ContractSynthesizer`."""
    return ContractSynthesizer(template, solver).synthesize(dataset, allowed_atom_ids)
