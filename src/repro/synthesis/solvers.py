"""Solver backends for the synthesis ILP.

Three interchangeable backends:

- :class:`ScipyMilpSolver` — exact, via ``scipy.optimize.milp``
  (HiGHS).  The default; the paper uses Google OR-Tools, any exact
  0-1 ILP solver yields the same optimum.
- :class:`BranchAndBoundSolver` — exact, pure Python.  Self-contained
  reference implementation used to cross-check the scipy backend and
  in environments without SciPy.
- :class:`GreedySolver` — a classic weighted set-cover heuristic used
  as an ablation baseline (how much precision does optimality buy?).

All backends minimize false positives first and break ties toward
fewer atoms, so synthesized contracts are canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.synthesis.ilp import IlpInstance


@dataclass
class SolverResult:
    """Outcome of one ILP solve."""

    selected_atom_ids: FrozenSet[int]
    false_positives: int
    solver_name: str
    optimal: bool
    #: Backend-specific statistics (nodes explored, iterations, ...).
    stats: Dict[str, float] = None

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = {}


class IlpSolver:
    """Backend interface."""

    name = "abstract"

    def solve(self, instance: IlpInstance) -> SolverResult:
        raise NotImplementedError

    @staticmethod
    def _verify(instance: IlpInstance, selection: FrozenSet[int]) -> None:
        if not instance.covers_all(selection):
            raise AssertionError("solver returned a non-covering selection")


def eliminate_redundant_atoms(
    instance: IlpInstance, selection: Sequence[int]
) -> List[int]:
    """Drop atoms whose coverage is subsumed by the rest.

    Loss-free: removing atoms never increases the number of false
    positives, and coverage is re-checked per removal.  The most
    FP-expensive redundancies are dropped first.
    """
    fp_cost = {atom_id: 0 for atom_id in selection}
    for atoms, weight in instance.fp_sets:
        for atom_id in atoms:
            if atom_id in fp_cost:
                fp_cost[atom_id] += weight
    coverage = {atom_id: 0 for atom_id in selection}
    for atoms in instance.cover_sets:
        for atom_id in atoms:
            if atom_id in coverage:
                coverage[atom_id] += 1
    kept = list(selection)
    # Try to drop FP-expensive atoms first, then narrow ones.
    for atom_id in sorted(selection, key=lambda a: (-fp_cost[a], coverage[a], a)):
        remainder = [other for other in kept if other != atom_id]
        if remainder and instance.covers_all(remainder):
            kept = remainder
    return kept


class ScipyMilpSolver(IlpSolver):
    """Exact backend on ``scipy.optimize.milp`` (HiGHS).

    ``time_limit`` (seconds) bounds the branch-and-cut search; when it
    is hit, the best incumbent is returned with ``optimal=False`` (and
    the greedy solution is used if HiGHS has no incumbent yet).  Dense
    instances — deep-pipeline cores whose mispredictions make whole
    suffixes distinguishable — can otherwise take hours to *prove*
    optimality long after finding the optimum.
    """

    name = "scipy-milp"

    def __init__(self, time_limit: Optional[float] = 120.0):
        self.time_limit = time_limit

    def solve(self, instance: IlpInstance) -> SolverResult:
        import numpy as np
        from scipy import sparse
        from scipy.optimize import Bounds, LinearConstraint, milp

        atom_ids = instance.candidate_atom_ids
        atom_index = {atom_id: index for index, atom_id in enumerate(atom_ids)}
        atom_count = len(atom_ids)
        fp_count = len(instance.fp_sets)
        variable_count = atom_count + fp_count

        if not instance.cover_sets:
            return SolverResult(frozenset(), 0, self.name, optimal=True)

        # Objective: FP weights on the c_t variables only.  Selected
        # atoms carry no cost (an epsilon tie-break toward smaller
        # contracts makes the MILP hugely degenerate and slow); the
        # contract is minimized afterwards by loss-free redundancy
        # elimination.
        objective = np.zeros(variable_count)
        for index, (_atoms, weight) in enumerate(instance.fp_sets):
            objective[atom_count + index] = float(weight)

        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        lower: List[float] = []
        upper: List[float] = []
        row = 0
        for atoms in instance.cover_sets:
            for atom_id in atoms:
                rows.append(row)
                cols.append(atom_index[atom_id])
                data.append(1.0)
            lower.append(1.0)
            upper.append(float(len(atoms)))
            row += 1
        for fp_position, (atoms, _weight) in enumerate(instance.fp_sets):
            for atom_id in atoms:
                # s_A - c_t <= 0
                rows.append(row)
                cols.append(atom_index[atom_id])
                data.append(1.0)
                rows.append(row)
                cols.append(atom_count + fp_position)
                data.append(-1.0)
                lower.append(-1.0)
                upper.append(0.0)
                row += 1

        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(row, variable_count)
        )
        options = {}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        result = milp(
            c=objective,
            constraints=LinearConstraint(matrix, lower, upper),
            integrality=np.ones(variable_count),
            bounds=Bounds(0.0, 1.0),
            options=options,
        )
        optimal = bool(result.success)
        if result.x is not None:
            raw_selection = [
                atom_ids[index]
                for index in range(atom_count)
                if result.x[index] > 0.5
            ]
        elif result.status == 1:  # time/iteration limit, no incumbent
            raw_selection = sorted(GreedySolver().solve(instance).selected_atom_ids)
            optimal = False
        else:  # pragma: no cover - defensive
            raise RuntimeError("MILP solve failed: %s" % result.message)
        selected = frozenset(eliminate_redundant_atoms(instance, raw_selection))
        self._verify(instance, selected)
        return SolverResult(
            selected_atom_ids=selected,
            false_positives=instance.false_positive_weight(selected),
            solver_name=self.name,
            optimal=optimal,
            stats={"variables": variable_count, "constraints": row},
        )


class GreedySolver(IlpSolver):
    """Weighted greedy set cover with redundancy elimination."""

    name = "greedy"

    def solve(self, instance: IlpInstance) -> SolverResult:
        uncovered = set(range(len(instance.cover_sets)))
        atom_covers: Dict[int, set] = {atom_id: set() for atom_id in instance.candidate_atom_ids}
        for position, atoms in enumerate(instance.cover_sets):
            for atom_id in atoms:
                atom_covers[atom_id].add(position)
        atom_fp: Dict[int, int] = {atom_id: 0 for atom_id in instance.candidate_atom_ids}
        for atoms, weight in instance.fp_sets:
            for atom_id in atoms:
                atom_fp[atom_id] += weight

        selection: List[int] = []
        iterations = 0
        while uncovered:
            iterations += 1
            best_atom = None
            best_key = None
            for atom_id, covers in atom_covers.items():
                gain = len(covers & uncovered)
                if gain == 0:
                    continue
                # Cheapest additional FP per newly covered constraint;
                # ties toward smaller atom id for determinism.
                key = (atom_fp[atom_id] / gain, -gain, atom_id)
                if best_key is None or key < best_key:
                    best_key = key
                    best_atom = atom_id
            selection.append(best_atom)
            uncovered -= atom_covers[best_atom]

        selection = eliminate_redundant_atoms(instance, selection)
        selected = frozenset(selection)
        self._verify(instance, selected)
        return SolverResult(
            selected_atom_ids=selected,
            false_positives=instance.false_positive_weight(selected),
            solver_name=self.name,
            optimal=False,
            stats={"iterations": iterations},
        )


class BranchAndBoundSolver(IlpSolver):
    """Exact pure-Python branch & bound over the coverage structure.

    Search state is a bitmask of covered constraints plus a bitmask of
    touched FP sets; the greedy solution provides the initial upper
    bound, and a branch is pruned when its FP weight (an admissible
    lower bound — selecting more atoms never removes false positives)
    reaches the incumbent.
    """

    name = "branch-and-bound"

    def __init__(self, node_limit: int = 2_000_000):
        self.node_limit = node_limit

    def solve(self, instance: IlpInstance) -> SolverResult:
        cover_count = len(instance.cover_sets)
        if cover_count == 0:
            return SolverResult(frozenset(), 0, self.name, optimal=True)

        atom_ids = instance.candidate_atom_ids
        cover_mask: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
        for position, atoms in enumerate(instance.cover_sets):
            bit = 1 << position
            for atom_id in atoms:
                cover_mask[atom_id] |= bit
        fp_mask: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
        fp_weights = [weight for _atoms, weight in instance.fp_sets]
        for position, (atoms, _weight) in enumerate(instance.fp_sets):
            bit = 1 << position
            for atom_id in atoms:
                fp_mask[atom_id] |= bit

        def weight_of(mask: int) -> int:
            total = 0
            position = 0
            while mask:
                if mask & 1:
                    total += fp_weights[position]
                mask >>= 1
                position += 1
            return total

        greedy = GreedySolver().solve(instance)
        best_selection = tuple(sorted(greedy.selected_atom_ids))
        best_key = (greedy.false_positives, len(best_selection))
        full_mask = (1 << cover_count) - 1

        # Order the atoms inside each constraint by FP cost (cheap
        # first) so good solutions are found early.
        constraint_options: List[List[int]] = [
            sorted(atoms, key=lambda a: (weight_of(fp_mask[a]), a))
            for atoms in instance.cover_sets
        ]

        nodes = [0]
        optimal = [True]

        def search(covered: int, fp_bits: int, selection: Tuple[int, ...]):
            nonlocal best_selection, best_key
            nodes[0] += 1
            if nodes[0] > self.node_limit:  # pragma: no cover - safety valve
                optimal[0] = False
                return
            current_fp = weight_of(fp_bits)
            key = (current_fp, len(selection))
            if key >= best_key:
                return
            if covered == full_mask:
                best_key = key
                best_selection = selection
                return
            # Branch on the uncovered constraint with fewest options.
            pivot = None
            pivot_options = None
            for position in range(cover_count):
                if covered & (1 << position):
                    continue
                options = constraint_options[position]
                if pivot_options is None or len(options) < len(pivot_options):
                    pivot, pivot_options = position, options
                    if len(options) == 1:
                        break
            for atom_id in pivot_options:
                search(
                    covered | cover_mask[atom_id],
                    fp_bits | fp_mask[atom_id],
                    selection + (atom_id,),
                )

        search(0, 0, ())
        selected = frozenset(best_selection)
        self._verify(instance, selected)
        return SolverResult(
            selected_atom_ids=selected,
            false_positives=instance.false_positive_weight(selected),
            solver_name=self.name,
            optimal=optimal[0],
            stats={"nodes": nodes[0]},
        )
