"""Classification metrics for contracts (§III-B, Fig. 2/3).

A contract plays the role of a binary classifier over test cases:
positive = contract distinguishable.  Ground truth = attacker
distinguishable.  Precision is what the synthesis maximizes; sensitivity
measures how much actual leakage the synthesis test set exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.contracts.template import Contract
from repro.evaluation.results import EvaluationDataset


@dataclass(frozen=True)
class ClassificationCounts:
    """Confusion-matrix counts of a contract over a dataset."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )

    @property
    def precision(self) -> Optional[float]:
        """TP / (TP + FP); ``None`` when the contract flags nothing."""
        flagged = self.true_positives + self.false_positives
        if flagged == 0:
            return None
        return self.true_positives / flagged

    @property
    def sensitivity(self) -> Optional[float]:
        """TP / (TP + FN); ``None`` when nothing is attacker
        distinguishable."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return None
        return self.true_positives / actual

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            "ClassificationCounts(tp=%d, fp=%d, fn=%d, tn=%d)"
            % (
                self.true_positives,
                self.false_positives,
                self.false_negatives,
                self.true_negatives,
            )
        )


def evaluate_contract(
    contract: Contract, dataset: EvaluationDataset
) -> ClassificationCounts:
    """Score ``contract`` against (typically held-out) ``dataset``."""
    true_positives = false_positives = false_negatives = true_negatives = 0
    atom_ids = contract.atom_ids
    for result in dataset:
        contract_distinguishable = not atom_ids.isdisjoint(
            result.distinguishing_atom_ids
        )
        if result.attacker_distinguishable:
            if contract_distinguishable:
                true_positives += 1
            else:
                false_negatives += 1
        else:
            if contract_distinguishable:
                false_positives += 1
            else:
                true_negatives += 1
    return ClassificationCounts(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        true_negatives=true_negatives,
    )


def verify_contract_correctness(
    contract: Contract,
    dataset: EvaluationDataset,
    allowed_atom_ids=None,
) -> bool:
    """Check that ``contract`` distinguishes every attacker-
    distinguishable test case that the (restricted) template can
    distinguish at all — the paper's contract-satisfaction guarantee
    on the synthesis test set."""
    allowed = None if allowed_atom_ids is None else frozenset(allowed_atom_ids)
    for result in dataset.distinguishable:
        atoms = result.distinguishing_atom_ids
        if allowed is not None:
            atoms = atoms & allowed
        if not atoms:
            continue  # not expressible in the restricted template
        if contract.atom_ids.isdisjoint(atoms):
            return False
    return True
