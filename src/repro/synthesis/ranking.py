"""Atom false-positive ranking for template refinement (§III-E).

Beyond the synthesized contract, the toolchain reports how many false
positives each selected atom is responsible for, together with example
test cases.  A human expert inspects the worst offenders to split or
refine atoms — this is how the paper discovered the AL/BL/DL families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.contracts.template import Contract, ContractTemplate
from repro.evaluation.results import EvaluationDataset


@dataclass(frozen=True)
class AtomRanking:
    """False-positive attribution for one selected atom."""

    atom_id: int
    atom_name: str
    #: Indistinguishable test cases this atom distinguishes.
    false_positive_count: int
    #: ... of which no *other* selected atom distinguishes (removing or
    #: refining this atom alone would recover exactly these).
    sole_false_positive_count: int
    #: Example test ids for manual inspection.
    example_test_ids: Tuple[int, ...]


def rank_atoms_by_false_positives(
    contract: Contract,
    dataset: EvaluationDataset,
    max_examples: int = 5,
) -> List[AtomRanking]:
    """Rank the contract's atoms by the false positives they cause."""
    template: ContractTemplate = contract.template
    counts: Dict[int, int] = {atom_id: 0 for atom_id in contract.atom_ids}
    sole_counts: Dict[int, int] = {atom_id: 0 for atom_id in contract.atom_ids}
    examples: Dict[int, List[int]] = {atom_id: [] for atom_id in contract.atom_ids}

    for result in dataset.indistinguishable:
        selected_here = result.distinguishing_atom_ids & contract.atom_ids
        if not selected_here:
            continue
        for atom_id in selected_here:
            counts[atom_id] += 1
            if len(examples[atom_id]) < max_examples:
                examples[atom_id].append(result.test_id)
        if len(selected_here) == 1:
            (atom_id,) = selected_here
            sole_counts[atom_id] += 1

    rankings = [
        AtomRanking(
            atom_id=atom_id,
            atom_name=template.atom(atom_id).name,
            false_positive_count=counts[atom_id],
            sole_false_positive_count=sole_counts[atom_id],
            example_test_ids=tuple(examples[atom_id]),
        )
        for atom_id in contract.atom_ids
    ]
    rankings.sort(key=lambda r: (-r.false_positive_count, r.atom_id))
    return rankings


def format_ranking(rankings: List[AtomRanking], top: int = 20) -> str:
    """Human-readable refinement report."""
    lines = ["%-28s %10s %10s  examples" % ("atom", "FPs", "sole FPs")]
    for ranking in rankings[:top]:
        lines.append(
            "%-28s %10d %10d  %s"
            % (
                ranking.atom_name,
                ranking.false_positive_count,
                ranking.sole_false_positive_count,
                list(ranking.example_test_ids),
            )
        )
    return "\n".join(lines)
