"""Construction of the synthesis ILP (§III-D).

Variables
    ``s_A`` for every candidate atom (selected or not), ``c_t`` for
    every attacker-indistinguishable test case (forced to 1 when some
    selected atom distinguishes ``t`` — a false positive).

Objective
    ``min Σ_t c_t``.

Constraints
    ``Σ_{A ∈ distinguishing(t)} s_A ≥ 1`` per attacker-distinguishable
    test case ``t``; ``s_A ≤ c_t`` per indistinguishable ``t`` and
    ``A ∈ distinguishing(t)``.

Before solving we apply three loss-free reductions:

1. Atoms that distinguish no attacker-distinguishable test case are
   never selected by an optimal solution (they cover nothing and can
   only add false positives), so only atoms occurring in some coverage
   constraint become ILP variables.
2. Attacker-distinguishable test cases with identical (restricted)
   distinguishing sets yield identical constraints and are deduplicated.
3. Indistinguishable test cases with identical candidate intersections
   are merged into one ``c_t`` with an integer weight.

Test cases whose restricted distinguishing set is *empty* cannot be
covered by any contract from the (restricted) template; they are
excluded from the constraints and reported as ``uncoverable`` (they
count as false negatives in the sensitivity metrics, which is how the
restricted templates of Fig. 2/3 lose sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.evaluation.results import EvaluationDataset


@dataclass
class IlpInstance:
    """A reduced synthesis problem ready for a solver backend."""

    #: Sorted candidate atom ids (the ``s_A`` variables).
    candidate_atom_ids: Tuple[int, ...]
    #: Deduplicated coverage constraints over candidate atoms.
    cover_sets: Tuple[FrozenSet[int], ...]
    #: Deduplicated false-positive sets with multiplicities: selecting
    #: any atom of ``fp_sets[i][0]`` costs ``fp_sets[i][1]``.
    fp_sets: Tuple[Tuple[FrozenSet[int], int], ...]
    #: Attacker-distinguishable cases with no candidate atom at all.
    uncoverable_test_ids: Tuple[int, ...]
    #: Test ids behind each cover set (diagnostics).
    cover_test_ids: Tuple[Tuple[int, ...], ...] = field(default=())
    #: Test ids behind each fp set (diagnostics / FP reporting).
    fp_test_ids: Tuple[Tuple[int, ...], ...] = field(default=())

    @property
    def atom_count(self) -> int:
        return len(self.candidate_atom_ids)

    @property
    def total_fp_weight(self) -> int:
        return sum(weight for _atoms, weight in self.fp_sets)

    def false_positive_weight(self, selection: Iterable[int]) -> int:
        """Objective value of ``selection``: the number of
        indistinguishable test cases it distinguishes."""
        selected = frozenset(selection)
        return sum(
            weight
            for atoms, weight in self.fp_sets
            if not atoms.isdisjoint(selected)
        )

    def covers_all(self, selection: Iterable[int]) -> bool:
        selected = frozenset(selection)
        return all(not atoms.isdisjoint(selected) for atoms in self.cover_sets)

    def false_positive_test_ids(self, selection: Iterable[int]) -> List[int]:
        selected = frozenset(selection)
        ids: List[int] = []
        for (atoms, _weight), test_ids in zip(self.fp_sets, self.fp_test_ids):
            if not atoms.isdisjoint(selected):
                ids.extend(test_ids)
        return sorted(ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IlpInstance(%d atoms, %d cover sets, %d fp sets)" % (
            self.atom_count,
            len(self.cover_sets),
            len(self.fp_sets),
        )


def build_ilp_instance(
    dataset: EvaluationDataset,
    allowed_atom_ids: Optional[Iterable[int]] = None,
    reduce_dominated: bool = True,
) -> IlpInstance:
    """Reduce ``dataset`` to an :class:`IlpInstance`.

    ``allowed_atom_ids`` restricts the template (e.g. to the IL+RL+ML
    base families for the Fig. 2 comparison); ``None`` allows every
    atom mentioned by the dataset.  ``reduce_dominated`` additionally
    removes atoms that are dominated by another candidate (see
    :func:`eliminate_dominated_atoms`) — loss-free for the objective.
    """
    allowed = None if allowed_atom_ids is None else frozenset(allowed_atom_ids)

    cover_groups: Dict[FrozenSet[int], List[int]] = {}
    uncoverable: List[int] = []
    for result in dataset.distinguishable:
        atoms = result.distinguishing_atom_ids
        if allowed is not None:
            atoms = atoms & allowed
        if not atoms:
            uncoverable.append(result.test_id)
            continue
        cover_groups.setdefault(atoms, []).append(result.test_id)

    candidates = frozenset().union(*cover_groups) if cover_groups else frozenset()

    fp_groups: Dict[FrozenSet[int], List[int]] = {}
    for result in dataset.indistinguishable:
        atoms = result.distinguishing_atom_ids & candidates
        if atoms:
            fp_groups.setdefault(atoms, []).append(result.test_id)

    cover_items = sorted(cover_groups.items(), key=lambda item: sorted(item[0]))
    fp_items = sorted(fp_groups.items(), key=lambda item: sorted(item[0]))
    instance = IlpInstance(
        candidate_atom_ids=tuple(sorted(candidates)),
        cover_sets=tuple(atoms for atoms, _ids in cover_items),
        fp_sets=tuple((atoms, len(ids)) for atoms, ids in fp_items),
        uncoverable_test_ids=tuple(sorted(uncoverable)),
        cover_test_ids=tuple(tuple(ids) for _atoms, ids in cover_items),
        fp_test_ids=tuple(tuple(ids) for _atoms, ids in fp_items),
    )
    if reduce_dominated:
        instance = eliminate_dominated_atoms(instance)
    return instance


def eliminate_dominated_atoms(instance: IlpInstance) -> IlpInstance:
    """Remove candidate atoms dominated by another candidate.

    Atom ``a`` dominates ``b`` when ``a`` covers every coverage
    constraint ``b`` covers while triggering a subset of ``b``'s
    false-positive sets.  Any optimal selection containing ``b`` stays
    optimal after substituting ``a``, so dropping ``b`` preserves the
    optimum (ties are broken toward the smaller atom id, keeping the
    reduction deterministic and irreflexive).  This typically shrinks
    the candidate set by an order of magnitude because sibling atoms
    (e.g. ``RAW_RS1_1`` .. ``RAW_RS1_4``) often have identical
    signatures on a finite test set.
    """
    atom_ids = instance.candidate_atom_ids
    cover_mask: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
    for position, atoms in enumerate(instance.cover_sets):
        bit = 1 << position
        for atom_id in atoms:
            cover_mask[atom_id] |= bit
    fp_mask: Dict[int, int] = {atom_id: 0 for atom_id in atom_ids}
    for position, (atoms, _weight) in enumerate(instance.fp_sets):
        bit = 1 << position
        for atom_id in atoms:
            fp_mask[atom_id] |= bit

    # Deduplicate identical signatures first (keep the smallest id).
    by_signature: Dict[Tuple[int, int], int] = {}
    for atom_id in atom_ids:
        signature = (cover_mask[atom_id], fp_mask[atom_id])
        if signature not in by_signature or atom_id < by_signature[signature]:
            by_signature[signature] = atom_id
    survivors = sorted(by_signature.values())

    # Pairwise strict dominance among the distinct signatures.
    dominated = set()
    for b in survivors:
        cover_b, fp_b = cover_mask[b], fp_mask[b]
        for a in survivors:
            if a == b or a in dominated:
                continue
            if cover_b & ~cover_mask[a] == 0 and fp_mask[a] & ~fp_b == 0:
                dominated.add(b)
                break
    kept = frozenset(atom_id for atom_id in survivors if atom_id not in dominated)

    new_cover = tuple(atoms & kept for atoms in instance.cover_sets)
    if any(not atoms for atoms in new_cover):  # pragma: no cover - invariant
        raise AssertionError("dominance reduction emptied a coverage constraint")
    fp_pairs = [
        (atoms & kept, weight, test_ids)
        for (atoms, weight), test_ids in zip(instance.fp_sets, instance.fp_test_ids)
    ]
    fp_pairs = [(atoms, weight, ids) for atoms, weight, ids in fp_pairs if atoms]
    return IlpInstance(
        candidate_atom_ids=tuple(sorted(kept)),
        cover_sets=new_cover,
        fp_sets=tuple((atoms, weight) for atoms, weight, _ids in fp_pairs),
        uncoverable_test_ids=instance.uncoverable_test_ids,
        cover_test_ids=instance.cover_test_ids,
        fp_test_ids=tuple(ids for _atoms, _weight, ids in fp_pairs),
    )
