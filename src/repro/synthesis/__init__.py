"""Contract synthesis via 0-1 integer linear programming (§III-D).

Given an evaluation dataset, synthesis selects the subset of template
atoms that (a) distinguishes every attacker-distinguishable test case
whose leak the template can express at all, and (b) minimizes the
number of attacker-indistinguishable test cases that become contract
distinguishable (false positives) — i.e. the most precise correct
contract.
"""

from repro.synthesis.ilp import IlpInstance, build_ilp_instance
from repro.synthesis.solvers import (
    BranchAndBoundSolver,
    GreedySolver,
    IlpSolver,
    ScipyMilpSolver,
    SolverResult,
)
from repro.synthesis.synthesizer import ContractSynthesizer, SynthesisResult, synthesize
from repro.synthesis.metrics import (
    ClassificationCounts,
    evaluate_contract,
    verify_contract_correctness,
)
from repro.synthesis.ranking import AtomRanking, rank_atoms_by_false_positives

__all__ = [
    "AtomRanking",
    "BranchAndBoundSolver",
    "ClassificationCounts",
    "ContractSynthesizer",
    "GreedySolver",
    "IlpInstance",
    "IlpSolver",
    "ScipyMilpSolver",
    "SolverResult",
    "SynthesisResult",
    "build_ilp_instance",
    "evaluate_contract",
    "rank_atoms_by_false_positives",
    "synthesize",
    "verify_contract_correctness",
]
