"""Contract synthesis via 0-1 integer linear programming (§III-D).

Given an evaluation dataset, synthesis selects the subset of template
atoms that (a) distinguishes every attacker-distinguishable test case
whose leak the template can express at all, and (b) minimizes the
number of attacker-indistinguishable test cases that become contract
distinguishable (false positives) — i.e. the most precise correct
contract.

Solver backends are published through :data:`SOLVER_REGISTRY` — the
single source of truth for name-to-solver construction used by the
pipeline API and the CLI.  Names match each class's ``name`` attribute.
"""

from repro.registry import Registry
from repro.synthesis.ilp import IlpInstance, build_ilp_instance
from repro.synthesis.solvers import (
    BranchAndBoundSolver,
    GreedySolver,
    IlpSolver,
    ScipyMilpSolver,
    SolverResult,
)

#: All registered ILP solver backends, keyed by ``IlpSolver.name``.
SOLVER_REGISTRY = Registry("solver", "ILP solver backends")
SOLVER_REGISTRY.register(
    ScipyMilpSolver.name,
    ScipyMilpSolver,
    description="exact 0-1 ILP via scipy.optimize.milp / HiGHS (default)",
)
SOLVER_REGISTRY.register(
    BranchAndBoundSolver.name,
    BranchAndBoundSolver,
    description="exact pure-Python branch and bound (no SciPy needed)",
)
SOLVER_REGISTRY.register(
    GreedySolver.name,
    GreedySolver,
    description="weighted set-cover heuristic (ablation baseline)",
)
from repro.synthesis.synthesizer import ContractSynthesizer, SynthesisResult, synthesize
from repro.synthesis.metrics import (
    ClassificationCounts,
    evaluate_contract,
    verify_contract_correctness,
)
from repro.synthesis.ranking import AtomRanking, rank_atoms_by_false_positives

__all__ = [
    "SOLVER_REGISTRY",
    "AtomRanking",
    "BranchAndBoundSolver",
    "ClassificationCounts",
    "ContractSynthesizer",
    "GreedySolver",
    "IlpInstance",
    "IlpSolver",
    "ScipyMilpSolver",
    "SolverResult",
    "SynthesisResult",
    "build_ilp_instance",
    "evaluate_contract",
    "rank_atoms_by_false_positives",
    "synthesize",
    "verify_contract_correctness",
]
