"""The synthesis pipeline: generate → evaluate → synthesize → verify.

:class:`SynthesisPipeline` is the single public entry point to the
toolchain.  Every axis is configured by registry name (or by passing an
instance directly), and :meth:`SynthesisPipeline.run` returns a
:class:`PipelineResult` bundling the evaluated dataset, the synthesis
result, the verification report, and per-phase wall-clock timings.

The pipeline also owns dataset caching: evaluated corpora are keyed by
core, template, attacker, seed, budget, and extraction engine, so two
pipelines that would produce different datasets can never collide on a
cache file.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.adaptive.loop import AdaptiveLoop, AdaptiveResult, derive_round_plan
from repro.adaptive.stopping import StoppingRule
from repro.attacker import ATTACKER_REGISTRY
from repro.attacker.base import Attacker
from repro.contracts.atoms import LeakageFamily
from repro.contracts.riscv_template import (
    RESTRICTION_REGISTRY,
    TEMPLATE_REGISTRY,
    restriction_label,
)
from repro.contracts.template import Contract, ContractTemplate, template_digest
from repro.evaluation.backends import EvaluationExecutor, ShardProgress
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.fastpath import FastpathMode, normalize_fastpath
from repro.evaluation.parallel import evaluate_parallel
from repro.evaluation.results import EvaluationDataset
from repro.resilience.quarantine import FailureRecord
from repro.resilience.retry import RetryPolicy
from repro.synthesis import SOLVER_REGISTRY
from repro.metrics.registry import Metrics, current_metrics, install_metrics
from repro.trace.tracer import Tracer, install_tracer
from repro.synthesis.solvers import IlpSolver
from repro.synthesis.synthesizer import ContractSynthesizer, SynthesisResult
from repro.testgen.strategies import GENERATOR_REGISTRY, GenerationStrategy
from repro.uarch import CORE_REGISTRY
from repro.uarch.core import Core
from repro.verification.checker import (
    SatisfactionReport,
    check_contract_satisfaction,
    check_dataset_satisfaction,
)

#: Configuration values may be registry names or ready-made instances.
CoreLike = Union[str, Core]
AttackerLike = Union[str, Attacker]
SolverLike = Union[str, IlpSolver]
TemplateLike = Union[str, ContractTemplate]
RestrictionLike = Union[str, Iterable[LeakageFamily]]
ExecutorLike = Union[str, EvaluationExecutor]
GeneratorLike = Union[str, GenerationStrategy]
ShardCallback = Callable[[ShardProgress], None]


@dataclass
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (Table III's columns).

    Since the observability layer landed, a run's timings are a
    *projection of its trace span stream* (:meth:`from_spans`): the
    pipeline emits ``phase`` spans and the phase timers fall out of
    them, so CLI tables, trace files, and bench accounting can never
    disagree.  The field names and semantics predate the trace layer
    and are kept byte-compatible.
    """

    #: Core/template/generator/evaluator construction (the paper's
    #: "testbench compilation" phase).
    setup_seconds: float = 0.0
    #: The whole generate+evaluate phase (zero on a cache hit).
    evaluation_seconds: float = 0.0
    #: Simulation and atom-extraction shares of the evaluation phase,
    #: from the evaluator's accumulators.
    simulation_seconds: float = 0.0
    extraction_seconds: float = 0.0
    synthesis_seconds: float = 0.0
    verification_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Whether the dataset came from the cache (timers then exclude
    #: simulation/extraction).
    cache_hit: bool = False
    #: Executor backend that ran the evaluation phase (``None`` for the
    #: in-process evaluator), with its per-shard accounting: how many
    #: shards the plan had and how many were resumed from a checkpoint
    #: manifest instead of re-evaluated.
    executor_name: Optional[str] = None
    shards_total: int = 0
    shards_resumed: int = 0
    #: Shards that exhausted their retries and were quarantined (the
    #: dataset is missing their rows).
    shards_quarantined: int = 0
    #: Backend the executor fallback chain downgraded to (``None``
    #: when the configured backend survived the whole run).
    executor_downgraded: Optional[str] = None

    @classmethod
    def from_spans(cls, records: Iterable[dict]) -> "PhaseTimings":
        """Project phase timings out of a trace span stream.

        Consumes completed span records (the ones carrying
        ``seconds``): the ``pipeline`` span supplies the total, and
        each ``phase`` span supplies its phase timer — the ``evaluate``
        span additionally carries the cache/executor/sim-extract detail
        fields.  Begin records and event records pass through
        untouched, so the whole of a run's trace stream (or its
        in-memory collector) can be fed directly.
        """
        timings = cls()
        for record in records:
            if "seconds" not in record:
                continue
            kind = record.get("kind")
            if kind == "pipeline":
                timings.total_seconds = record["seconds"]
            elif kind == "phase":
                phase = record.get("phase")
                if phase == "setup":
                    timings.setup_seconds = record["seconds"]
                elif phase == "evaluate":
                    timings.evaluation_seconds = record["seconds"]
                    timings.cache_hit = bool(record.get("cache_hit", False))
                    timings.simulation_seconds = record.get(
                        "simulation_seconds", 0.0
                    )
                    timings.extraction_seconds = record.get(
                        "extraction_seconds", 0.0
                    )
                    timings.executor_name = record.get("executor")
                    timings.shards_total = record.get("shards_total", 0)
                    timings.shards_resumed = record.get("shards_resumed", 0)
                    timings.shards_quarantined = record.get(
                        "shards_quarantined", 0
                    )
                    timings.executor_downgraded = record.get(
                        "executor_downgraded"
                    )
                elif phase == "synthesize":
                    timings.synthesis_seconds = record["seconds"]
                elif phase == "verify":
                    timings.verification_seconds = record["seconds"]
        return timings

    def render(self) -> str:
        if self.cache_hit:
            evaluate_detail = " (cached)"
        elif self.executor_name is not None:
            evaluate_detail = " (executor %s, %d shards, %d resumed%s%s)" % (
                self.executor_name,
                self.shards_total,
                self.shards_resumed,
                ", %d quarantined" % self.shards_quarantined
                if self.shards_quarantined
                else "",
                ", downgraded to %s" % self.executor_downgraded
                if self.executor_downgraded
                else "",
            )
        else:
            evaluate_detail = " (sim %.3fs, extract %.3fs)" % (
                self.simulation_seconds,
                self.extraction_seconds,
            )
        parts = [
            "setup %.3fs" % self.setup_seconds,
            "evaluate %.3fs%s" % (self.evaluation_seconds, evaluate_detail),
            "synthesize %.3fs" % self.synthesis_seconds,
            "verify %.3fs" % self.verification_seconds,
            "total %.3fs" % self.total_seconds,
        ]
        return ", ".join(parts)


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    core_name: str
    attacker_name: str
    solver_name: str
    template_name: str
    restriction: Optional[str]
    dataset: EvaluationDataset
    synthesis: SynthesisResult
    verification: Optional[SatisfactionReport]
    timings: PhaseTimings
    #: Generation strategy that produced the dataset.
    generator_name: str = "random"
    #: Per-round diagnostics when the run was adaptive
    #: (:meth:`SynthesisPipeline.adaptive`); ``None`` for one-shot runs.
    adaptive: Optional[AdaptiveResult] = None
    #: Structured failure records from the fault-tolerant execution
    #: layer (retries, quarantined shards, executor downgrades); empty
    #: for clean runs and runs without retry/timeout configured.
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def quarantined_shards(self) -> List[FailureRecord]:
        """The shards that exhausted retries and were quarantined."""
        return [record for record in self.failures if record.kind == "shard"]

    @property
    def contract(self) -> Contract:
        return self.synthesis.contract

    @property
    def atom_count(self) -> int:
        return self.synthesis.atom_count

    @property
    def false_positives(self) -> int:
        return self.synthesis.false_positives

    @property
    def satisfied(self) -> Optional[bool]:
        return self.verification.satisfied if self.verification else None

    def render(self) -> str:
        lines = [
            "pipeline: core=%s attacker=%s solver=%s template=%s%s%s"
            % (
                self.core_name,
                self.attacker_name,
                self.solver_name,
                self.template_name,
                " restriction=%s" % self.restriction if self.restriction else "",
                " generator=%s" % self.generator_name
                if self.generator_name != "random"
                else "",
            ),
            "dataset: %d test cases, %d attacker distinguishable"
            % (len(self.dataset), len(self.dataset.distinguishable)),
            "contract: %d atoms, %d false positives (%s%s)"
            % (
                self.atom_count,
                self.false_positives,
                self.synthesis.solver_result.solver_name,
                ", optimal" if self.synthesis.solver_result.optimal else "",
            ),
        ]
        if self.verification is not None:
            lines.append(
                "verification: %s (%d/%d distinguishable cases covered)"
                % (
                    "SATISFIED" if self.verification.satisfied else "VIOLATED",
                    self.verification.covered,
                    self.verification.attacker_distinguishable,
                )
            )
        if self.adaptive is not None:
            lines.append(self.adaptive.render())
        quarantined = self.quarantined_shards
        if quarantined:
            lines.append(
                "quarantined: %d shard(s) dropped after exhausting retries (%s)"
                % (
                    len(quarantined),
                    ", ".join(
                        "start_id=%s" % record.unit.get("start_id")
                        for record in quarantined
                    ),
                )
            )
        lines.append("timings: %s" % self.timings.render())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PipelineResult(core=%s, %d cases, %d atoms)" % (
            self.core_name,
            len(self.dataset),
            self.atom_count,
        )


class SynthesisPipeline:
    """Builder-style front end over the whole toolchain.

    Every setter returns ``self`` so configurations read as one chain::

        result = (
            SynthesisPipeline()
            .core("ibex")
            .attacker("retirement-timing")
            .template("riscv-rv32im")
            .budget(2000, seed=1)
            .solver("scipy-milp")
            .run()
        )

    Defaults reproduce the paper's setup: the Ibex-like core, the
    retirement-timing attacker, the RV32IM template, the exact
    scipy-milp backend, and the compiled extraction fast path.
    """

    def __init__(self):
        self._core: CoreLike = "ibex"
        self._attacker: AttackerLike = "retirement-timing"
        self._solver: SolverLike = "scipy-milp"
        self._template: TemplateLike = "riscv-rv32im"
        self._restriction: Optional[RestrictionLike] = None
        self._generator: GeneratorLike = "random"
        #: ``None`` → the classic one-shot run; a dict → adaptive mode
        #: (``rounds``, ``batch``, ``stop``), executed by
        #: :class:`~repro.adaptive.AdaptiveLoop`.
        self._adaptive: Optional[dict] = None
        self._count: int = 1000
        self._seed: int = 0
        self._use_fastpath: FastpathMode = True
        self._cache_dir: Optional[str] = None
        self._progress_every: Optional[int] = None
        #: ``None`` → evaluate in-process; a registry name or executor
        #: instance → fan evaluation out in shards through the backend.
        self._executor: Optional[ExecutorLike] = None
        self._processes: Optional[int] = None
        self._shard_size: int = 250
        #: ``None`` → no checkpointing; ``True`` → manifest derived
        #: from the dataset cache key; a string → explicit path.
        self._resume: Union[None, bool, str] = None
        self._shard_callback: Optional[ShardCallback] = None
        #: ``None`` → fail fast (the historical behavior); a
        #: :class:`RetryPolicy` → retry failing shards (and adaptive
        #: rounds), quarantining shards that exhaust their attempts.
        self._retry: Optional[RetryPolicy] = None
        #: Per-shard soft deadline in seconds for pool executors.
        self._shard_timeout: Optional[float] = None
        #: ``None`` → verify against the evaluated dataset (free);
        #: ``n > 0`` → directed satisfaction testing with fresh cases;
        #: ``0`` → skip verification.
        self._verify_budget: Optional[int] = None
        self._verify_seed: Optional[int] = None
        #: Memoized name-resolved template, so cache keys, run(), and
        #: synthesizer() all see the same instance.
        self._resolved_template: Optional[ContractTemplate] = None
        #: A contract store (duck-typed: ``datasets_dir`` +
        #: ``put_result``) that run() persists the outcome into.
        self._store = None
        #: Trace file the run's spans append to (``None`` → no file;
        #: timings still project from the in-memory span collector).
        self._trace_path: Optional[str] = None
        #: Results root the run-history record is appended under.
        self._run_history_dir: Optional[str] = None

    # -- builder surface ----------------------------------------------

    def core(self, core: CoreLike) -> "SynthesisPipeline":
        """Target core: a registry name or a :class:`Core` instance."""
        self._core = core
        return self

    def attacker(self, attacker: AttackerLike) -> "SynthesisPipeline":
        """Attacker model: a registry name or an :class:`Attacker`."""
        self._attacker = attacker
        return self

    def solver(self, solver: SolverLike) -> "SynthesisPipeline":
        """ILP backend: a registry name or an :class:`IlpSolver`."""
        self._solver = solver
        return self

    def template(self, template: TemplateLike) -> "SynthesisPipeline":
        """Contract template: a registry name or a built template."""
        self._template = template
        self._resolved_template = None
        return self

    def restrict(self, restriction: Optional[RestrictionLike]) -> "SynthesisPipeline":
        """Template restriction: a registry name (``"base"``,
        ``"IL+RL+ML+AL"``, ...) or an iterable of
        :class:`LeakageFamily`; ``None`` clears it."""
        self._restriction = restriction
        return self

    def budget(self, count: int, seed: int = 0) -> "SynthesisPipeline":
        """Test-case budget and generator seed."""
        if count < 0:
            raise ValueError("budget count must be non-negative")
        self._count = count
        self._seed = seed
        return self

    def generator(self, generator: GeneratorLike) -> "SynthesisPipeline":
        """Test-case generation strategy: a ``GENERATOR_REGISTRY`` name
        (``"random"``, ``"mutate"``, ``"coverage"``) or a
        :class:`~repro.testgen.strategies.GenerationStrategy` instance.
        Feedback-driven strategies only receive feedback in adaptive
        mode (:meth:`adaptive`); in a one-shot run they generate their
        fresh-state stream."""
        self._generator = generator
        return self

    def adaptive(
        self,
        generator: Optional[GeneratorLike] = None,
        rounds: int = 8,
        batch: Optional[int] = None,
        stop: Union[None, str, StoppingRule, tuple, list] = "contract-stable",
    ) -> "SynthesisPipeline":
        """Run the evaluation phase as an adaptive generate → evaluate
        → steer loop instead of one fixed-budget shot.

        ``rounds`` bounds the loop; ``batch`` sizes each round, and
        defaults to the :meth:`budget` count split evenly across the
        rounds — so the configured budget stays the total case ceiling
        on both the classic and the adaptive path (with an *explicit*
        batch the ceiling is ``rounds * batch`` instead).  ``stop`` is
        a ``STOPPING_REGISTRY`` name, a
        :class:`~repro.adaptive.StoppingRule`, or a sequence of either
        — the loop also always stops when the round budget is
        exhausted.  ``generator`` defaults to the strategy configured
        via :meth:`generator` (i.e. ``"random"`` unless changed).
        The dataset cache is bypassed (a steered corpus is shaped by
        feedback, not reusable by key); use :meth:`resume` for
        round-granularity checkpointing instead."""
        if generator is not None:
            self._generator = generator
        self._adaptive = {"rounds": rounds, "batch": batch, "stop": stop}
        return self

    def _adaptive_plan(self) -> Tuple[int, int]:
        """The adaptive ``(rounds, batch)`` actually run — see
        :func:`repro.adaptive.loop.derive_round_plan`."""
        return derive_round_plan(
            self._adaptive["rounds"], self._adaptive["batch"], self._count
        )

    def fastpath(self, mode) -> "SynthesisPipeline":
        """Select the evaluation fast-path mode.

        ``"reference"``/``False`` runs the scalar oracle paths,
        ``"compiled"``/``True`` (default) the columnar extraction
        engine, and ``"batch"`` the batched columnar simulation engine
        (:mod:`repro.batchsim`).  All three produce byte-identical
        datasets; see :mod:`repro.evaluation.fastpath`.
        """
        self._use_fastpath = normalize_fastpath(mode)
        return self

    def cache_dir(self, directory: Optional[str]) -> "SynthesisPipeline":
        """Cache evaluated datasets under ``directory`` (``None`` off)."""
        self._cache_dir = directory
        return self

    def progress(self, every: Optional[int]) -> "SynthesisPipeline":
        """Print evaluation progress every ``every`` test cases."""
        self._progress_every = every
        return self

    def executor(
        self,
        executor: Optional[ExecutorLike],
        processes: Optional[int] = None,
        shard_size: Optional[int] = None,
    ) -> "SynthesisPipeline":
        """Run the evaluation phase through a sharded executor backend.

        ``executor`` is an ``EXECUTOR_REGISTRY`` name (``"serial"``,
        ``"multiprocess"``, ``"futures"``, ``"threaded"``) or an
        :class:`EvaluationExecutor` instance; ``None`` restores the
        in-process evaluator.  ``processes`` sizes the worker pool and
        ``shard_size`` the per-shard test-case count (default 250).
        """
        self._executor = executor
        if processes is not None:
            self._processes = processes
        if shard_size is not None:
            self._shard_size = shard_size
        return self

    def resume(self, manifest: Union[bool, str] = True) -> "SynthesisPipeline":
        """Checkpoint completed evaluation shards and resume from them.

        ``True`` derives the manifest path from the dataset cache key
        (requires :meth:`cache_dir`); a string names the JSONL manifest
        file explicitly; ``False`` disables checkpointing.  Only the
        executor path shards its work, so ``resume`` implies
        :meth:`executor` (defaulting to ``"multiprocess"`` if none was
        chosen).
        """
        self._resume = manifest if manifest is not False else None
        return self

    def retry(
        self,
        policy: Union[None, int, RetryPolicy] = 3,
        backoff: float = 0.0,
    ) -> "SynthesisPipeline":
        """Retry failing evaluation units instead of failing the run.

        ``policy`` is a :class:`~repro.resilience.RetryPolicy`, or an
        integer *total* attempt count (``backoff`` then seeds the
        deterministic exponential delay schedule); ``None`` restores
        fail-fast.  With a policy set, a shard (or adaptive round)
        that fails with a retryable error is re-run per the schedule;
        a shard that exhausts its attempts is quarantined — recorded
        to the :meth:`quarantine_path` failure log and reported in
        ``PipelineResult.failures`` — and the run continues without
        its rows.  Retry settings never enter cache or manifest keys:
        a run that survives faults is byte-identical to a clean one.
        Shard-granularity retry runs through the executor path, so
        ``retry`` implies :meth:`executor` like :meth:`resume` does.
        """
        if policy is None or isinstance(policy, RetryPolicy):
            self._retry = policy
        else:
            self._retry = RetryPolicy(max_attempts=policy, backoff_base=backoff)
        return self

    def timeout(self, shard_seconds: Optional[float]) -> "SynthesisPipeline":
        """Per-shard soft deadline for pool executors (seconds).

        A shard observed running past the deadline is abandoned with
        its pool and rescheduled in a fresh one, consuming one retry
        attempt (see :meth:`retry`; the default policy applies when
        only a timeout is configured).  ``None`` disables; the serial
        backend ignores deadlines (there is no pool to abandon).
        """
        if shard_seconds is not None and shard_seconds <= 0:
            raise ValueError("shard timeout must be positive")
        self._shard_timeout = shard_seconds
        return self

    def on_shard(self, callback: Optional[ShardCallback]) -> "SynthesisPipeline":
        """Receive a :class:`ShardProgress` event per completed shard
        (resumed shards first, then evaluated shards as they finish)."""
        self._shard_callback = callback
        return self

    def store(self, contract_store) -> "SynthesisPipeline":
        """Persist the finished contract into a
        :class:`~repro.service.ContractStore` (or anything exposing
        ``datasets_dir`` and ``put_result(cell, result)``).

        The store's dataset directory becomes the pipeline cache dir
        unless one was configured explicitly, so datasets and contract
        land side by side — and a later identical (or smaller-budget)
        run through the contract service is a pure lookup.  Requires
        name-addressed plugins (the store keys by registry names);
        ``None`` detaches.
        """
        self._store = contract_store
        if contract_store is not None and self._cache_dir is None:
            self.cache_dir(contract_store.datasets_dir)
        return self

    def trace(self, path: Optional[str]) -> "SynthesisPipeline":
        """Append structured trace spans to the JSONL file at ``path``.

        The run emits ``pipeline`` and per-phase spans (plus shard
        spans from executor workers and round spans from adaptive
        loops) through :class:`repro.trace.Tracer`; campaigns and the
        service share the same schema, so one file interleaves every
        layer and ``repro-synthesize watch`` can tail it live.
        ``None`` (the default) disables the file; phase timings are
        projected from an in-memory span collector either way, at zero
        file-I/O cost.
        """
        self._trace_path = path
        return self

    def run_history(self, directory: Optional[str]) -> "SynthesisPipeline":
        """Append one summary record per completed run to the
        ``runs.jsonl`` index under ``directory`` (the results root),
        feeding ``repro runs list`` / ``repro runs diff``.  ``None``
        (the default) records nothing — campaign cells leave this off
        so a campaign indexes as one run, not one per cell.
        """
        self._run_history_dir = directory
        return self

    def verify(
        self, test_cases: Optional[int] = None, seed: Optional[int] = None
    ) -> "SynthesisPipeline":
        """Verification budget: ``None`` checks the synthesized contract
        against the evaluated dataset; a positive count runs directed
        satisfaction testing on fresh test cases; ``0`` skips.

        ``seed`` defaults to the generator seed plus one, so directed
        verification never silently replays the synthesis test cases.
        """
        self._verify_budget = test_cases
        self._verify_seed = seed
        return self

    # -- resolution ----------------------------------------------------

    def core_name(self) -> str:
        return self._core if isinstance(self._core, str) else self._core.name

    def attacker_name(self) -> str:
        return (
            self._attacker if isinstance(self._attacker, str) else self._attacker.name
        )

    def solver_name(self) -> str:
        return self._solver if isinstance(self._solver, str) else self._solver.name

    def template_name(self) -> str:
        return (
            self._template if isinstance(self._template, str) else self._template.name
        )

    def generator_name(self) -> str:
        return (
            self._generator
            if isinstance(self._generator, str)
            else self._generator.name
        )

    def resolve_core(self) -> Core:
        if isinstance(self._core, str):
            return CORE_REGISTRY.create(self._core)
        return self._core

    def resolve_attacker(self) -> Attacker:
        if isinstance(self._attacker, str):
            return ATTACKER_REGISTRY.create(self._attacker)
        return self._attacker

    def resolve_solver(self) -> IlpSolver:
        if isinstance(self._solver, str):
            return SOLVER_REGISTRY.create(self._solver)
        return self._solver

    def resolve_template(self) -> ContractTemplate:
        if not isinstance(self._template, str):
            return self._template
        if self._resolved_template is None:
            self._resolved_template = TEMPLATE_REGISTRY.create(self._template)
        return self._resolved_template

    def resolve_generator(self, template: ContractTemplate) -> GenerationStrategy:
        if isinstance(self._generator, str):
            return GENERATOR_REGISTRY.create(
                self._generator, template, seed=self._seed
            )
        return self._generator

    def resolve_restriction(
        self, template: ContractTemplate
    ) -> Tuple[Optional[str], Optional[frozenset]]:
        """``(label, allowed_atom_ids)`` for the configured restriction."""
        if self._restriction is None:
            return None, None
        if isinstance(self._restriction, str):
            families = tuple(RESTRICTION_REGISTRY.create(self._restriction))
        else:
            families = tuple(self._restriction)
        return restriction_label(families), template.ids_by_family(families)

    def synthesizer(self) -> ContractSynthesizer:
        """A :class:`ContractSynthesizer` bound to the resolved template
        and solver (for drivers that sweep synthesis-set prefixes)."""
        return ContractSynthesizer(self.resolve_template(), self.resolve_solver())

    # -- dataset caching -----------------------------------------------

    def cache_path(self) -> Optional[str]:
        """The dataset cache file for this configuration, or ``None``.

        The key covers everything that changes the evaluated dataset:
        core, template, attacker, generator strategy, seed, budget, and
        (defensively) the extraction engine.  Historically the
        attacker was omitted, so switching attackers silently reused
        stale datasets; the generator entered with the strategy
        registry — two strategies produce different corpora from the
        same seed, so cached corpora must never be conflated.

        Caching requires the core, attacker, and generator to be
        configured *by registry name*: an instance (e.g.
        ``IbexCore(IbexConfig(dcache=True))``, or a strategy carrying
        feedback state) may carry configuration its ``name`` attribute
        does not express, so keying on it could serve a stale dataset.
        Templates may be instances — their key includes a digest of the
        atom list, which fully determines extraction.

        Adaptive runs bypass the dataset cache entirely (a steered
        corpus is shaped by round feedback, not addressable by a static
        key) and checkpoint rounds instead (:meth:`resume`).
        """
        if self._cache_dir is None or self._adaptive is not None:
            return None
        if not isinstance(self._core, str) or not isinstance(self._attacker, str):
            return None
        if not isinstance(self._generator, str):
            return None
        template = self.resolve_template()
        digest = template_digest(template)
        # The default strategy is keyed by absence, so caches written
        # before generators existed (all random) stay valid.
        generator = "" if self._generator == "random" else "-g%s" % self._generator
        return os.path.join(
            self._cache_dir,
            "%s-%s-%s-%s%s-seed%d-n%d%s.json"
            % (
                self._core,
                template.name,
                digest,
                self._attacker,
                generator,
                self._seed,
                self._count,
                "" if self._use_fastpath else "-ref",
            ),
        )

    def manifest_path(self) -> Optional[str]:
        """The shard-manifest (checkpoint) file for this configuration,
        or ``None`` when resumption is off.

        An explicit :meth:`resume` path wins; otherwise the path is the
        dataset cache file with a ``.shards.jsonl`` suffix, so manifest
        and cached dataset share one key."""
        if self._resume is None:
            return None
        if isinstance(self._resume, str):
            return self._resume
        cache_path = self.cache_path()
        if cache_path is None:
            raise ValueError(
                "resume(True) derives the manifest from the dataset cache "
                "key: configure cache_dir() and name-based plugins, or "
                "pass an explicit manifest path"
            )
        return os.path.splitext(cache_path)[0] + ".shards.jsonl"

    def quarantine_path(self) -> Optional[str]:
        """The quarantine :class:`~repro.resilience.FailureLog` file
        for this configuration, or ``None``.

        Derived from the dataset cache key with a ``.quarantine.jsonl``
        suffix, like :meth:`manifest_path` — so the quarantined-shard
        record sits next to the manifest it punched a hole in.  Without
        a cache key (no :meth:`cache_dir`, or instance-configured
        plugins) failures still travel on ``PipelineResult.failures``;
        only the durable log is skipped.
        """
        if self._retry is None and self._shard_timeout is None:
            return None
        cache_path = self.cache_path()
        if cache_path is None:
            return None
        return os.path.splitext(cache_path)[0] + ".quarantine.jsonl"

    def adaptive_manifest_path(self) -> Optional[str]:
        """The adaptive round-manifest file, or ``None`` when
        resumption is off.  An explicit :meth:`resume` path wins;
        otherwise the path is derived from the cache directory and the
        loop's identity axes (the ``AdaptiveManifest`` header key — not
        the file name — is what actually binds the checkpoint)."""
        if self._resume is None:
            return None
        if isinstance(self._resume, str):
            return self._resume
        if self._cache_dir is None or not (
            isinstance(self._core, str)
            and isinstance(self._attacker, str)
            and isinstance(self._generator, str)
        ):
            raise ValueError(
                "resume(True) derives the round manifest from the loop "
                "identity: configure cache_dir() and name-based plugins, "
                "or pass an explicit manifest path"
            )
        template = self.resolve_template()
        restriction_name, _allowed = self.resolve_restriction(template)
        # Every identity axis of the manifest key appears in the name:
        # two configurations with different keys must not collide on
        # one file (the header check would reject the second as a
        # different loop instead of checkpointing it separately).
        return os.path.join(
            self._cache_dir,
            "%s-%s-%s-%s-g%s-%s%s-seed%d-b%d%s.rounds.jsonl"
            % (
                self._core,
                template.name,
                template_digest(template),
                self._attacker,
                self._generator,
                self.solver_name(),
                "-r%s" % restriction_name if restriction_name else "",
                self._seed,
                self._adaptive_plan()[1] if self._adaptive else 0,
                "" if self._use_fastpath else "-ref",
            ),
        )

    # -- execution -----------------------------------------------------

    def _effective_executor(self) -> Optional[ExecutorLike]:
        """The executor to use, with ``resume`` (and shard-granularity
        ``retry``/``timeout``) implying one."""
        if self._executor is None and (
            self._resume is not None
            or self._retry is not None
            or self._shard_timeout is not None
        ):
            return "multiprocess"
        return self._executor

    def _evaluate_sharded(
        self,
        executor: ExecutorLike,
        stats: Optional[dict] = None,
        failures: Optional[List[FailureRecord]] = None,
        tracer: Optional[Tracer] = None,
    ) -> EvaluationDataset:
        """The executor-backed evaluation phase (shard fan-out,
        checkpointing, retry/quarantine, per-shard progress).

        ``stats``, when given, receives the executor accounting fields
        of the evaluate phase span (``executor``, ``shards_total``,
        ``shards_resumed``, ``shards_quarantined``,
        ``executor_downgraded``) — the span-era replacement for
        mutating :class:`PhaseTimings` directly.

        Owns the dataset cache write: a dataset missing quarantined
        shards must never be cached under the full-budget key, or the
        hole would silently persist across clean re-runs."""
        if not (
            isinstance(self._core, str)
            and isinstance(self._attacker, str)
            and isinstance(self._template, str)
            and isinstance(self._generator, str)
        ):
            raise ValueError(
                "executor backends rebuild plugins by registry name "
                "inside each worker: configure core, attacker, template, "
                "and generator by name when using .executor()/.resume()"
            )
        counters = {"total": 0, "resumed": 0}

        def on_shard(event: ShardProgress) -> None:
            counters["total"] = event.total_shards
            if event.resumed:
                counters["resumed"] += 1
            if self._progress_every:
                print(
                    "evaluated %d/%d test cases (shard %d/%d%s)"
                    % (
                        event.completed_cases,
                        event.total_cases,
                        event.completed_shards,
                        event.total_shards,
                        ", resumed" if event.resumed else "",
                    )
                )
            if self._shard_callback is not None:
                self._shard_callback(event)

        collected: List[FailureRecord] = []
        dataset = evaluate_parallel(
            self._core,
            self._count,
            seed=self._seed,
            processes=self._processes,
            shard_size=self._shard_size,
            use_fastpath=self._use_fastpath,
            template_name=self._template,
            attacker_name=self._attacker,
            executor=executor,
            manifest_path=self.manifest_path(),
            progress=on_shard,
            generator_name=self._generator,
            retry=self._retry,
            shard_timeout=self._shard_timeout,
            failure_log_path=self.quarantine_path(),
            on_failure=collected.append,
            tracer=tracer,
        )
        quarantined = sum(1 for record in collected if record.kind == "shard")
        if stats is not None:
            stats["executor"] = (
                executor if isinstance(executor, str) else executor.name
            )
            stats["shards_total"] = counters["total"]
            stats["shards_resumed"] = counters["resumed"]
            stats["shards_quarantined"] = quarantined
            stats["executor_downgraded"] = next(
                (
                    record.unit.get("to")
                    for record in collected
                    if record.kind == "downgrade"
                ),
                None,
            )
        if failures is not None:
            failures.extend(collected)
        cache_path = self.cache_path()
        if cache_path is not None and not quarantined:
            dataset.save(cache_path)
        return dataset

    def evaluate_with_stats(
        self,
        timings: Optional[PhaseTimings] = None,
    ) -> Tuple[EvaluationDataset, Optional[TestCaseEvaluator]]:
        """Generate and evaluate the configured corpus.

        Returns ``(dataset, evaluator)``; the evaluator carries the
        phase timers and is ``None`` when the dataset was loaded from
        the cache or evaluated through an executor backend (whose
        workers keep their own timers).
        """
        cache_path = self.cache_path()
        if cache_path is not None:
            hit = os.path.exists(cache_path)
            current_metrics().counter(
                "dataset.cache.hits" if hit else "dataset.cache.misses"
            ).inc()
            if hit:
                return EvaluationDataset.load(cache_path), None
        executor = self._effective_executor()
        if executor is not None:
            # The sharded path owns the cache write (quarantined
            # datasets must not be cached).
            stats: dict = {}
            dataset = self._evaluate_sharded(executor, stats)
            if timings is not None:
                timings.executor_name = stats["executor"]
                timings.shards_total = stats["shards_total"]
                timings.shards_resumed = stats["shards_resumed"]
                timings.shards_quarantined = stats["shards_quarantined"]
                timings.executor_downgraded = stats["executor_downgraded"]
            return dataset, None
        template = self.resolve_template()
        generator = self.resolve_generator(template)
        evaluator = TestCaseEvaluator(
            self.resolve_core(),
            template,
            attacker=self.resolve_attacker(),
            use_fastpath=self._use_fastpath,
        )
        dataset = evaluator.evaluate_many(
            generator.iter_generate(self._count),
            progress_every=self._progress_every,
        )
        if cache_path is not None:
            dataset.save(cache_path)
        return dataset, evaluator

    def evaluate(self) -> EvaluationDataset:
        """Generate and evaluate the configured corpus (cache-aware)."""
        dataset, _evaluator = self.evaluate_with_stats()
        return dataset

    def run(self) -> PipelineResult:
        """Run the full chain and return a :class:`PipelineResult`.

        Every run traces: spans land in an in-memory collector that
        :class:`PhaseTimings` projects from, and — when :meth:`trace`
        configured a path — in the shared JSONL trace file.  A
        file-backed tracer is also installed process-wide for the
        duration of the run so ``@trace_step``/``@profile_step``
        decorated internals (and forked executor workers, which
        inherit the installation) emit into the same file.  (Parallel
        campaign cells in one process share the installation; they
        also share one trace file, so the raced value is identical.)
        """
        tracer = Tracer(self._trace_path, source="pipeline", collector=[])
        previous = install_tracer(tracer) if tracer.enabled else None
        # The metrics registry rides the same installation: file-backed
        # runs get one, unless an outer owner (a campaign, a service
        # worker) already installed a live registry this run should
        # accumulate into.
        previous_metrics = None
        if tracer.enabled and not current_metrics().enabled:
            previous_metrics = install_metrics(Metrics(tracer))
        try:
            if self._adaptive is not None:
                result = self._run_adaptive(tracer)
            else:
                result = self._run_oneshot(tracer)
        finally:
            if previous_metrics is not None:
                current_metrics().flush(final=True)
                install_metrics(previous_metrics)
            if previous is not None:
                install_tracer(previous)
        if self._store is not None:
            self._store.put_result(self._store_cell(), result)
        if self._run_history_dir is not None:
            self._record_run_history(result)
        return result

    def _record_run_history(self, result: PipelineResult) -> None:
        from repro.metrics.runs import record_run

        timings = result.timings
        record_run(
            self._run_history_dir,
            kind="pipeline",
            label="core=%s attacker=%s template=%s budget=%d seed=%d"
            % (
                result.core_name,
                result.attacker_name,
                result.template_name,
                self._count,
                self._seed,
            ),
            seconds=timings.total_seconds,
            cases=len(result.dataset),
            phases={
                "setup": timings.setup_seconds,
                "evaluate": timings.evaluation_seconds,
                "synthesize": timings.synthesis_seconds,
                "verify": timings.verification_seconds,
            },
            extra={
                "atoms": result.atom_count,
                "false_positives": result.false_positives,
                "cache_hit": timings.cache_hit,
            },
        )

    def _store_cell(self):
        """This configuration as a campaign cell — the contract store's
        key shape.  Requires name-addressed plugins; retry/timeout
        settings are deliberately absent (they never change a result,
        so they must not fragment the store key space)."""
        # Imported at call time: repro.campaign builds on this module.
        from repro.campaign.spec import CampaignCell

        if not (
            isinstance(self._core, str)
            and isinstance(self._attacker, str)
            and isinstance(self._template, str)
            and isinstance(self._solver, str)
            and isinstance(self._generator, str)
            and (self._restriction is None or isinstance(self._restriction, str))
        ):
            raise ValueError(
                "store() keys contracts by registry name: configure core, "
                "attacker, template, solver, generator, and restriction "
                "by name when attaching a contract store"
            )
        stop = self._adaptive["stop"] if self._adaptive is not None else None
        if stop is not None and not isinstance(stop, str):
            raise ValueError(
                "store() with an adaptive pipeline needs a name-addressed "
                "stopping rule"
            )
        return CampaignCell(
            core=self._core,
            attacker=self._attacker,
            template=self._template,
            restriction=self._restriction,
            solver=self._solver,
            budget=self._count,
            seed=self._seed,
            generator=self._generator,
            adaptive_rounds=self._adaptive["rounds"]
            if self._adaptive is not None
            else None,
            batch=self._adaptive["batch"] if self._adaptive is not None else None,
            # The adaptive() default rule maps to the cell default
            # (None), so builder-configured and campaign-configured
            # runs of the same loop share one store key.
            stop=None if stop == "contract-stable" else stop,
            fastpath=self._use_fastpath,
            verify=self._verify_budget,
        )

    def _run_oneshot(self, tracer: Tracer) -> PipelineResult:
        """The classic fixed-budget chain, as a span stream.

        Each legacy phase timer became a ``phase`` span with the same
        boundaries; :meth:`PhaseTimings.from_spans` projects the
        timings back out of the tracer's collector, so the trace file
        and the CLI timing table share one measurement."""
        failures: List[FailureRecord] = []
        with tracer.span(
            "pipeline",
            core=self.core_name(),
            attacker=self.attacker_name(),
            solver=self.solver_name(),
            template=self.template_name(),
            budget=self._count,
            seed=self._seed,
        ):
            with tracer.span("phase", phase="setup"):
                core = self.resolve_core()
                template = self.resolve_template()
                attacker = self.resolve_attacker()
                solver = self.resolve_solver()
                cache_path = self.cache_path()
                cached = cache_path is not None and os.path.exists(cache_path)
                executor = self._effective_executor()
                if not cached and executor is None:
                    # Generator/evaluator construction (template
                    # fast-path compilation included) is part of the
                    # setup phase, like the paper's testbench
                    # compilation; a cache hit skips it, and executor
                    # workers each build (and time) their own.
                    generator = self.resolve_generator(template)
                    evaluator = TestCaseEvaluator(
                        core,
                        template,
                        attacker=attacker,
                        use_fastpath=self._use_fastpath,
                    )

            evaluate_span = tracer.span("phase", phase="evaluate")
            with evaluate_span:
                if cache_path is not None:
                    current_metrics().counter(
                        "dataset.cache.hits" if cached else "dataset.cache.misses"
                    ).inc()
                if cached:
                    dataset = EvaluationDataset.load(cache_path)
                    evaluate_span.add(cache_hit=True)
                elif executor is not None:
                    stats: dict = {}
                    dataset = self._evaluate_sharded(
                        executor, stats, failures, tracer
                    )
                    evaluate_span.add(**stats)
                else:
                    dataset = evaluator.evaluate_many(
                        generator.iter_generate(self._count),
                        progress_every=self._progress_every,
                    )
                    if cache_path is not None:
                        dataset.save(cache_path)
                    evaluate_span.add(
                        simulation_seconds=evaluator.simulation_seconds,
                        extraction_seconds=evaluator.extraction_seconds,
                    )

            with tracer.span("phase", phase="synthesize"):
                restriction_name, allowed_atom_ids = self.resolve_restriction(
                    template
                )
                synthesis = ContractSynthesizer(template, solver).synthesize(
                    dataset, allowed_atom_ids=allowed_atom_ids
                )

            with tracer.span("phase", phase="verify"):
                verification: Optional[SatisfactionReport]
                if self._verify_budget is None:
                    verification = check_dataset_satisfaction(
                        synthesis.contract, dataset
                    )
                elif self._verify_budget > 0:
                    verification = check_contract_satisfaction(
                        synthesis.contract,
                        core,
                        test_cases=self._verify_budget,
                        seed=self._verify_seed
                        if self._verify_seed is not None
                        else self._seed + 1,
                        attacker=attacker,
                    )
                else:
                    verification = None

        timings = PhaseTimings.from_spans(tracer.collector)
        return PipelineResult(
            core_name=self.core_name(),
            attacker_name=self.attacker_name(),
            solver_name=self.solver_name(),
            template_name=self.template_name(),
            restriction=restriction_name,
            dataset=dataset,
            synthesis=synthesis,
            verification=verification,
            timings=timings,
            generator_name=self.generator_name(),
            failures=failures,
        )

    def _adaptive_progress(self):
        """A per-round progress printer when :meth:`progress` is on
        (the adaptive analogue of the one-shot path's per-case and
        per-shard progress)."""
        if not self._progress_every:
            return None

        def emit(record) -> None:
            print(
                "round %d: %d cases evaluated (%.1f%% atom coverage, "
                "%d-atom contract)%s"
                % (
                    record.round_index,
                    record.cumulative_cases,
                    100.0 * record.atom_coverage,
                    record.contract_size,
                    " [%s]" % record.stop_reason if record.stop_reason else "",
                )
            )

        return emit

    def _run_adaptive(self, tracer: Tracer) -> PipelineResult:
        """The adaptive run: rounds executed by
        :class:`~repro.adaptive.AdaptiveLoop`, repackaged as a
        :class:`PipelineResult` (the loop's accumulated dataset and
        final synthesis take the places of the one-shot phases; the
        per-round records travel in ``result.adaptive``).

        Timing semantics differ from the one-shot run: evaluation and
        synthesis interleave per round, so the ``evaluate`` span is
        the whole loop and the ``synthesize`` phase record only the
        final round's solve (already included in the former; emitted
        via :meth:`Tracer.record` since the duration is accounted by
        the loop, not re-measured here).  The loop itself emits one
        ``round`` span per live round through a child tracer.
        """
        failures: List[FailureRecord] = []
        with tracer.span(
            "pipeline",
            core=self.core_name(),
            attacker=self.attacker_name(),
            solver=self.solver_name(),
            template=self.template_name(),
            budget=self._count,
            seed=self._seed,
            adaptive=True,
        ):
            with tracer.span("phase", phase="setup"):
                template = self.resolve_template()
                restriction_name, allowed_atom_ids = self.resolve_restriction(
                    template
                )
                rounds, batch = self._adaptive_plan()
                manifest_path = self.adaptive_manifest_path()
                quarantine_path = (
                    manifest_path[: -len(".rounds.jsonl")] + ".quarantine.jsonl"
                    if manifest_path is not None
                    and manifest_path.endswith(".rounds.jsonl")
                    and (self._retry is not None or self._shard_timeout is not None)
                    else None
                )
                loop = AdaptiveLoop(
                    core=self._core,
                    template=self._template,
                    attacker=self._attacker,
                    solver=self._solver,
                    generator=self._generator,
                    rounds=rounds,
                    batch=batch,
                    stop=self._adaptive["stop"],
                    seed=self._seed,
                    allowed_atom_ids=allowed_atom_ids,
                    restriction=restriction_name,
                    use_fastpath=self._use_fastpath,
                    executor=self._executor,
                    processes=self._processes,
                    shard_size=self._shard_size,
                    manifest_path=manifest_path,
                    progress=self._adaptive_progress(),
                    retry=self._retry,
                    shard_timeout=self._shard_timeout,
                    failure_log_path=quarantine_path,
                    on_failure=failures.append,
                    tracer=tracer.child("adaptive"),
                )

            evaluate_span = tracer.span("phase", phase="evaluate")
            with evaluate_span:
                adaptive = loop.run()
                if self._executor is not None:
                    evaluate_span.add(
                        executor=self._executor
                        if isinstance(self._executor, str)
                        else self._executor.name
                    )
            tracer.record(
                "phase", adaptive.synthesis.wall_seconds, phase="synthesize"
            )

            with tracer.span("phase", phase="verify"):
                verification: Optional[SatisfactionReport]
                if self._verify_budget is None:
                    verification = check_dataset_satisfaction(
                        adaptive.synthesis.contract, adaptive.dataset
                    )
                elif self._verify_budget > 0:
                    verification = check_contract_satisfaction(
                        adaptive.synthesis.contract,
                        self.resolve_core(),
                        test_cases=self._verify_budget,
                        seed=self._verify_seed
                        if self._verify_seed is not None
                        else self._seed + 1,
                        attacker=self.resolve_attacker(),
                    )
                else:
                    verification = None

        timings = PhaseTimings.from_spans(tracer.collector)
        return PipelineResult(
            core_name=self.core_name(),
            attacker_name=self.attacker_name(),
            solver_name=self.solver_name(),
            template_name=self.template_name(),
            restriction=restriction_name,
            dataset=adaptive.dataset,
            synthesis=adaptive.synthesis,
            verification=verification,
            timings=timings,
            generator_name=self.generator_name(),
            adaptive=adaptive,
            failures=failures,
        )
