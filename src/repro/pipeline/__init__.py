"""``repro.pipeline`` — the public entry point to the toolchain.

The paper's workflow is one fixed chain: *generate* atom-targeted test
cases, *evaluate* them on a core under an attacker model, *synthesize*
the most precise correct contract by ILP, *verify* it, and report.
:class:`SynthesisPipeline` packages that chain behind a builder-style
API wired entirely through string-keyed plugin registries::

    from repro.pipeline import SynthesisPipeline

    result = (
        SynthesisPipeline()
        .core("ibex")                    # repro.uarch.CORE_REGISTRY
        .attacker("retirement-timing")   # repro.attacker.ATTACKER_REGISTRY
        .template("riscv-rv32im")        # TEMPLATE_REGISTRY
        .restrict("full")                # RESTRICTION_REGISTRY (optional)
        .budget(2000, seed=1)
        .solver("scipy-milp")            # repro.synthesis.SOLVER_REGISTRY
        .run()
    )
    print(result.render())               # dataset, contract, verification, timings
    print(result.contract.summary())

Builder surface
---------------

==============================  ==================================================
``.core(name_or_instance)``     target core model (default ``"ibex"``)
``.attacker(name_or_inst)``     attacker model (default ``"retirement-timing"``)
``.solver(name_or_inst)``       ILP backend (default ``"scipy-milp"``)
``.template(name_or_inst)``     contract template (default ``"riscv-rv32im"``)
``.restrict(name_or_families)`` template restriction (default: none)
``.budget(count, seed)``        test-case budget and generator seed
``.generator(name_or_inst)``    generation strategy (GENERATOR_REGISTRY)
``.adaptive(...)``              coverage-guided rounds (repro.adaptive)
``.fastpath(mode)``             "reference" / "compiled" / "batch" evaluation
``.cache_dir(path)``            dataset cache directory (default: off)
``.progress(every)``            evaluation progress printing
``.verify(count, seed)``        verification budget (default: dataset check)
``.executor(name, ...)``        sharded evaluation backend (EXECUTOR_REGISTRY)
``.resume(path_or_True)``       shard-manifest checkpointing and resumption
``.on_shard(callback)``         per-shard :class:`ShardProgress` events
``.trace(path)``                append :mod:`repro.trace` spans to a JSONL file
==============================  ==================================================

Besides ``.run()`` (the full chain, returning :class:`PipelineResult`),
``.evaluate()`` stops after the evaluation phase and returns the
:class:`~repro.evaluation.results.EvaluationDataset` — the experiment
drivers use it to share one evaluated corpus across many synthesis-set
sweeps, exactly as the paper reuses its 2M-test-case evaluation.

Plugins
-------

Each registry lives with the layer that owns the plugin kind (cores in
``repro.uarch``, attackers in ``repro.attacker``, solvers in
``repro.synthesis``, templates/restrictions in
``repro.contracts.riscv_template``); :data:`REGISTRIES` aggregates them
and ``repro-synthesize list`` prints them.  Registering a new scenario
is one call::

    from repro.uarch import CORE_REGISTRY
    CORE_REGISTRY.register("my-core", MyCore, description="...")

after which ``SynthesisPipeline().core("my-core")``, every experiment
driver, and ``repro-synthesize run --core my-core`` accept it.
"""

from repro.pipeline.pipeline import (
    PhaseTimings,
    PipelineResult,
    SynthesisPipeline,
)
from repro.pipeline.registries import REGISTRIES, describe_registries
from repro.registry import Registry

__all__ = [
    "PhaseTimings",
    "PipelineResult",
    "REGISTRIES",
    "Registry",
    "SynthesisPipeline",
    "describe_registries",
]
