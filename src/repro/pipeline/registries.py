"""One aggregated view over the per-layer plugin registries.

The registries themselves live with the code they index — cores in
:mod:`repro.uarch`, attackers in :mod:`repro.attacker`, solvers in
:mod:`repro.synthesis`, templates and restrictions in
:mod:`repro.contracts.riscv_template`, evaluation executors in
:mod:`repro.evaluation.backends` — so each layer stays the single
source of truth for its plugins.  This module just collects them for
the pipeline front end and the CLI ``list`` subcommand.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adaptive.stopping import STOPPING_REGISTRY
from repro.attacker import ATTACKER_REGISTRY
from repro.contracts.riscv_template import RESTRICTION_REGISTRY, TEMPLATE_REGISTRY
from repro.evaluation.backends import EXECUTOR_REGISTRY
from repro.evaluation.fastpath import FASTPATH_REGISTRY
from repro.registry import Registry
from repro.resilience.faults import FAULT_REGISTRY
from repro.synthesis import SOLVER_REGISTRY
from repro.testgen.strategies import GENERATOR_REGISTRY
from repro.uarch import CORE_REGISTRY

#: Every pipeline axis, in CLI display order.
REGISTRIES: Dict[str, Registry] = {
    "cores": CORE_REGISTRY,
    "attackers": ATTACKER_REGISTRY,
    "solvers": SOLVER_REGISTRY,
    "templates": TEMPLATE_REGISTRY,
    "restrictions": RESTRICTION_REGISTRY,
    "executors": EXECUTOR_REGISTRY,
    "generators": GENERATOR_REGISTRY,
    "stopping-rules": STOPPING_REGISTRY,
    "faults": FAULT_REGISTRY,
    "fastpath-modes": FASTPATH_REGISTRY,
}


def describe_registries(only: Optional[str] = None) -> str:
    """Human-readable listing of the registries (``repro-synthesize
    list``); ``only`` restricts the output to one registry by its
    :data:`REGISTRIES` key (``"templates"``, ``"restrictions"``, ...).
    """
    if only is not None and only not in REGISTRIES:
        raise ValueError(
            "unknown registry %r (choose from %s)" % (only, ", ".join(REGISTRIES))
        )
    lines = []
    for title, registry in REGISTRIES.items():
        if only is not None and title != only:
            continue
        lines.append("%s:" % title)
        for name in registry.names():
            description = registry.describe(name)
            lines.append(
                "  %-24s %s" % (name, description) if description else "  %s" % name
            )
    return "\n".join(lines)
