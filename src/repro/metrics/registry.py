"""Named counters, gauges, and histograms over the trace stream.

:class:`Metrics` is the quantitative half of the observability layer:
call sites record *counts* (cache hits, solver warm starts, retries),
*levels* (queue depth, worker utilization, adaptive coverage), and
*distributions* (batch-engine lane occupancy, ILP constraint counts)
against a per-process registry, and the registry snapshots its state
into the same flock-serialized JSONL trace file the spans travel on —
as one field-discriminated ``metric`` record per flush::

    {"ts": t, "pid": p, "kind": "metric", "source": s,
     "counters": {...}, "gauges": {...}, "histograms": {...},
     "final": b}

Process safety is by construction, exactly like the tracer's: every
process (broker, pool worker, service worker) keeps its *own*
registry, counters and histograms are cumulative per process, and
snapshots interleave in the shared file through
:func:`repro.checkpoint.append_jsonl_line` — so readers merge by
taking each ``(pid, source, name)``'s last snapshot and summing
across processes (:mod:`repro.metrics.fold`), and no cross-process
lock ever guards a hot-path increment.

The no-op contract mirrors :class:`repro.trace.Tracer`: a registry
built over no sink (``Metrics(None)``, or a disabled tracer) hands
out shared null instruments whose ``inc``/``set``/``observe`` do
nothing and allocate nothing, so instrumented hot loops never guard
on metrics being configured.

Naming convention: dotted lowercase ``component.noun[.verb]`` —
``dataset.cache.hits``, ``batchsim.lanes.active``,
``solver.warm_start``, ``resilience.retries``, ``queue.depth``,
``worker.utilization``, ``adaptive.round.coverage``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:  # repro.trace imports this package's fold module;
    # a runtime import here would be circular.  The registry only
    # duck-types the tracer (``.active``, ``.event``) anyway.
    from repro.trace.tracer import Tracer

Number = Union[int, float]


def _geometric_bounds() -> tuple:
    """Histogram bucket upper edges: powers of two from 1e-6 up.

    One fixed layout for every histogram keeps snapshots mergeable
    across processes and runs: bucket ``i`` counts observations with
    ``value <= _BUCKET_BOUNDS[i]`` (and the overflow bucket, index
    ``len(_BUCKET_BOUNDS)``, everything larger).  The range covers
    sub-microsecond durations through billion-scale counts at a
    constant relative error of 2x — percentile estimates are exact to
    one bucket width, which is all a run report needs.
    """
    bounds = []
    value = 1e-6
    while value < 1e9:
        bounds.append(value)
        value *= 2.0
    return tuple(bounds)


_BUCKET_BOUNDS = _geometric_bounds()


class _NullCounter:
    """The shared no-op counter (disabled registry)."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        """Ignore the increment (metrics are disabled)."""


class _NullGauge:
    """The shared no-op gauge (disabled registry)."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        """Ignore the level (metrics are disabled)."""


class _NullHistogram:
    """The shared no-op histogram (disabled registry)."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        """Ignore the observation (metrics are disabled)."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class Counter:
    """A monotonically increasing count, cumulative per process."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A level: the snapshot carries the last value set."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A distribution over fixed geometric buckets.

    ``observe`` is the hot-path entry: one bisect into the shared
    bound table plus four scalar updates, no allocation beyond the
    arithmetic itself.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: Number) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.buckets[bisect_left(_BUCKET_BOUNDS, value)] += 1

    def snapshot(self) -> dict:
        """The wire form: only non-empty buckets, JSON-keyed."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(index): count
                for index, count in enumerate(self.buckets)
                if count
            },
        }


class Metrics:
    """One process's metric registry, snapshotting into a trace file.

    ``tracer`` supplies the sink and the ``source`` label; a ``None``
    (or inactive) tracer disables the registry entirely — every
    instrument lookup then returns a shared null singleton, so the
    disabled hot path allocates nothing (pinned by the tracemalloc
    test, like the disabled tracer's).

    ``flush_interval`` throttles :meth:`maybe_flush`, the periodic
    snapshot hook loop seams call; :meth:`flush` emits one
    unconditionally (``final=True`` marks the end-of-run snapshot).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        flush_interval: float = 10.0,
    ):
        self.tracer = tracer
        self.flush_interval = flush_interval
        self._enabled = tracer is not None and tracer.active
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._last_flush: Optional[float] = None

    @property
    def enabled(self) -> bool:
        """Whether instruments record and snapshots emit."""
        return self._enabled

    # -- instruments ---------------------------------------------------

    def counter(self, name: str):
        """The named counter (a shared no-op when disabled)."""
        if not self._enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str):
        """The named gauge (a shared no-op when disabled)."""
        if not self._enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str):
        """The named histogram (a shared no-op when disabled)."""
        if not self._enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -- snapshots -----------------------------------------------------

    def maybe_flush(self, now: Optional[float] = None) -> None:
        """Periodic snapshot: emit when ``flush_interval`` elapsed
        since the last flush (loop seams call this every iteration;
        free when disabled)."""
        if not self._enabled:
            return
        import time

        if now is None:
            now = time.monotonic()
        if self._last_flush is None:
            # The interval starts at first use, so a run shorter than
            # one interval emits only its final snapshot.
            self._last_flush = now
            return
        if now - self._last_flush >= self.flush_interval:
            self.flush()
            self._last_flush = now

    def flush(self, final: bool = False) -> None:
        """Emit one ``metric`` snapshot record (skipped while nothing
        has been recorded — an uninstrumented run adds no noise)."""
        if not self._enabled:
            return
        if not (self._counters or self._gauges or self._histograms):
            return
        self.tracer.event(
            "metric",
            counters={
                name: instrument.value
                for name, instrument in self._counters.items()
            },
            gauges={
                name: instrument.value
                for name, instrument in self._gauges.items()
            },
            histograms={
                name: instrument.snapshot()
                for name, instrument in self._histograms.items()
            },
            final=final,
        )


#: The process-wide registry the instrumented seams resolve — a module
#: global like the tracer's, so forked pool workers inherit the
#: installation (each then accumulates its own process's counts).
_CURRENT: Metrics = Metrics(None)


def install_metrics(metrics: Optional[Metrics]) -> Metrics:
    """Install ``metrics`` as the process-wide registry; returns the
    previous one so callers can restore it (``None`` installs the
    disabled registry)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = metrics if metrics is not None else Metrics(None)
    return previous


def current_metrics() -> Metrics:
    """The process-wide registry (disabled when none installed)."""
    return _CURRENT
