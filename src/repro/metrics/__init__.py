"""Quantitative observability: metrics over the trace stream.

``repro.metrics`` is the counters/gauges/histograms half of the
observability layer (the spans half is :mod:`repro.trace`):

- :mod:`repro.metrics.registry` — the per-process instrument registry
  (zero-allocation when disabled) snapshotting ``metric`` records into
  the shared trace file;
- :mod:`repro.metrics.fold` — the reader side, merging cumulative
  per-process snapshots into run totals;
- :mod:`repro.metrics.report` — ``repro report``: self-contained
  Markdown/HTML run reports;
- :mod:`repro.metrics.runs` — the run-history index behind
  ``repro runs list`` / ``repro runs diff``.
"""

from repro.metrics.fold import (
    GaugeSummary,
    HistogramSummary,
    MetricsAggregate,
    is_metric_record,
)
from repro.metrics.registry import (
    Metrics,
    current_metrics,
    install_metrics,
)
from repro.metrics.report import render_report
from repro.metrics.runs import (
    diff_runs,
    load_runs,
    record_run,
    render_runs,
    resolve_run,
)

__all__ = [
    "GaugeSummary",
    "HistogramSummary",
    "Metrics",
    "MetricsAggregate",
    "current_metrics",
    "diff_runs",
    "install_metrics",
    "is_metric_record",
    "load_runs",
    "record_run",
    "render_report",
    "render_runs",
    "resolve_run",
]
