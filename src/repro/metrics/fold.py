"""Merging ``metric`` snapshot records back into per-run aggregates.

The registry side (:mod:`repro.metrics.registry`) emits cumulative
per-process snapshots; this module is the reader side: feed every
``metric`` record from a trace file into a :class:`MetricsAggregate`
and it reconstructs run totals without any cross-process coordination
having happened at write time —

- **counters** are cumulative per ``(pid, source, name)``, so the last
  snapshot per key is the process's total and the run total is the sum
  across keys;
- **gauges** report the last value seen per key (plus the min/max over
  every snapshot, which is what queue-depth and utilization reporting
  want);
- **histograms** are cumulative like counters: keep the last snapshot
  per key and merge bucket tables across keys, then estimate
  percentiles by walking the shared geometric bucket bounds.

Records are ingested one at a time so folding stays streaming — a
million-span service trace never needs to be resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.registry import _BUCKET_BOUNDS

#: One registry instance's identity in the shared file.
_Key = Tuple[int, str, str]


@dataclass
class GaugeSummary:
    """A gauge folded across snapshots: last level plus its envelope."""

    last: float = 0.0
    min: float = 0.0
    max: float = 0.0
    samples: int = 0

    def ingest(self, value: float) -> None:
        if self.samples == 0 or value < self.min:
            self.min = value
        if self.samples == 0 or value > self.max:
            self.max = value
        self.last = value
        self.samples += 1


@dataclass
class HistogramSummary:
    """Histogram snapshots merged across processes."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    buckets: Dict[int, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, snapshot: dict) -> None:
        count = int(snapshot.get("count", 0))
        if not count:
            return
        low = float(snapshot.get("min", 0.0))
        high = float(snapshot.get("max", 0.0))
        if self.count == 0 or low < self.min:
            self.min = low
        if self.count == 0 or high > self.max:
            self.max = high
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        for index, bucket_count in (snapshot.get("buckets") or {}).items():
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + int(bucket_count)

    def percentile(self, q: float) -> float:
        """The q-quantile estimated from the bucket table (exact to one
        geometric bucket width, clamped into ``[min, max]``)."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                if index < len(_BUCKET_BOUNDS):
                    bound = _BUCKET_BOUNDS[index]
                else:
                    bound = self.max
                return min(max(bound, self.min), self.max)
        return self.max


@dataclass
class MetricsAggregate:
    """Every metric snapshot in a trace, folded to run-level views."""

    snapshots: int = 0
    _counters: Dict[_Key, float] = field(default_factory=dict)
    _gauges: Dict[str, GaugeSummary] = field(default_factory=dict)
    _histograms: Dict[_Key, dict] = field(default_factory=dict)

    def ingest(self, record: dict) -> None:
        """Fold one ``metric`` record (later snapshots from the same
        process replace earlier ones — they are cumulative)."""
        pid = record.get("pid", 0)
        source = record.get("source", "")
        self.snapshots += 1
        for name, value in (record.get("counters") or {}).items():
            self._counters[(pid, source, name)] = value
        for name, value in (record.get("gauges") or {}).items():
            summary = self._gauges.get(name)
            if summary is None:
                summary = self._gauges[name] = GaugeSummary()
            summary.ingest(value)
        for name, snapshot in (record.get("histograms") or {}).items():
            self._histograms[(pid, source, name)] = snapshot

    def counters(self) -> Dict[str, float]:
        """Run totals: each process's last cumulative value, summed."""
        totals: Dict[str, float] = {}
        for (_, _, name), value in self._counters.items():
            totals[name] = totals.get(name, 0) + value
        return totals

    def gauges(self) -> Dict[str, GaugeSummary]:
        """Per-name gauge envelopes across every snapshot."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, HistogramSummary]:
        """Per-name distributions merged across processes."""
        merged: Dict[str, HistogramSummary] = {}
        for (_, _, name), snapshot in self._histograms.items():
            summary = merged.get(name)
            if summary is None:
                summary = merged[name] = HistogramSummary()
            summary.merge(snapshot)
        return merged


def is_metric_record(record: dict) -> bool:
    """Whether a trace record is a registry snapshot (the ``metric``
    shape: an event-positioned record carrying instrument tables)."""
    return record.get("kind") == "metric" and "start_ts" not in record


__all__ = [
    "GaugeSummary",
    "HistogramSummary",
    "MetricsAggregate",
    "is_metric_record",
]
