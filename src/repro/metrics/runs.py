"""The run-history index: one summary record per completed run.

Every completed pipeline, campaign, and service run appends one JSONL
summary record to ``runs.jsonl`` under its results root (through the
same flock-serialized, torn-tail-tolerant append the checkpoints use),
so perf claims become diffable artifacts: ``repro runs list`` tables
the history and ``repro runs diff A B`` compares two entries,
flagging per-phase wall-time and throughput regressions beyond a
threshold.

Records are self-describing and tolerant to extension::

    {"id": "pipeline-3fb2c91d04", "ts": ..., "kind": "pipeline",
     "label": "...", "seconds": ..., "cases": ..., "throughput": ...,
     "phases": {"evaluate": ..., ...}, ...}

``id`` is a content digest prefixed by the run kind; ``runs`` commands
accept the full id, any unambiguous prefix, or a 1-based index into
the listing (negatives count from the end, ``-1`` = latest).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint import append_jsonl_line
from repro.reporting.tables import render_comparison_table

#: The index file name under a results root.
RUNS_FILENAME = "runs.jsonl"

#: Relative change beyond which a diff row is flagged.
DEFAULT_THRESHOLD = 0.10


def runs_path(results_dir: str) -> str:
    return os.path.join(results_dir, RUNS_FILENAME)


def record_run(
    results_dir: str,
    kind: str,
    label: str,
    seconds: float,
    cases: Optional[int] = None,
    phases: Optional[Dict[str, float]] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Append one summary record for a completed run; returns it.

    ``phases`` maps phase name to wall seconds; ``throughput`` is
    derived (cases per second) when both inputs are present.
    """
    record = {
        "ts": round(time.time(), 6),
        "kind": kind,
        "label": label,
        "seconds": round(float(seconds), 6),
    }
    if cases is not None:
        record["cases"] = int(cases)
        if seconds > 0:
            record["throughput"] = round(cases / seconds, 6)
    if phases:
        record["phases"] = {
            name: round(float(value), 6) for name, value in phases.items()
        }
    if extra:
        record.update(extra)
    digest = hashlib.md5(
        json.dumps(record, sort_keys=True).encode("utf-8")
    ).hexdigest()
    record["id"] = "%s-%s" % (kind, digest[:10])
    os.makedirs(results_dir or ".", exist_ok=True)
    append_jsonl_line(runs_path(results_dir), record)
    return record


def load_runs(results_dir: str) -> List[dict]:
    """Every parseable record in the index, file order (oldest first)."""
    path = runs_path(results_dir)
    records: List[dict] = []
    try:
        stream = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return records
    with stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(record, dict):
                records.append(record)
    return records


def resolve_run(runs: List[dict], token: str) -> dict:
    """The record ``token`` names: exact id, unique id prefix, or a
    1-based index (negative = from the end)."""
    try:
        index = int(token)
    except ValueError:
        index = None
    if index is not None and index != 0:
        position = index - 1 if index > 0 else index
        try:
            return runs[position]
        except IndexError:
            raise SystemExit(
                "run index %s out of range (%d runs)" % (token, len(runs))
            )
    matches = [run for run in runs if run.get("id") == token]
    if not matches:
        matches = [
            run for run in runs if str(run.get("id", "")).startswith(token)
        ]
    if not matches:
        raise SystemExit("no run matches %r" % token)
    if len(matches) > 1:
        raise SystemExit(
            "%r is ambiguous: %s"
            % (token, ", ".join(str(run.get("id")) for run in matches))
        )
    return matches[0]


def render_runs(runs: List[dict]) -> str:
    """The ``runs list`` table (latest last, matching file order)."""
    if not runs:
        return "no recorded runs"
    rows = []
    for position, run in enumerate(runs, start=1):
        throughput = run.get("throughput")
        rows.append(
            [
                str(position),
                str(run.get("id", "?")),
                str(run.get("kind", "?")),
                str(run.get("label", ""))[:48],
                "%.2fs" % float(run.get("seconds", 0.0)),
                str(run.get("cases", "-")),
                "%.1f/s" % throughput if throughput is not None else "-",
            ]
        )
    return render_comparison_table(
        ["#", "id", "kind", "label", "wall", "cases", "throughput"],
        rows,
        title="Run history (%d runs)" % len(runs),
    )


@dataclass
class DiffRow:
    """One compared quantity between two runs."""

    name: str
    before: Optional[float]
    after: Optional[float]
    #: Relative change ``(after - before) / before`` when computable.
    delta: Optional[float]
    #: Whether the change crosses the threshold in the bad direction
    #: (wall time up, throughput down).
    regression: bool
    flagged: bool


@dataclass
class RunDiff:
    """``runs diff A B``: per-quantity deltas with regression flags."""

    before: dict
    after: dict
    rows: List[DiffRow] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regression]

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            if row.delta is None:
                change = "-"
            else:
                change = "%+.1f%%" % (row.delta * 100.0)
            if row.regression:
                flag = "REGRESSION"
            elif row.flagged:
                flag = "improved"
            else:
                flag = ""
            table_rows.append(
                [
                    row.name,
                    _render_value(row.name, row.before),
                    _render_value(row.name, row.after),
                    change,
                    flag,
                ]
            )
        title = "Run diff: %s -> %s (threshold %.0f%%)" % (
            self.before.get("id", "?"),
            self.after.get("id", "?"),
            self.threshold * 100.0,
        )
        body = render_comparison_table(
            [
                "metric",
                str(self.before.get("id", "A")),
                str(self.after.get("id", "B")),
                "delta",
                "",
            ],
            table_rows,
            title=title,
        )
        verdict = (
            "%d regression(s) flagged" % len(self.regressions)
            if self.regressions
            else "no regressions flagged"
        )
        return body + "\n" + verdict


def _render_value(name: str, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if name == "throughput":
        return "%.1f/s" % value
    return "%.2fs" % value


def _relative(before: Optional[float], after: Optional[float]):
    if before is None or after is None or not before:
        return None
    return (after - before) / before


def diff_runs(
    before: dict, after: dict, threshold: float = DEFAULT_THRESHOLD
) -> RunDiff:
    """Compare two index records: total wall, throughput, per-phase
    wall.  A row regresses when wall time rises (or throughput falls)
    by more than ``threshold``."""
    diff = RunDiff(before=before, after=after, threshold=threshold)

    def add(name: str, first, second, higher_is_better: bool) -> None:
        delta = _relative(first, second)
        flagged = delta is not None and abs(delta) > threshold
        bad = delta is not None and (
            delta < 0 if higher_is_better else delta > 0
        )
        diff.rows.append(
            DiffRow(
                name=name,
                before=first,
                after=second,
                delta=delta,
                regression=flagged and bad,
                flagged=flagged,
            )
        )

    add("wall", before.get("seconds"), after.get("seconds"), False)
    add(
        "throughput",
        before.get("throughput"),
        after.get("throughput"),
        True,
    )
    phase_names: List[str] = []
    for run in (before, after):
        for name in run.get("phases") or {}:
            if name not in phase_names:
                phase_names.append(name)
    for name in phase_names:
        add(
            "phase:%s" % name,
            (before.get("phases") or {}).get(name),
            (after.get("phases") or {}).get(name),
            False,
        )
    return diff


__all__ = [
    "DEFAULT_THRESHOLD",
    "DiffRow",
    "RunDiff",
    "RUNS_FILENAME",
    "diff_runs",
    "load_runs",
    "record_run",
    "render_runs",
    "resolve_run",
    "runs_path",
]
