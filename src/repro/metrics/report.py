"""Self-contained run reports folded from a trace file.

``repro report --trace PATH`` renders one document — Markdown by
default, or a dependency-free single-file HTML page — with everything
a post-mortem or perf review reads off a run: per-phase/span wall
tables, counter totals, gauge envelopes, histogram percentiles, and
the slowest spans.  The fold is streaming
(:func:`repro.trace.metrics.fold_file`), so reports over million-span
service traces stay flat in memory.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.trace.metrics import TraceMetrics

# repro.trace.metrics folds metric records through repro.metrics.fold,
# so the trace-side imports here are deferred to call time to keep the
# package importable from either direction.

#: A rendered section: (title, column headers, rows).
_Section = Tuple[str, List[str], List[List[str]]]


def build_sections(
    metrics: TraceMetrics, slowest: int = 10
) -> List[_Section]:
    """The report body as format-neutral tables."""
    from repro.trace.metrics import span_group

    sections: List[_Section] = []

    rows = []
    for group in sorted(metrics.summaries):
        summary = metrics.summaries[group]
        rows.append(
            [
                group,
                str(summary.count),
                "%.3f" % summary.total_seconds,
                "%.3f" % summary.mean_seconds,
                "%.3f" % summary.max_seconds,
                str(summary.failed),
            ]
        )
    sections.append(
        (
            "Span summary (%d records: %d spans, %d events, %d metric snapshots)"
            % (
                metrics.record_count,
                metrics.span_count,
                metrics.event_count,
                metrics.metric_count,
            ),
            ["span", "count", "total s", "mean s", "max s", "failed"],
            rows,
        )
    )

    counters = metrics.metrics.counters()
    if counters:
        sections.append(
            (
                "Counters",
                ["counter", "total"],
                [[name, "%g" % counters[name]] for name in sorted(counters)],
            )
        )

    gauges = metrics.metrics.gauges()
    if gauges:
        sections.append(
            (
                "Gauges",
                ["gauge", "last", "min", "max"],
                [
                    [
                        name,
                        "%g" % gauges[name].last,
                        "%g" % gauges[name].min,
                        "%g" % gauges[name].max,
                    ]
                    for name in sorted(gauges)
                ],
            )
        )

    histograms = metrics.metrics.histograms()
    if histograms:
        rows = []
        for name in sorted(histograms):
            summary = histograms[name]
            rows.append(
                [
                    name,
                    str(summary.count),
                    "%g" % summary.mean,
                    "%g" % summary.percentile(0.5),
                    "%g" % summary.percentile(0.9),
                    "%g" % summary.percentile(0.99),
                    "%g" % summary.max,
                ]
            )
        sections.append(
            (
                "Histogram percentiles",
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
            )
        )

    cells = metrics.cells()
    if cells:
        sections.append(
            (
                "Campaign cells",
                ["cell", "seconds", "status", "atoms"],
                [
                    [
                        str(record.get("cell", "?")),
                        "%.3f" % float(record.get("seconds", 0.0)),
                        "ok" if record.get("ok", True) else "FAILED",
                        str(record.get("atoms", "-")),
                    ]
                    for record in cells
                ],
            )
        )

    rounds = metrics.rounds()
    if rounds:
        sections.append(
            (
                "Adaptive rounds",
                ["round", "cases", "coverage", "atoms", "seconds", "stop"],
                [
                    [
                        str(record.get("round", "?")),
                        str(record.get("cumulative_cases", "-")),
                        "%.1f%%"
                        % (100.0 * float(record.get("atom_coverage", 0.0))),
                        str(record.get("contract_size", "-")),
                        "%.3f" % float(record.get("seconds", 0.0)),
                        str(record.get("stop_reason") or "-"),
                    ]
                    for record in rounds
                ],
            )
        )

    if metrics.span_count:
        rows = []
        for record in metrics.slowest(slowest):
            detail = []
            for key in ("phase", "cell", "round", "start_id", "job", "request"):
                if key in record:
                    detail.append("%s=%s" % (key, record[key]))
            rows.append(
                [
                    span_group(record),
                    str(record.get("source", "-")),
                    " ".join(detail) or "-",
                    "%.3f" % float(record.get("seconds", 0.0)),
                ]
            )
        sections.append(
            ("Slowest spans", ["span", "source", "detail", "seconds"], rows)
        )

    return sections


def _markdown_table(headers: List[str], rows: List[List[str]]) -> str:
    if not rows:
        return "*(empty)*"
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_markdown(
    metrics: TraceMetrics, title: str = "Run report", slowest: int = 10
) -> str:
    parts = ["# %s" % title]
    for section_title, headers, rows in build_sections(metrics, slowest):
        parts.append("## %s" % section_title)
        parts.append(_markdown_table(headers, rows))
    return "\n\n".join(parts) + "\n"


_HTML_STYLE = (
    "body{font-family:sans-serif;margin:2em;max-width:72em}"
    "table{border-collapse:collapse;margin:1em 0}"
    "th,td{border:1px solid #ccc;padding:0.3em 0.7em;text-align:left}"
    "th{background:#f0f0f0}"
    "h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}"
)


def render_html(
    metrics: TraceMetrics, title: str = "Run report", slowest: int = 10
) -> str:
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>%s</title>" % html.escape(title),
        "<style>%s</style></head><body>" % _HTML_STYLE,
        "<h1>%s</h1>" % html.escape(title),
    ]
    for section_title, headers, rows in build_sections(metrics, slowest):
        parts.append("<h2>%s</h2>" % html.escape(section_title))
        parts.append("<table><tr>")
        parts.extend("<th>%s</th>" % html.escape(header) for header in headers)
        parts.append("</tr>")
        for row in rows:
            parts.append(
                "<tr>"
                + "".join("<td>%s</td>" % html.escape(cell) for cell in row)
                + "</tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_report(
    trace_path: str,
    fmt: str = "markdown",
    title: Optional[str] = None,
    slowest: int = 10,
) -> str:
    """Fold ``trace_path`` and render it as ``markdown`` or ``html``."""
    from repro.trace.metrics import fold_file

    metrics = fold_file(trace_path, keep_records=False)
    if title is None:
        title = "Run report: %s" % trace_path
    if fmt in ("markdown", "md"):
        return render_markdown(metrics, title=title, slowest=slowest)
    if fmt == "html":
        return render_html(metrics, title=title, slowest=slowest)
    raise ValueError("unknown report format: %r" % fmt)


__all__ = [
    "build_sections",
    "render_html",
    "render_markdown",
    "render_report",
]
