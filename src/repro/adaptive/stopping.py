"""Stopping rules for the adaptive synthesis loop.

A :class:`StoppingRule` decides, after each completed round, whether
the loop has converged.  Rules are plugins (:data:`STOPPING_REGISTRY`)
so campaigns and the CLI can select them by name:

- ``contract-stable`` — the synthesized contract has not changed for
  ``patience`` consecutive rounds (the default, and the paper-faithful
  convergence criterion: fresh evidence keeps failing to move the
  contract);
- ``full-coverage`` — every targetable atom has distinguished at least
  one evaluated test case (the strongest signal the corpus is
  saturated; may never fire on templates with unobservable atoms);
- ``budget`` — never stops early; the loop runs its full round budget
  (the fixed-budget baseline expressed as a rule).

The loop itself always stops when the round budget is exhausted,
reporting ``"budget-exhausted"``; rules only ever stop *earlier*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.registry import Registry


@dataclass(frozen=True)
class AdaptiveState:
    """What a stopping rule may inspect after a completed round."""

    #: Index of the just-completed round (0-based).
    round_index: int
    #: Sorted contract atom ids per completed round, oldest first.
    contracts: Tuple[Tuple[int, ...], ...]
    #: Atoms that have distinguished at least one evaluated case.
    covered_atom_ids: FrozenSet[int]
    #: Atoms the loop is trying to cover (the restricted template).
    targetable_atom_ids: FrozenSet[int]
    #: Test cases evaluated so far / the loop's total case budget.
    cumulative_cases: int
    max_cases: int

    @property
    def atom_coverage(self) -> float:
        if not self.targetable_atom_ids:
            return 1.0
        covered = self.covered_atom_ids & self.targetable_atom_ids
        return len(covered) / len(self.targetable_atom_ids)


class StoppingRule:
    """Decides whether the loop has converged after a round."""

    name = "abstract"

    def check(self, state: AdaptiveState) -> Optional[str]:
        """A human-readable stop reason, or ``None`` to continue."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s()" % type(self).__name__


class ContractStableRule(StoppingRule):
    """Stop when the contract is unchanged for ``patience`` rounds."""

    name = "contract-stable"

    def __init__(self, patience: int = 2):
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.patience = patience

    def check(self, state: AdaptiveState) -> Optional[str]:
        if len(state.contracts) < self.patience + 1:
            return None
        window = state.contracts[-(self.patience + 1) :]
        if all(contract == window[0] for contract in window[1:]):
            return "contract stable for %d rounds" % self.patience
        return None


class FullCoverageRule(StoppingRule):
    """Stop when every targetable atom has distinguished some case."""

    name = "full-coverage"

    def check(self, state: AdaptiveState) -> Optional[str]:
        if state.targetable_atom_ids <= state.covered_atom_ids:
            return "full atom coverage (%d atoms)" % len(state.targetable_atom_ids)
        return None


class BudgetRule(StoppingRule):
    """Never stops early: run the full round budget."""

    name = "budget"

    def check(self, state: AdaptiveState) -> Optional[str]:
        return None


#: All registered stopping rules, keyed by ``name``.
STOPPING_REGISTRY = Registry("stopping rule", "adaptive-loop stopping rules")
STOPPING_REGISTRY.register(
    ContractStableRule.name,
    ContractStableRule,
    description="contract unchanged for `patience` consecutive rounds",
)
STOPPING_REGISTRY.register(
    FullCoverageRule.name,
    FullCoverageRule,
    description="every targetable atom distinguished at least once",
)
STOPPING_REGISTRY.register(
    BudgetRule.name,
    BudgetRule,
    description="never stop early; exhaust the round budget",
)


def resolve_stopping_rules(stop) -> Tuple[StoppingRule, ...]:
    """``stop`` as a tuple of rules: a registry name, a rule instance,
    or a sequence of either (``None`` resolves to no early rule)."""
    if stop is None:
        return ()
    if isinstance(stop, (str, StoppingRule)):
        stop = (stop,)
    rules = []
    for item in stop:
        if isinstance(item, str):
            rules.append(STOPPING_REGISTRY.create(item))
        elif isinstance(item, StoppingRule):
            rules.append(item)
        else:
            raise TypeError(
                "stopping rules are registry names or StoppingRule "
                "instances, not %r" % (item,)
            )
    return tuple(rules)
