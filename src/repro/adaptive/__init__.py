"""Adaptive test generation: coverage-guided synthesis loops (§IV-B+).

The fixed-budget pipeline generates its whole corpus up front and
throws the evaluator's per-atom feedback away.  :class:`AdaptiveLoop`
closes that loop: rounds of ``batch``-sized generation through a
``GENERATOR_REGISTRY`` strategy, per-atom coverage fed back between
rounds, warm-started per-round ILP synthesis, pluggable
:data:`STOPPING_REGISTRY` convergence rules, and round-granularity
checkpointing via :class:`AdaptiveManifest`.

Front-end surface: ``SynthesisPipeline.adaptive(generator=...,
rounds=..., batch=..., stop=...)``; campaign grids sweep strategies
through the ``generators`` axis of ``CampaignSpec``.
"""

from repro.adaptive.loop import AdaptiveLoop, AdaptiveResult, RoundRecord
from repro.adaptive.manifest import AdaptiveKeyError, AdaptiveManifest
from repro.adaptive.stopping import (
    STOPPING_REGISTRY,
    AdaptiveState,
    BudgetRule,
    ContractStableRule,
    FullCoverageRule,
    StoppingRule,
    resolve_stopping_rules,
)

__all__ = [
    "STOPPING_REGISTRY",
    "AdaptiveKeyError",
    "AdaptiveLoop",
    "AdaptiveManifest",
    "AdaptiveResult",
    "AdaptiveState",
    "BudgetRule",
    "ContractStableRule",
    "FullCoverageRule",
    "RoundRecord",
    "StoppingRule",
    "resolve_stopping_rules",
]
