"""The adaptive synthesis loop: generate → evaluate → steer.

:class:`AdaptiveLoop` wraps the existing pipeline phases in rounds.
Each round generates ``batch`` test cases through a
``GENERATOR_REGISTRY`` strategy (in-process or fanned out through an
``EXECUTOR_REGISTRY`` backend — workers rebuild the strategy from its
registry name plus a JSON state snapshot), evaluates them, feeds the
per-atom coverage back into the strategy, and re-synthesizes the
contract from the accumulated dataset — warm-starting the ILP from the
previous round's :class:`~repro.synthesis.synthesizer.SynthesisResult`
so a converged loop's synthesis degenerates to a feasibility check.
A pluggable :class:`~repro.adaptive.stopping.StoppingRule` ends the
loop early; otherwise it runs its full round budget.

Test ids are allocated per round as ``[r * batch, (r + 1) * batch)``,
so a loop is resumable at round granularity: completed rounds are
checkpointed to an :class:`~repro.adaptive.manifest.AdaptiveManifest`
(rows, strategy state, contract) and re-ingested instead of re-run.

One round of the ``random`` strategy is byte-identical to the classic
fixed-budget pipeline — the adaptive loop strictly generalizes it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.adaptive.manifest import AdaptiveManifest
from repro.adaptive.stopping import AdaptiveState, StoppingRule, resolve_stopping_rules
from repro.resilience.injection import maybe_inject
from repro.resilience.quarantine import FailureLog, FailureRecord
from repro.resilience.retry import RetryPolicy, is_retryable
from repro.attacker import ATTACKER_REGISTRY
from repro.attacker.base import Attacker
from repro.contracts.template import ContractTemplate, template_digest
from repro.evaluation.evaluator import TestCaseEvaluator
from repro.evaluation.results import EvaluationDataset, TestCaseResult
from repro.metrics.registry import current_metrics
from repro.synthesis import SOLVER_REGISTRY
from repro.synthesis.solvers import IlpSolver
from repro.synthesis.synthesizer import ContractSynthesizer, SynthesisResult
from repro.testgen.strategies import GENERATOR_REGISTRY, GenerationStrategy
from repro.trace.tracer import Tracer
from repro.uarch import CORE_REGISTRY
from repro.uarch.core import Core

#: Optional per-round progress callback.
RoundCallback = Callable[["RoundRecord"], None]


def derive_round_plan(
    rounds: int, batch: Optional[int], budget: int
) -> Tuple[int, int]:
    """The ``(rounds, batch)`` actually run: an explicit ``batch`` is
    taken as given (its ceiling is ``rounds * batch``); a derived batch
    splits ``budget`` evenly across the rounds, clamping the round
    count so the ceiling never exceeds the budget.  The single source
    of this derivation for both ``SynthesisPipeline.adaptive`` and
    campaign cells."""
    if batch is not None:
        return rounds, batch
    if budget < 1:
        raise ValueError(
            "adaptive mode derives its per-round batch from the budget: "
            "configure a positive budget or pass an explicit batch"
        )
    rounds = min(rounds, budget)
    return rounds, max(1, budget // rounds)


@dataclass(frozen=True)
class RoundRecord:
    """The outcome of one adaptive round (cumulative where noted)."""

    round_index: int
    #: First test id of the round's generation window.
    start_id: int
    #: Cases evaluated in this round / in all rounds so far.
    cases: int
    cumulative_cases: int
    #: Attacker-distinguishable cases so far (cumulative).
    distinguishable: int
    #: Distinct targetable atoms distinguished so far, and the fraction
    #: of the targetable template they represent.
    covered_atoms: int
    atom_coverage: float
    #: The round's synthesized contract (sorted atom ids) and its FPs.
    contract_atom_ids: Tuple[int, ...]
    false_positives: int
    #: The round's synthesis reused the previous contract (the
    #: warm-start feasibility shortcut) instead of a cold solve.
    warm_started: bool
    #: The round came from the manifest, not this run.
    resumed: bool
    #: Stop reason recorded after this round (``None`` to continue).
    stop_reason: Optional[str]
    seconds: float

    @property
    def contract_size(self) -> int:
        return len(self.contract_atom_ids)


@dataclass
class AdaptiveResult:
    """Everything one adaptive run produced."""

    records: List[RoundRecord]
    dataset: EvaluationDataset
    synthesis: SynthesisResult
    stop_reason: str
    generator_name: str
    batch: int
    rounds_limit: int

    @property
    def contract(self):
        return self.synthesis.contract

    @property
    def total_cases(self) -> int:
        return len(self.dataset)

    @property
    def rounds_run(self) -> int:
        return len(self.records)

    @property
    def resumed_rounds(self) -> int:
        return sum(1 for record in self.records if record.resumed)

    def curves(self):
        """Per-round coverage/contract-size curves (x = cumulative
        cases), as :class:`repro.reporting.curves.Series`."""
        from repro.reporting.curves import adaptive_round_curves

        return adaptive_round_curves(self.records)

    def render(self) -> str:
        lines = [
            "adaptive: generator=%s batch=%d rounds=%d/%d cases=%d (%s)"
            % (
                self.generator_name,
                self.batch,
                self.rounds_run,
                self.rounds_limit,
                self.total_cases,
                self.stop_reason,
            )
        ]
        for record in self.records:
            lines.append(
                "  round %d: %d cases, %.1f%% atom coverage, "
                "%d-atom contract, %d FPs%s%s"
                % (
                    record.round_index,
                    record.cumulative_cases,
                    100.0 * record.atom_coverage,
                    record.contract_size,
                    record.false_positives,
                    " (warm)" if record.warm_started else "",
                    " (resumed)" if record.resumed else "",
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AdaptiveResult(%s, %d rounds, %d cases, %d atoms)" % (
            self.generator_name,
            self.rounds_run,
            self.total_cases,
            len(self.synthesis.contract),
        )


@dataclass
class _LoopAccumulator:
    """The loop's cross-round running state."""

    results: List[TestCaseResult] = field(default_factory=list)
    atom_counts: dict = field(default_factory=dict)
    contracts: List[Tuple[int, ...]] = field(default_factory=list)
    distinguishable: int = 0

    def ingest(self, results: Sequence[TestCaseResult]) -> None:
        self.results.extend(results)
        for result in results:
            if result.attacker_distinguishable:
                self.distinguishable += 1
            for atom_id in result.distinguishing_atom_ids:
                self.atom_counts[atom_id] = self.atom_counts.get(atom_id, 0) + 1


class AdaptiveLoop:
    """Coverage-guided synthesis: rounds of generate → evaluate → steer.

    Plugins are accepted as registry names or instances; the executor
    fan-out and manifest checkpointing require *names* (workers and
    checkpoint keys rebuild plugins by name, the same rule as the
    sharded evaluation path).
    """

    def __init__(
        self,
        core: Union[str, Core] = "ibex",
        template: Union[str, ContractTemplate] = "riscv-rv32im",
        attacker: Union[str, Attacker] = "retirement-timing",
        solver: Union[str, IlpSolver] = "scipy-milp",
        generator: Union[str, GenerationStrategy] = "coverage",
        rounds: int = 8,
        batch: int = 250,
        stop: Union[None, str, StoppingRule, Sequence] = "contract-stable",
        seed: int = 0,
        allowed_atom_ids=None,
        restriction: Optional[str] = None,
        use_fastpath: "bool | str" = True,
        executor: Optional[str] = None,
        processes: Optional[int] = None,
        shard_size: int = 250,
        manifest_path: Optional[str] = None,
        progress: Optional[RoundCallback] = None,
        retry: Optional[RetryPolicy] = None,
        shard_timeout: Optional[float] = None,
        failure_log_path: Optional[str] = None,
        on_failure: Optional[Callable[[FailureRecord], None]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if rounds < 1:
            raise ValueError("rounds must be at least 1")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        from repro.contracts.riscv_template import TEMPLATE_REGISTRY

        self.core_name = core if isinstance(core, str) else core.name
        self.template_name = template if isinstance(template, str) else template.name
        self.attacker_name = attacker if isinstance(attacker, str) else attacker.name
        self.solver_name = solver if isinstance(solver, str) else solver.name
        self.core = CORE_REGISTRY.create(core) if isinstance(core, str) else core
        self.template = (
            TEMPLATE_REGISTRY.create(template)
            if isinstance(template, str)
            else template
        )
        self.attacker = (
            ATTACKER_REGISTRY.create(attacker)
            if isinstance(attacker, str)
            else attacker
        )
        self.solver = (
            SOLVER_REGISTRY.create(solver) if isinstance(solver, str) else solver
        )
        self.generator_name = (
            generator if isinstance(generator, str) else generator.name
        )
        self.strategy = (
            GENERATOR_REGISTRY.create(generator, self.template, seed=seed)
            if isinstance(generator, str)
            else generator
        )
        self.rounds = rounds
        self.batch = batch
        self.rules = resolve_stopping_rules(stop)
        self.seed = seed
        self.allowed_atom_ids = (
            frozenset(allowed_atom_ids) if allowed_atom_ids is not None else None
        )
        self.restriction = restriction
        self.use_fastpath = use_fastpath
        self.executor = executor
        self.processes = processes
        self.shard_size = shard_size
        self.manifest_path = manifest_path
        self.progress = progress
        #: Round-granularity retry policy; also forwarded to the
        #: executor path for shard-granularity retry within a round.
        self.retry = retry
        self.shard_timeout = shard_timeout
        self.failure_log_path = failure_log_path
        self.on_failure = on_failure
        #: Trace emitter: one ``round`` span per live round (with
        #: coverage/convergence end fields), one ``round-resumed``
        #: event per replayed round.  No-op when not configured.
        self.tracer = tracer if tracer is not None else Tracer(None)
        #: In-process evaluator, built lazily on the first evaluated round.
        self._evaluator: Optional[TestCaseEvaluator] = None
        if executor is not None and not (
            isinstance(core, str)
            and isinstance(template, str)
            and isinstance(attacker, str)
            and isinstance(generator, (str, type(None)))
        ):
            raise ValueError(
                "executor backends rebuild plugins by registry name inside "
                "each worker: configure core, template, attacker, and "
                "generator by name when fanning rounds out"
            )

    # -- identity ------------------------------------------------------

    def manifest_key(self) -> dict:
        """The round-manifest key: everything that changes a round's
        rows or steering.  The round budget is deliberately absent, so
        extending ``rounds`` resumes instead of restarting."""
        return {
            "core": self.core_name,
            "template": self.template_name,
            "template_digest": template_digest(self.template),
            "attacker": self.attacker_name,
            "seed": self.seed,
            "generator": self.generator_name,
            "batch": self.batch,
            # Fast modes are byte-identical; key on reference-vs-fast.
            "fastpath": bool(self.use_fastpath),
            "solver": self.solver_name,
            "restriction": self.restriction,
        }

    @property
    def targetable_atom_ids(self) -> frozenset:
        if self.allowed_atom_ids is not None:
            return self.allowed_atom_ids
        return frozenset(atom.atom_id for atom in self.template)

    # -- execution -----------------------------------------------------

    def run(self) -> AdaptiveResult:
        """Run rounds until a stopping rule fires or the budget ends."""
        synthesizer = ContractSynthesizer(self.template, self.solver)
        accumulator = _LoopAccumulator()
        records: List[RoundRecord] = []
        manifest = (
            AdaptiveManifest(self.manifest_path, self.manifest_key())
            if self.manifest_path is not None
            else None
        )
        stop_reason: Optional[str] = None
        synthesis: Optional[SynthesisResult] = None
        previous_contract: Optional[Tuple[int, ...]] = None

        if manifest is not None:
            for entry in manifest.stored_rounds():
                if len(records) >= self.rounds:
                    break
                round_index = int(entry["round"])
                results = self._entry_results(entry)
                accumulator.ingest(results)
                accumulator.contracts.append(tuple(entry["contract"]))
                # Convergence is re-decided by *this* run's rules over
                # the replayed state: a verdict persisted under a
                # different (or stricter) rule must not halt a resumed
                # run that was configured to keep going.
                stop_reason = self._check_stop(round_index, accumulator)
                self._resumed_false_positives = int(entry.get("fps", 0))
                record = self._record(
                    round_index,
                    int(entry["start_id"]),
                    len(results),
                    accumulator,
                    synthesis=None,
                    stop_reason=stop_reason,
                    resumed=True,
                    seconds=0.0,
                )
                records.append(record)
                previous_contract = record.contract_atom_ids
                self.tracer.event(
                    "round-resumed",
                    round=record.round_index,
                    cases=record.cases,
                    cumulative_cases=record.cumulative_cases,
                    atom_coverage=record.atom_coverage,
                    contract_size=record.contract_size,
                )
                self._emit(record)
                if stop_reason is not None:
                    break
            if records:
                last_entry = manifest.completed[records[-1].round_index]
                self.strategy.restore(last_entry["state"])

        for round_index in range(len(records), self.rounds):
            if stop_reason is not None:
                break
            started = time.perf_counter()
            start_id = round_index * self.batch
            round_span = self.tracer.span(
                "round", round=round_index, start_id=start_id
            )
            with round_span:
                state = self.strategy.state()
                round_results = self._evaluate_round_resilient(
                    round_index, start_id, state
                )
                self.strategy.observe(round_results)
                accumulator.ingest(round_results)
                synthesis = synthesizer.synthesize(
                    self._dataset(accumulator),
                    allowed_atom_ids=self.allowed_atom_ids,
                    warm_start=previous_contract,
                )
                contract_ids = tuple(sorted(synthesis.contract.atom_ids))
                accumulator.contracts.append(contract_ids)
                stop_reason = self._check_stop(round_index, accumulator)
                if stop_reason is None and round_index == self.rounds - 1:
                    stop_reason = "budget-exhausted"
                record = self._record(
                    round_index,
                    start_id,
                    len(round_results),
                    accumulator,
                    synthesis,
                    stop_reason,
                    resumed=False,
                    seconds=time.perf_counter() - started,
                )
                round_span.add(
                    cases=record.cases,
                    cumulative_cases=record.cumulative_cases,
                    covered_atoms=record.covered_atoms,
                    atom_coverage=record.atom_coverage,
                    contract_size=record.contract_size,
                    false_positives=record.false_positives,
                    warm_started=record.warm_started,
                    stop_reason=record.stop_reason,
                )
                metrics = current_metrics()
                metrics.counter("adaptive.rounds").inc()
                metrics.counter("adaptive.cases").inc(record.cases)
                metrics.gauge("adaptive.round.coverage").set(
                    round(record.atom_coverage, 6)
                )
                metrics.maybe_flush()
            records.append(record)
            previous_contract = contract_ids
            if manifest is not None:
                manifest.append_round(
                    round_index,
                    start_id,
                    [
                        (
                            result.test_id,
                            result.attacker_distinguishable,
                            tuple(sorted(result.distinguishing_atom_ids)),
                            result.targeted_atom_id,
                        )
                        for result in round_results
                    ],
                    self.strategy.state(),
                    contract_ids,
                    synthesis.false_positives,
                    # Only rule-based convergence persists: budget
                    # exhaustion is relative to *this* run's round
                    # budget, and an extended-rounds resume must be
                    # free to continue past it.
                    stop_reason if stop_reason != "budget-exhausted" else None,
                )
            self._emit(record)

        if synthesis is None:
            # Every round was resumed from the manifest: rebuild the
            # final synthesis from the accumulated dataset, warm-started
            # from the stored contract.
            synthesis = synthesizer.synthesize(
                self._dataset(accumulator),
                allowed_atom_ids=self.allowed_atom_ids,
                warm_start=previous_contract,
            )
        return AdaptiveResult(
            records=records,
            dataset=self._dataset(accumulator),
            synthesis=synthesis,
            stop_reason=stop_reason or "budget-exhausted",
            generator_name=self.generator_name,
            batch=self.batch,
            rounds_limit=self.rounds,
        )

    # -- internals -----------------------------------------------------

    def _evaluate_round_resilient(
        self, round_index: int, start_id: int, state: dict
    ) -> List[TestCaseResult]:
        """One round under the retry policy (round granularity).

        The strategy state snapshot is taken *before* the attempt and
        ``observe`` runs only after success, so a retried round
        regenerates exactly the cases the failed attempt would have —
        rounds stay deterministic under retry.  An exhausted round is
        recorded as a ``"round"`` failure and still raises: rounds are
        sequential (each steers the next), so there is no sound way to
        skip one.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                maybe_inject("round", round_index=round_index, attempt=attempt)
                return self._evaluate_round(start_id, state)
            except Exception as error:
                retryable = self.retry is not None and is_retryable(error)
                exhausted = (
                    self.retry is not None and attempt >= self.retry.max_attempts
                )
                record = FailureRecord(
                    kind="round" if (not retryable or exhausted) else "retry",
                    unit={"round": round_index, "start_id": start_id},
                    error=repr(error),
                    attempts=attempt,
                )
                self.tracer.event(
                    "failure",
                    failure=record.kind,
                    unit=record.unit,
                    error=record.error,
                    attempts=record.attempts,
                )
                if self.on_failure is not None:
                    self.on_failure(record)
                if not retryable or exhausted:
                    if record.kind == "round" and self.failure_log_path is not None:
                        FailureLog(
                            self.failure_log_path, self.manifest_key()
                        ).append_record(record)
                    raise
                delay = self.retry.delay(attempt)
                if delay > 0:
                    time.sleep(delay)

    def _evaluate_round(self, start_id: int, state: dict) -> List[TestCaseResult]:
        if self.executor is not None:
            from repro.evaluation.parallel import evaluate_parallel

            dataset = evaluate_parallel(
                self.core_name,
                self.batch,
                seed=self.seed,
                processes=self.processes,
                shard_size=self.shard_size,
                use_fastpath=self.use_fastpath,
                template_name=self.template_name,
                attacker_name=self.attacker_name,
                executor=self.executor,
                generator_name=self.generator_name,
                generator_state=json.dumps(state, sort_keys=True) if state else None,
                start_id=start_id,
                retry=self.retry,
                shard_timeout=self.shard_timeout,
                # No per-round failure-log file: the task identity (and
                # with it the log's binding key) changes every round as
                # the strategy state advances.  Durable round-level
                # records are written by the loop under its stable
                # manifest key instead.
                on_failure=self.on_failure,
                tracer=self.tracer,
            )
            return list(dataset)
        if self._evaluator is None:
            self._evaluator = TestCaseEvaluator(
                self.core,
                self.template,
                attacker=self.attacker,
                use_fastpath=self.use_fastpath,
            )
        return [
            self._evaluator.evaluate(case)
            for case in self.strategy.iter_generate(self.batch, start_id=start_id)
        ]

    def _dataset(self, accumulator: _LoopAccumulator) -> EvaluationDataset:
        return EvaluationDataset(
            accumulator.results,
            core_name=self.core_name,
            template_name=self.template_name,
            attacker_name=self.attacker_name,
        )

    def _check_stop(
        self, round_index: int, accumulator: _LoopAccumulator
    ) -> Optional[str]:
        state = AdaptiveState(
            round_index=round_index,
            contracts=tuple(accumulator.contracts),
            covered_atom_ids=frozenset(accumulator.atom_counts),
            targetable_atom_ids=self.targetable_atom_ids,
            cumulative_cases=len(accumulator.results),
            max_cases=self.rounds * self.batch,
        )
        for rule in self.rules:
            reason = rule.check(state)
            if reason is not None:
                return reason
        return None

    def _coverage(self, accumulator: _LoopAccumulator) -> Tuple[int, float]:
        targetable = self.targetable_atom_ids
        covered = frozenset(accumulator.atom_counts) & targetable
        fraction = len(covered) / len(targetable) if targetable else 1.0
        return len(covered), fraction

    def _record(
        self,
        round_index: int,
        start_id: int,
        cases: int,
        accumulator: _LoopAccumulator,
        synthesis: Optional[SynthesisResult],
        stop_reason: Optional[str],
        resumed: bool,
        seconds: float,
    ) -> RoundRecord:
        covered, fraction = self._coverage(accumulator)
        contract_ids = accumulator.contracts[-1]
        if synthesis is not None:
            false_positives = synthesis.false_positives
            warm_started = bool(synthesis.solver_result.stats.get("warm_start"))
        else:  # resumed round: diagnostics come from the stored entry
            false_positives = self._resumed_false_positives
            warm_started = False
        return RoundRecord(
            round_index=round_index,
            start_id=start_id,
            cases=cases,
            cumulative_cases=len(accumulator.results),
            distinguishable=accumulator.distinguishable,
            covered_atoms=covered,
            atom_coverage=fraction,
            contract_atom_ids=contract_ids,
            false_positives=false_positives,
            warm_started=warm_started,
            resumed=resumed,
            stop_reason=stop_reason,
            seconds=seconds,
        )

    @staticmethod
    def _entry_results(entry: dict) -> List[TestCaseResult]:
        """One stored round's rows as :class:`TestCaseResult` objects."""
        return [
            TestCaseResult(
                test_id=test_id,
                attacker_distinguishable=distinguishable,
                distinguishing_atom_ids=frozenset(atom_ids),
                targeted_atom_id=targeted,
            )
            for test_id, distinguishable, atom_ids, targeted in (
                AdaptiveManifest.entry_rows(entry)
            )
        ]

    def _emit(self, record: RoundRecord) -> None:
        if self.progress is not None:
            self.progress(record)
