"""Round-granularity checkpointing for the adaptive loop.

The adaptive sibling of the evaluation shard manifest and the campaign
cell manifest, on the same :class:`repro.checkpoint.JsonlCheckpoint`
mechanics: line 1 binds the file to the loop's identity, every further
line is one completed round — its evaluated rows, the strategy's
post-round feedback state, the synthesized contract, and the stop
reason (if any)::

    {"manifest": "adaptive-rounds", "version": 1, "key": {...}}
    {"round": 0, "start_id": 0, "rows": [...], "state": {...},
     "contract": [3, 17], "stop": null}

The key covers everything that changes a round's rows or steering
(core, template name *and* atom-list digest, attacker, seed, generator,
batch, extraction engine, solver, restriction) but deliberately not the
round budget: extending ``rounds`` resumes a finished-but-unconverged
loop instead of restarting it, exactly as the shard manifest serves an
extended test-case budget.

Rounds are reused as the longest contiguous prefix ``0..k`` present in
the file — a round is only meaningful on top of the state left by its
predecessor, so a gap invalidates everything after it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.checkpoint import CheckpointKeyError, JsonlCheckpoint
from repro.evaluation.backends.base import Row


class AdaptiveKeyError(CheckpointKeyError):
    """The manifest on disk belongs to a different adaptive loop."""


class AdaptiveManifest(JsonlCheckpoint):
    """An append-only JSONL checkpoint of completed adaptive rounds."""

    kind = "adaptive-rounds"
    description = "adaptive-round manifest"
    subject = "adaptive loop"
    hint = "pass a different --resume path"
    key_error = AdaptiveKeyError

    def __init__(self, path: str, key: dict):
        #: Stored round entries, keyed by round index.
        self.completed: Dict[int, dict] = {}
        super().__init__(path, key)

    # -- checkpoint payload --------------------------------------------

    def _accept(self, entry: dict) -> None:
        self.completed[int(entry["round"])] = entry

    def _entries(self):
        for round_index in sorted(self.completed):
            yield self.completed[round_index]

    def append_round(
        self,
        round_index: int,
        start_id: int,
        rows: Sequence[Row],
        state: dict,
        contract_atom_ids: Sequence[int],
        false_positives: int,
        stop_reason: Optional[str],
    ) -> None:
        """Checkpoint one completed round (flushed immediately)."""
        entry = {
            "round": round_index,
            "start_id": start_id,
            "rows": [list(row) for row in rows],
            "state": state,
            "contract": list(contract_atom_ids),
            "fps": false_positives,
            "stop": stop_reason,
        }
        self._append(entry)
        self.completed[round_index] = entry

    # -- plan intersection ---------------------------------------------

    def stored_rounds(self) -> List[dict]:
        """The longest contiguous round prefix ``0..k`` on disk, in
        round order (later rounds after a gap are unusable: each round's
        generation depends on the strategy state its predecessor left)."""
        rounds = []
        index = 0
        while index in self.completed:
            rounds.append(self.completed[index])
            index += 1
        return rounds

    @staticmethod
    def entry_rows(entry: dict) -> List[Row]:
        """One stored round's rows in the executor ``Row`` shape."""
        return [
            (row[0], bool(row[1]), tuple(row[2]), row[3]) for row in entry["rows"]
        ]

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AdaptiveManifest(%s, %d rounds)" % (self.path, len(self.completed))
