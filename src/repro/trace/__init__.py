"""Unified observability: structured JSONL trace spans for every layer.

``repro.trace`` is the one tracing surface of the toolchain.  The
:class:`Tracer` (promoted from the old ``repro.service.trace``, which
remains as a deprecated re-export shim) appends events and
``start_ts``-carrying spans to a single shared JSONL file; pipeline
phases, executor shards, campaign cells, adaptive rounds, and service
job/request transitions all emit into it.  :mod:`repro.trace.metrics`
folds a trace file into summary tables, and :mod:`repro.trace.watch`
tails it as a live progress view (``repro-synthesize watch``).
"""

from repro.trace.metrics import (
    SpanGroupSummary,
    TraceMetrics,
    fold,
    fold_file,
    iter_trace,
    read_trace,
    span_group,
)
from repro.trace.tracer import (
    Tracer,
    current_tracer,
    install_tracer,
    profile_step,
    trace_step,
)
from repro.trace.watch import TraceTail, TraceWatch, render_once, watch

__all__ = [
    "SpanGroupSummary",
    "TraceMetrics",
    "TraceTail",
    "TraceWatch",
    "Tracer",
    "current_tracer",
    "fold",
    "fold_file",
    "install_tracer",
    "iter_trace",
    "profile_step",
    "read_trace",
    "render_once",
    "span_group",
    "trace_step",
    "watch",
]
