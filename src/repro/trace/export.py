"""Chrome-trace / Perfetto export of a span stream.

``repro trace export --format chrome`` converts a trace file into the
Trace Event JSON format (``{"traceEvents": [...]}``) that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

- completed span records become complete (``"ph": "X"``) duration
  events — nesting falls out of the timestamps, so pipeline > phase >
  shard and campaign > cell structure renders as stacked slices;
- instantaneous events become ``"ph": "i"`` instants on their thread;
- metric snapshots become ``"ph": "C"`` counter tracks (gauges and
  counters both — cumulative counters render as monotone staircases);
- every process and ``(pid, source)`` lane gets ``"M"`` metadata
  naming it, so the broker, pool workers, and service workers appear
  as separately named rows.

``pid`` is the real OS pid from the records; ``tid`` is a stable
small integer assigned per ``(pid, source)`` in first-seen order —
child tracers (``campaign``, ``adaptive``, ``worker-N``...) each get
their own lane inside their process.  Timestamps are rebased to the
earliest record and scaled to microseconds, the format's unit.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.metrics import iter_trace, span_group


def _number(value, default=0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


#: Span payload keys that make useful ``args`` in the viewer.
_ARG_KEYS = (
    "phase",
    "cell",
    "round",
    "start_id",
    "count",
    "job",
    "request",
    "executor",
    "cases",
    "atoms",
    "atom_coverage",
    "cache_hit",
    "ok",
)


def chrome_trace_events(records: Iterable[dict]) -> List[dict]:
    """The Trace Event list for a record stream (one pass)."""
    events: List[dict] = []
    lanes: Dict[Tuple[int, str], int] = {}
    pids_named: Dict[int, bool] = {}
    base_ts: Optional[float] = None

    def lane(pid: int, source: str) -> int:
        key = (pid, source)
        tid = lanes.get(key)
        if tid is None:
            tid = lanes[key] = len(lanes) + 1
            if pid not in pids_named:
                pids_named[pid] = True
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": "repro pid %s" % pid},
                    }
                )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": source or "main"},
                }
            )
        return tid

    def micros(ts: float) -> float:
        return round((ts - base_ts) * 1e6, 3)

    for record in records:
        pid = record.get("pid", 0)
        source = str(record.get("source", ""))
        ts = _number(record.get("ts"))
        start_ts = record.get("start_ts")
        if base_ts is None:
            base_ts = _number(start_ts, ts) if start_ts is not None else ts
            base_ts = min(base_ts, ts)
        if record.get("kind") == "metric" and start_ts is None:
            tid = lane(pid, source)
            tracks = dict(record.get("gauges") or {})
            tracks.update(record.get("counters") or {})
            for name, value in tracks.items():
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "metric",
                        "ts": micros(ts),
                        "pid": pid,
                        "tid": tid,
                        "args": {"value": _number(value)},
                    }
                )
        elif start_ts is not None and "seconds" in record:
            # A completed span: one self-contained duration slice.
            args = {
                key: record[key] for key in _ARG_KEYS if key in record
            }
            events.append(
                {
                    "ph": "X",
                    "name": span_group(record),
                    "cat": str(record.get("kind", "span")),
                    "ts": micros(_number(start_ts)),
                    "dur": round(_number(record.get("seconds")) * 1e6, 3),
                    "pid": pid,
                    "tid": lane(pid, source),
                    "args": args,
                }
            )
        elif start_ts is None:
            events.append(
                {
                    "ph": "i",
                    "name": str(record.get("kind", "event")),
                    "cat": "event",
                    "ts": micros(ts),
                    "pid": pid,
                    "tid": lane(pid, source),
                    "s": "t",
                    "args": {
                        key: record[key] for key in _ARG_KEYS if key in record
                    },
                }
            )
        # Span begin records are dropped: their slice is emitted in
        # full by the matching end record; an end that never arrives
        # (crashed writer) has no known duration to draw.
    return events


def export_chrome(trace_path: str, output_path: str) -> dict:
    """Write the Chrome-trace document for ``trace_path``; returns it.

    The document is the object form (``traceEvents`` + metadata), the
    shape both ``chrome://tracing`` and Perfetto accept.
    """
    document = {
        "traceEvents": chrome_trace_events(iter_trace(trace_path)),
        "displayTimeUnit": "ms",
        "otherData": {"source": trace_path, "exporter": "repro trace export"},
    }
    with open(output_path, "w", encoding="utf-8") as stream:
        json.dump(document, stream)
        stream.write("\n")
    return document


__all__ = ["chrome_trace_events", "export_chrome"]
