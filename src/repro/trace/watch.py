"""The live trace view: tail one trace file, render progress.

``repro-synthesize watch --trace PATH`` drives this module: a
:class:`TraceTail` incrementally reads new records from the shared
JSONL trace file (buffering a torn final line until its writer finishes
the append), a :class:`TraceWatch` folds them into live state, and
:func:`render` draws one frame — campaign cell progress, adaptive
rounds, queue depth, worker heartbeats, and in-flight spans.

Everything is derived from the trace file alone: the same view works
for a serial pipeline run, a campaign, and the distributed service,
because all three emit the one span schema of :mod:`repro.trace`.
"""

from __future__ import annotations

import json
import sys
import time as _time
from typing import Dict, List, Optional, Tuple

#: Matching a span end record to its begin record across interleaved
#: multi-process files.
SpanKey = Tuple[int, str, str, float]

#: Event kinds that prove a worker process is alive.
_WORKER_KINDS = (
    "worker-start",
    "heartbeat",
    "claim",
    "done",
    "failed",
    "worker-exit",
    "worker-shutdown",
    "worker-idle-exit",
    "worker-job-limit",
)


class TraceTail:
    """Incremental reader over an append-only JSONL trace file.

    Keeps a byte offset and a partial-line buffer: a read that ends
    mid-line (a writer is inside its append) holds the fragment until
    the terminating newline arrives, so records are never half-parsed.
    A file smaller than the last-seen offset means the trace was
    truncated or replaced (a restarted run rewriting its path); the
    tail resets and re-reads from the top instead of sticking at the
    stale offset.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._buffer = ""

    def poll(self) -> List[dict]:
        """Every complete new record since the last poll."""
        try:
            with open(self.path) as stream:
                stream.seek(0, 2)
                if stream.tell() < self._offset:
                    # Truncated/replaced underneath us: start over.
                    self._offset = 0
                    self._buffer = ""
                stream.seek(self._offset)
                chunk = stream.read()
                self._offset = stream.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        data = self._buffer + chunk
        lines = data.split("\n")
        self._buffer = lines.pop()  # "" after a complete final line
        records = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


class TraceWatch:
    """Fold trace records into the live progress state."""

    def __init__(self):
        self.records = 0
        self.campaign_name: Optional[str] = None
        self.cells_total = 0
        self.cells_done = 0
        self.cells_resumed = 0
        self.cells_failed = 0
        self.last_cell: Optional[dict] = None
        self.last_round: Optional[dict] = None
        self.last_phase: Optional[dict] = None
        self.jobs_enqueued = 0
        self.jobs_new = 0
        self.claims = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.requeues = 0
        self.shards_done = 0
        self.shards_resumed = 0
        self.failures = 0
        self.requests_seen = 0
        self.tickets = 0
        #: job id -> status ("running" after claim, gone when finished).
        self.running_jobs: Dict[str, str] = {}
        #: worker id -> {"ts", "completed", "failed", "exited"}.
        self.workers: Dict[str, dict] = {}
        #: begin records with no matching end yet.
        self.in_flight: Dict[SpanKey, dict] = {}

    # -- ingestion -----------------------------------------------------

    def feed(self, record: dict) -> None:
        self.records += 1
        kind = record.get("kind", "")
        if "start_ts" in record:
            key = self._span_key(record)
            if "seconds" in record:
                self.in_flight.pop(key, None)
                self._completed_span(kind, record)
            else:
                self.in_flight[key] = record
            if kind in _WORKER_KINDS or kind == "execute":
                self._touch_worker(record)
            return
        self._event(kind, record)

    def feed_all(self, records: List[dict]) -> None:
        for record in records:
            self.feed(record)

    @staticmethod
    def _span_key(record: dict) -> SpanKey:
        return (
            int(record.get("pid", 0)),
            str(record.get("source", "")),
            str(record.get("kind", "")),
            float(record.get("start_ts", 0.0)),
        )

    def _completed_span(self, kind: str, record: dict) -> None:
        if kind == "cell":
            if record.get("ok", True):
                self.cells_done += 1
            else:
                self.cells_failed += 1
            self.last_cell = record
        elif kind == "round":
            self.last_round = record
        elif kind in ("phase", "pipeline"):
            self.last_phase = record
        elif kind == "shard":
            self.shards_done += 1
        elif kind == "execute":
            job = record.get("job")
            if job is not None:
                self.running_jobs.pop(str(job), None)

    def _event(self, kind: str, record: dict) -> None:
        if kind == "campaign-start":
            self.campaign_name = record.get("campaign")
            self.cells_total = int(record.get("cells", 0))
        elif kind == "cell-resumed":
            self.cells_resumed += 1
        elif kind == "round-resumed":
            self.last_round = record
        elif kind == "shard-resumed":
            self.shards_resumed += 1
        elif kind == "enqueue":
            self.jobs_enqueued += int(record.get("jobs", 0))
            self.jobs_new += int(record.get("new", 0))
        elif kind == "claim":
            self.claims += 1
            job = record.get("job")
            if job is not None:
                self.running_jobs[str(job)] = "running"
        elif kind == "done":
            self.jobs_done += 1
            self.running_jobs.pop(str(record.get("job")), None)
        elif kind == "failed":
            self.jobs_failed += 1
            self.running_jobs.pop(str(record.get("job")), None)
        elif kind == "requeue":
            self.requeues += 1
            self.running_jobs.pop(str(record.get("job")), None)
        elif kind == "failure":
            self.failures += 1
        elif kind in ("request", "submit"):
            self.requests_seen += 1
        elif kind == "ticket":
            self.tickets += 1
        if kind in _WORKER_KINDS:
            self._touch_worker(record)

    def _touch_worker(self, record: dict) -> None:
        worker = record.get("worker") or record.get("source")
        if not worker:
            return
        state = self.workers.setdefault(
            str(worker), {"ts": 0.0, "completed": 0, "failed": 0, "exited": False}
        )
        state["ts"] = max(state["ts"], float(record.get("ts", 0.0)))
        kind = record.get("kind")
        if kind == "done":
            state["completed"] += 1
        elif kind == "failed":
            state["failed"] += 1
        elif kind == "heartbeat":
            # Heartbeats carry authoritative cumulative counters.
            state["completed"] = max(
                state["completed"], int(record.get("completed", 0))
            )
            state["failed"] = max(state["failed"], int(record.get("failed", 0)))
        elif kind in ("worker-exit", "worker-shutdown", "worker-idle-exit"):
            state["exited"] = True

    # -- rendering -----------------------------------------------------

    def render(self, path: str = "", now: Optional[float] = None) -> str:
        if now is None:
            now = _time.time()
        lines = [
            "watch %s— %d records, %d in-flight span(s)"
            % ("%s " % path if path else "", self.records, len(self.in_flight))
        ]
        if (
            self.campaign_name is not None
            or self.cells_done
            or self.cells_resumed
            or self.cells_failed
        ):
            total = self.cells_total or "?"
            lines.append(
                "campaign %s: %d/%s cells done (%d resumed, %d failed)"
                % (
                    self.campaign_name or "?",
                    self.cells_done + self.cells_resumed,
                    total,
                    self.cells_resumed,
                    self.cells_failed,
                )
            )
            if self.last_cell is not None:
                lines.append(
                    "  last cell: %s (%.3fs%s)"
                    % (
                        self.last_cell.get("cell", "?"),
                        float(self.last_cell.get("seconds", 0.0)),
                        "" if self.last_cell.get("ok", True) else ", FAILED",
                    )
                )
        if self.last_round is not None:
            lines.append(
                "adaptive: round %s — %s cases, %.1f%% coverage, "
                "%s-atom contract%s"
                % (
                    self.last_round.get("round", "?"),
                    self.last_round.get("cumulative_cases", "?"),
                    100.0 * float(self.last_round.get("atom_coverage", 0.0)),
                    self.last_round.get("contract_size", "?"),
                    " [%s]" % self.last_round["stop_reason"]
                    if self.last_round.get("stop_reason")
                    else "",
                )
            )
        if self.jobs_enqueued or self.claims or self.jobs_done:
            lines.append(
                "queue: %d job(s) enqueued (%d new), %d claimed, %d done, "
                "%d failed, %d requeued — %d running"
                % (
                    self.jobs_enqueued,
                    self.jobs_new,
                    self.claims,
                    self.jobs_done,
                    self.jobs_failed,
                    self.requeues,
                    len(self.running_jobs),
                )
            )
        if self.shards_done or self.shards_resumed:
            lines.append(
                "shards: %d evaluated, %d resumed"
                % (self.shards_done, self.shards_resumed)
            )
        if self.requests_seen or self.tickets:
            lines.append(
                "service: %d request(s) seen, %d ticket(s) issued"
                % (self.requests_seen, self.tickets)
            )
        if self.workers:
            live = [
                worker
                for worker, state in self.workers.items()
                if not state["exited"]
            ]
            parts = []
            for worker in sorted(self.workers):
                state = self.workers[worker]
                parts.append(
                    "%s %s (%d done)"
                    % (
                        worker,
                        "exited"
                        if state["exited"]
                        else "%.1fs ago" % max(0.0, now - state["ts"]),
                        state["completed"],
                    )
                )
            lines.append(
                "workers: %d live — %s" % (len(live), ", ".join(parts))
            )
        if self.failures:
            lines.append("failures: %d (retries/timeouts/quarantines)" % self.failures)
        for key in sorted(self.in_flight):
            record = self.in_flight[key]
            detail = []
            for field in ("phase", "cell", "round", "start_id", "job", "request"):
                if field in record:
                    detail.append("%s=%s" % (field, record[field]))
            lines.append(
                "  in-flight: %s%s %s(%.1fs)"
                % (
                    record.get("kind", "?"),
                    " [%s]" % record["source"] if record.get("source") else "",
                    "%s " % " ".join(detail) if detail else "",
                    max(0.0, now - float(record.get("start_ts", now))),
                )
            )
        if self.last_phase is not None:
            lines.append(
                "last phase: %s %.3fs %s"
                % (
                    self.last_phase.get("phase", self.last_phase.get("kind", "?")),
                    float(self.last_phase.get("seconds", 0.0)),
                    "ok" if self.last_phase.get("ok", True) else "FAILED",
                )
            )
        return "\n".join(lines)


def render_once(path: str, now: Optional[float] = None) -> str:
    """One frame over the file's current contents (``watch --once``)."""
    watch_state = TraceWatch()
    watch_state.feed_all(TraceTail(path).poll())
    return watch_state.render(path, now=now)


def watch(
    path: str,
    interval: float = 1.0,
    once: bool = False,
    stream=None,
    max_frames: Optional[int] = None,
) -> int:
    """Tail ``path`` and redraw the live view every ``interval``
    seconds until interrupted (``once`` renders a single frame;
    ``max_frames`` bounds the loop for tests)."""
    stream = stream if stream is not None else sys.stdout
    tail = TraceTail(path)
    state = TraceWatch()
    frames = 0
    clear = not once and getattr(stream, "isatty", lambda: False)()
    try:
        while True:
            state.feed_all(tail.poll())
            frame = state.render(path)
            if clear:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
            frames += 1
            if once or (max_frames is not None and frames >= max_frames):
                return 0
            _time.sleep(interval)
    except KeyboardInterrupt:
        return 0
