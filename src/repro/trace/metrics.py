"""Fold a trace file into per-phase / per-cell / per-round summaries.

:func:`iter_trace` is the tolerant reader shared by metrics and
``watch``: it yields records one line at a time and skips blank and
unparseable lines instead of raising, because a live multi-writer
trace file legitimately ends in a torn line while a writer is
mid-append (readers recover; the next append repairs the boundary —
see :func:`repro.checkpoint.append_jsonl_line`).  :func:`read_trace`
is the materialized form for callers that want a list.

:func:`fold` aggregates the stream **incrementally**: span-group
summaries, per-cell and per-round detail, a bounded slowest-spans
heap, and the run's metric snapshots
(:class:`repro.metrics.fold.MetricsAggregate`) are all maintained
record by record, so folding a million-span service trace with
``keep_records=False`` holds only the aggregates resident — the raw
record lists are an opt-in convenience (kept by default, which the
``repro trace`` summary view uses for its slowest/detail tables over
small files).

Unknown record shapes pass through untouched: anything that is not a
completed span (``seconds``), a span begin (``start_ts`` alone), or a
``metric`` snapshot counts as an event — old readers stay correct as
the wire format grows.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.metrics.fold import MetricsAggregate, is_metric_record
from repro.reporting.tables import render_comparison_table

#: How many slowest spans the fold keeps, regardless of trace size.
_SLOWEST_KEPT = 64


def iter_trace(path: str) -> Iterator[dict]:
    """Every parseable record of a trace file, streamed in file order
    (a missing file yields nothing, like an empty trace)."""
    try:
        stream = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with stream:
        for line in stream:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn or in-flight line: skip, never raise
            if isinstance(record, dict):
                yield record


def read_trace(path: str) -> List[dict]:
    """Every parseable record of a trace file, as a list."""
    return list(iter_trace(path))


def span_group(record: dict) -> str:
    """The summary group of one span record: pipeline phases split by
    phase name, everything else by its ``kind``."""
    kind = record.get("kind", "?")
    if kind == "phase" and record.get("phase"):
        return "phase:%s" % record["phase"]
    return str(kind)


@dataclass
class SpanGroupSummary:
    """Aggregate of one span group (``phase:evaluate``, ``shard``...)."""

    group: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    failed: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def ingest(self, record: dict) -> None:
        seconds = float(record.get("seconds", 0.0))
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        if record.get("ok") is False:
            self.failed += 1


@dataclass
class TraceMetrics:
    """Everything :func:`fold` derived from one record stream.

    The count fields and aggregate tables are always maintained; the
    ``records``/``spans``/``events`` lists fill only when the fold ran
    with ``keep_records=True`` (the default).
    """

    record_count: int = 0
    span_count: int = 0
    event_count: int = 0
    #: ``metric`` registry snapshots folded into :attr:`metrics`.
    metric_count: int = 0
    records: List[dict] = field(default_factory=list)
    #: Completed span records (the ones carrying ``seconds``).
    spans: List[dict] = field(default_factory=list)
    #: Instantaneous events (no ``start_ts``).
    events: List[dict] = field(default_factory=list)
    summaries: Dict[str, SpanGroupSummary] = field(default_factory=dict)
    #: Counters/gauges/histograms merged across processes.
    metrics: MetricsAggregate = field(default_factory=MetricsAggregate)
    _cells: List[dict] = field(default_factory=list)
    _rounds: List[dict] = field(default_factory=list)
    _slowest: List[Tuple[float, int, dict]] = field(default_factory=list)

    def summary(self, group: str) -> Optional[SpanGroupSummary]:
        return self.summaries.get(group)

    def slowest(self, limit: int = 10) -> List[dict]:
        """The ``limit`` slowest completed spans, slowest first (from
        the fold's bounded top-``64`` heap)."""
        ranked = sorted(self._slowest, key=lambda entry: (-entry[0], entry[1]))
        return [record for _, _, record in ranked[:limit]]

    def cells(self) -> List[dict]:
        return list(self._cells)

    def rounds(self) -> List[dict]:
        return list(self._rounds)

    # -- incremental ingestion -----------------------------------------

    def ingest(self, record: dict, keep_records: bool = True) -> None:
        """Fold one record into the aggregates."""
        self.record_count += 1
        if keep_records:
            self.records.append(record)
        if is_metric_record(record):
            self.metric_count += 1
            self.metrics.ingest(record)
        elif "start_ts" not in record:
            # Events may carry a ``seconds`` payload field (e.g.
            # ``campaign-end``); only ``start_ts`` marks a span record.
            self.event_count += 1
            if keep_records:
                self.events.append(record)
        elif "seconds" in record:
            self.span_count += 1
            if keep_records:
                self.spans.append(record)
            group = span_group(record)
            summary = self.summaries.get(group)
            if summary is None:
                summary = self.summaries[group] = SpanGroupSummary(group)
            summary.ingest(record)
            kind = record.get("kind")
            if kind == "cell":
                self._cells.append(record)
            elif kind == "round":
                self._rounds.append(record)
            entry = (float(record.get("seconds", 0.0)), self.span_count, record)
            if len(self._slowest) < _SLOWEST_KEPT:
                heapq.heappush(self._slowest, entry)
            else:
                heapq.heappushpop(self._slowest, entry)
        # begin records (start_ts, no seconds) count as neither: their
        # span lands via the matching end record.

    # -- rendering -----------------------------------------------------

    def render(self, slowest: int = 10) -> str:
        sections = [self._render_summary()]
        if self._cells:
            sections.append(self._render_cells())
        if self._rounds:
            sections.append(self._render_rounds())
        if self.span_count:
            sections.append(self._render_slowest(slowest))
        if self.metric_count:
            sections.extend(self._render_metrics())
        return "\n\n".join(sections)

    def _render_summary(self) -> str:
        rows = []
        for group in sorted(self.summaries):
            summary = self.summaries[group]
            rows.append(
                [
                    group,
                    str(summary.count),
                    "%.3f" % summary.total_seconds,
                    "%.3f" % summary.mean_seconds,
                    "%.3f" % summary.max_seconds,
                    str(summary.failed),
                ]
            )
        if not rows:
            rows = [["-", "0", "-", "-", "-", "0"]]
        return render_comparison_table(
            ["span", "count", "total s", "mean s", "max s", "failed"],
            rows,
            title="Trace summary: %d records (%d spans, %d events)"
            % (self.record_count, self.span_count, self.event_count),
        )

    def _render_cells(self) -> str:
        rows = [
            [
                str(record.get("cell", "?")),
                "%.3f" % float(record.get("seconds", 0.0)),
                "ok" if record.get("ok", True) else "FAILED",
                str(record.get("atoms", "-")),
            ]
            for record in self._cells
        ]
        return render_comparison_table(
            ["cell", "seconds", "status", "atoms"], rows, title="Campaign cells"
        )

    def _render_rounds(self) -> str:
        rows = [
            [
                str(record.get("round", "?")),
                str(record.get("cumulative_cases", "-")),
                "%.1f%%" % (100.0 * float(record.get("atom_coverage", 0.0))),
                str(record.get("contract_size", "-")),
                "%.3f" % float(record.get("seconds", 0.0)),
                str(record.get("stop_reason") or "-"),
            ]
            for record in self._rounds
        ]
        return render_comparison_table(
            ["round", "cases", "coverage", "atoms", "seconds", "stop"],
            rows,
            title="Adaptive rounds",
        )

    def _render_slowest(self, limit: int) -> str:
        rows = []
        for record in self.slowest(limit):
            detail = []
            for key in ("phase", "cell", "round", "start_id", "job", "request"):
                if key in record:
                    detail.append("%s=%s" % (key, record[key]))
            rows.append(
                [
                    span_group(record),
                    str(record.get("source", "-")),
                    " ".join(detail) or "-",
                    "%.3f" % float(record.get("seconds", 0.0)),
                ]
            )
        return render_comparison_table(
            ["span", "source", "detail", "seconds"],
            rows,
            title="Slowest spans",
        )

    def _render_metrics(self) -> List[str]:
        sections = []
        counters = self.metrics.counters()
        if counters:
            rows = [
                [name, "%g" % counters[name]] for name in sorted(counters)
            ]
            sections.append(
                render_comparison_table(
                    ["counter", "total"], rows, title="Counters"
                )
            )
        gauges = self.metrics.gauges()
        if gauges:
            rows = [
                [
                    name,
                    "%g" % gauges[name].last,
                    "%g" % gauges[name].min,
                    "%g" % gauges[name].max,
                ]
                for name in sorted(gauges)
            ]
            sections.append(
                render_comparison_table(
                    ["gauge", "last", "min", "max"], rows, title="Gauges"
                )
            )
        histograms = self.metrics.histograms()
        if histograms:
            rows = []
            for name in sorted(histograms):
                summary = histograms[name]
                rows.append(
                    [
                        name,
                        str(summary.count),
                        "%g" % summary.mean,
                        "%g" % summary.percentile(0.5),
                        "%g" % summary.percentile(0.9),
                        "%g" % summary.percentile(0.99),
                        "%g" % summary.max,
                    ]
                )
            sections.append(
                render_comparison_table(
                    ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                    rows,
                    title="Histograms",
                )
            )
        return sections


def fold(records: Iterable[dict], keep_records: bool = True) -> TraceMetrics:
    """Aggregate a record stream into :class:`TraceMetrics` (a single
    streaming pass; with ``keep_records=False`` only bounded
    aggregates are retained)."""
    metrics = TraceMetrics()
    for record in records:
        metrics.ingest(record, keep_records=keep_records)
    return metrics


def fold_file(path: str, keep_records: bool = True) -> TraceMetrics:
    """:func:`fold` over :func:`iter_trace` — the file is never
    materialized as a whole."""
    return fold(iter_trace(path), keep_records=keep_records)
