"""Fold a trace file into per-phase / per-cell / per-round summaries.

:func:`read_trace` is the tolerant reader shared by metrics and
``watch``: it skips blank and unparseable lines instead of raising,
because a live multi-writer trace file legitimately ends in a torn
line while a writer is mid-append (readers recover; the next append
repairs the boundary — see :func:`repro.checkpoint.append_jsonl_line`).

:func:`fold` aggregates completed span records (the ones carrying
``seconds``) into :class:`TraceMetrics`: count/total/mean/max per span
group, per-cell and per-round detail tables, and a slowest-spans
table — the offline complement to the live ``watch`` view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.reporting.tables import render_comparison_table


def read_trace(path: str) -> List[dict]:
    """Every parseable record of a trace file, in file order."""
    try:
        with open(path) as stream:
            content = stream.read()
    except FileNotFoundError:
        return []
    records = []
    for line in content.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn or in-flight line: skip, never raise
        if isinstance(record, dict):
            records.append(record)
    return records


def span_group(record: dict) -> str:
    """The summary group of one span record: pipeline phases split by
    phase name, everything else by its ``kind``."""
    kind = record.get("kind", "?")
    if kind == "phase" and record.get("phase"):
        return "phase:%s" % record["phase"]
    return str(kind)


@dataclass
class SpanGroupSummary:
    """Aggregate of one span group (``phase:evaluate``, ``shard``...)."""

    group: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    failed: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def ingest(self, record: dict) -> None:
        seconds = float(record.get("seconds", 0.0))
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)
        if record.get("ok") is False:
            self.failed += 1


@dataclass
class TraceMetrics:
    """Everything :func:`fold` derived from one record stream."""

    records: List[dict] = field(default_factory=list)
    #: Completed span records (the ones carrying ``seconds``).
    spans: List[dict] = field(default_factory=list)
    #: Instantaneous events (no ``start_ts``).
    events: List[dict] = field(default_factory=list)
    summaries: Dict[str, SpanGroupSummary] = field(default_factory=dict)

    def summary(self, group: str) -> Optional[SpanGroupSummary]:
        return self.summaries.get(group)

    def slowest(self, limit: int = 10) -> List[dict]:
        """The ``limit`` slowest completed spans, slowest first."""
        ranked = sorted(
            self.spans, key=lambda record: record.get("seconds", 0.0), reverse=True
        )
        return ranked[:limit]

    def cells(self) -> List[dict]:
        return [record for record in self.spans if record.get("kind") == "cell"]

    def rounds(self) -> List[dict]:
        return [record for record in self.spans if record.get("kind") == "round"]

    # -- rendering -----------------------------------------------------

    def render(self, slowest: int = 10) -> str:
        sections = [self._render_summary()]
        if self.cells():
            sections.append(self._render_cells())
        if self.rounds():
            sections.append(self._render_rounds())
        if self.spans:
            sections.append(self._render_slowest(slowest))
        return "\n\n".join(sections)

    def _render_summary(self) -> str:
        rows = []
        for group in sorted(self.summaries):
            summary = self.summaries[group]
            rows.append(
                [
                    group,
                    str(summary.count),
                    "%.3f" % summary.total_seconds,
                    "%.3f" % summary.mean_seconds,
                    "%.3f" % summary.max_seconds,
                    str(summary.failed),
                ]
            )
        if not rows:
            rows = [["-", "0", "-", "-", "-", "0"]]
        return render_comparison_table(
            ["span", "count", "total s", "mean s", "max s", "failed"],
            rows,
            title="Trace summary: %d records (%d spans, %d events)"
            % (len(self.records), len(self.spans), len(self.events)),
        )

    def _render_cells(self) -> str:
        rows = [
            [
                str(record.get("cell", "?")),
                "%.3f" % float(record.get("seconds", 0.0)),
                "ok" if record.get("ok", True) else "FAILED",
                str(record.get("atoms", "-")),
            ]
            for record in self.cells()
        ]
        return render_comparison_table(
            ["cell", "seconds", "status", "atoms"], rows, title="Campaign cells"
        )

    def _render_rounds(self) -> str:
        rows = [
            [
                str(record.get("round", "?")),
                str(record.get("cumulative_cases", "-")),
                "%.1f%%" % (100.0 * float(record.get("atom_coverage", 0.0))),
                str(record.get("contract_size", "-")),
                "%.3f" % float(record.get("seconds", 0.0)),
                str(record.get("stop_reason") or "-"),
            ]
            for record in self.rounds()
        ]
        return render_comparison_table(
            ["round", "cases", "coverage", "atoms", "seconds", "stop"],
            rows,
            title="Adaptive rounds",
        )

    def _render_slowest(self, limit: int) -> str:
        rows = []
        for record in self.slowest(limit):
            detail = []
            for key in ("phase", "cell", "round", "start_id", "job", "request"):
                if key in record:
                    detail.append("%s=%s" % (key, record[key]))
            rows.append(
                [
                    span_group(record),
                    str(record.get("source", "-")),
                    " ".join(detail) or "-",
                    "%.3f" % float(record.get("seconds", 0.0)),
                ]
            )
        return render_comparison_table(
            ["span", "source", "detail", "seconds"],
            rows,
            title="Slowest spans",
        )


def fold(records: Iterable[dict]) -> TraceMetrics:
    """Aggregate a record stream into :class:`TraceMetrics`."""
    metrics = TraceMetrics()
    for record in records:
        metrics.records.append(record)
        if "start_ts" not in record:
            # Events may carry a ``seconds`` payload field (e.g.
            # ``campaign-end``); only ``start_ts`` marks a span record.
            metrics.events.append(record)
        elif "seconds" in record:
            metrics.spans.append(record)
            group = span_group(record)
            summary = metrics.summaries.get(group)
            if summary is None:
                summary = metrics.summaries[group] = SpanGroupSummary(group)
            summary.ingest(record)
        # begin records (start_ts, no seconds) count as neither: their
        # span lands via the matching end record.
    return metrics


def fold_file(path: str) -> TraceMetrics:
    """:func:`fold` over :func:`read_trace`."""
    return fold(read_trace(path))
