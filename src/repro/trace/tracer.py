"""Structured JSONL trace spans shared by every layer of the toolchain.

One span schema covers the whole system: pipeline phases, executor
shard attempts, campaign cells, adaptive rounds, and service job and
request transitions all append records to one shared trace file, so a
single tail of that file reconstructs a serial run, a campaign, or the
distributed service alike (``repro-synthesize watch``).

The idiom follows the OpenEvent-AI workflow exemplar
(``@trace_step``/``@profile_step`` decorators emitting per-step JSONL
records), adapted to multi-process appenders: lines go out through
:func:`repro.checkpoint.append_jsonl_line` — a single flock-serialized
``O_APPEND`` write — so brokers, pool workers, and independent worker
processes can interleave in one file without tearing lines.

Three record shapes, discriminated by their fields::

    {"ts": t, "pid": p, "kind": k, ...}                      # event
    {"ts": t0, "start_ts": t0, "pid": p, "kind": k, ...}     # span begin
    {"ts": t1, "start_ts": t0, "seconds": s, "ok": b, ...}   # span end

Every span record carries ``start_ts``: the begin record announces
in-flight work (what ``watch`` shows as running), and the end record's
duration survives reordering in interleaved multi-process files —
matching end to begin is ``(pid, source, kind, start_ts)``.

A :class:`Tracer` built with ``path=None`` (and no collector) is a
no-op whose hot path allocates nothing — ``span()`` returns a shared
singleton and ``event()`` returns before building a record — so call
sites never guard on tracing being configured.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Callable, List, Optional

from repro.checkpoint import append_jsonl_line


class _NullSpan:
    """The shared no-op span: entering, exiting, and adding fields all
    do nothing.  A singleton, so a disabled tracer's ``span()`` call
    allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **fields) -> None:
        """Ignore late-bound fields (the span is disabled)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: emits a begin record on entry and an end record
    (``seconds``, ``ok``) on exit, both carrying ``start_ts``.

    Fields added via :meth:`add` *after* entry travel on the end record
    only — the idiom for outcomes that are unknown up front (cache
    hits, shard statistics, contract sizes).
    """

    __slots__ = ("_tracer", "kind", "fields", "start_ts", "_start_perf")

    def __init__(self, tracer: "Tracer", kind: str, fields: dict):
        self._tracer = tracer
        self.kind = kind
        self.fields = fields
        self.start_ts: Optional[float] = None
        self._start_perf: Optional[float] = None

    def add(self, **fields) -> None:
        """Attach fields to the span's end record."""
        self.fields.update(fields)

    def __enter__(self) -> "_Span":
        self.start_ts = time.time()
        self._start_perf = time.perf_counter()
        record = {
            "ts": self.start_ts,
            "start_ts": self.start_ts,
            "pid": os.getpid(),
            "kind": self.kind,
        }
        if self._tracer.source:
            record["source"] = self._tracer.source
        record.update(self.fields)
        self._tracer._emit(record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._start_perf
        record = {
            "ts": time.time(),
            "start_ts": self.start_ts,
            "pid": os.getpid(),
            "kind": self.kind,
            "seconds": seconds,
            "ok": exc_type is None,
        }
        if self._tracer.source:
            record["source"] = self._tracer.source
        record.update(self.fields)
        self._tracer._emit(record)
        return False


class Tracer:
    """Append structured trace events and spans to a shared JSONL file.

    ``source`` labels the emitting component ("broker", "worker-3",
    "pipeline", ...) on every record, so one file interleaves cleanly.
    ``collector``, when given, receives every record as a dict at full
    float precision *in addition to* (or instead of) the file — the
    pipeline uses it to project :class:`~repro.pipeline.PhaseTimings`
    from the span stream without a file round-trip.
    """

    def __init__(
        self,
        path: Optional[str],
        source: str = "",
        collector: Optional[List[dict]] = None,
    ):
        self.path = path
        self.source = source
        self.collector = collector
        if path:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)

    @property
    def enabled(self) -> bool:
        """Whether records reach a file (the durable trace)."""
        return self.path is not None

    @property
    def active(self) -> bool:
        """Whether records reach anything (file or collector)."""
        return self.path is not None or self.collector is not None

    # -- emission ------------------------------------------------------

    def _emit(self, record: dict) -> None:
        if self.collector is not None:
            self.collector.append(record)
        if self.path is not None:
            # Rounded on the wire only: the collector keeps full
            # precision so span-projected timings match in-process
            # accumulators exactly.
            line = {
                key: round(value, 6) if type(value) is float else value
                for key, value in record.items()
            }
            append_jsonl_line(self.path, line)

    def event(self, kind: str, **fields) -> None:
        """Emit one instantaneous event."""
        if self.path is None and self.collector is None:
            return
        record = {"ts": time.time(), "pid": os.getpid(), "kind": kind}
        if self.source:
            record["source"] = self.source
        record.update(fields)
        self._emit(record)

    def span(self, kind: str, **fields):
        """A context manager timing its body: a begin record on entry,
        an end record with ``seconds`` and ``ok`` on exit (``ok=False``
        when the body raised; the exception propagates).  Disabled
        tracers return a shared no-op singleton."""
        if self.path is None and self.collector is None:
            return _NULL_SPAN
        return _Span(self, kind, fields)

    def record(
        self, kind: str, seconds: float, ok: bool = True, **fields
    ) -> None:
        """Emit one already-measured span end record (no begin line) —
        for durations accounted elsewhere, e.g. the adaptive loop's
        synthesis share."""
        if self.path is None and self.collector is None:
            return
        now = time.time()
        record = {
            "ts": now,
            "start_ts": now - seconds,
            "pid": os.getpid(),
            "kind": kind,
            "seconds": seconds,
            "ok": ok,
        }
        if self.source:
            record["source"] = self.source
        record.update(fields)
        self._emit(record)

    def child(self, source: str) -> "Tracer":
        """A tracer on the same file (and collector) with a different
        source label — process-safe, since appends are flock-serialized
        single writes."""
        return Tracer(self.path, source=source, collector=self.collector)


#: The process-wide tracer the decorators (and the executor shard seam)
#: resolve.  A module global, so forked pool workers inherit the
#: installation exactly like the fault-injection seam does.
_CURRENT: Tracer = Tracer(None)


def install_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the process-wide current tracer; returns
    the previous one so callers can restore it (``None`` installs the
    no-op tracer)."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else Tracer(None)
    return previous


def current_tracer() -> Tracer:
    """The process-wide tracer (a no-op tracer when none installed)."""
    return _CURRENT


def trace_step(kind: str, **static_fields) -> Callable:
    """Decorator: run the function inside a span of the *current*
    tracer (begin + end records).  With no tracer installed the
    wrapper is a plain call."""

    def decorate(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            tracer = _CURRENT
            if not tracer.active:
                return function(*args, **kwargs)
            with tracer.span(kind, **static_fields):
                return function(*args, **kwargs)

        return wrapper

    return decorate


def profile_step(kind: str, **static_fields) -> Callable:
    """Decorator: emit one end-only span record per call (duration and
    ``ok``, no begin line) — the lightweight profiling idiom for hot
    call sites where per-call begin records would double file volume."""

    def decorate(function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            tracer = _CURRENT
            if not tracer.active:
                return function(*args, **kwargs)
            started = time.perf_counter()
            try:
                result = function(*args, **kwargs)
            except BaseException:
                tracer.record(
                    kind,
                    time.perf_counter() - started,
                    ok=False,
                    **static_fields,
                )
                raise
            tracer.record(kind, time.perf_counter() - started, **static_fields)
            return result

        return wrapper

    return decorate
