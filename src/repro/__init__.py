"""repro — leakage-contract synthesis for RISC-V processor models.

A reproduction of "Synthesizing Hardware-Software Leakage Contracts for
RISC-V Open-Source Processors" (Mohr, Guarnieri, Reineke; DATE 2024).

The package is organized bottom-up:

- :mod:`repro.isa` — RV32IM instruction set: encoding, assembly,
  architectural state, and the instruction-granular executor.
- :mod:`repro.uarch` — cycle-accurate in-order core models (Ibex-like
  and CVA6-like) exposing the RISC-V Formal Interface (RVFI).
- :mod:`repro.attacker` — microarchitectural attacker models.
- :mod:`repro.contracts` — contract atoms, templates, and the RISC-V
  contract template of the paper (IL/RL/ML/AL/BL/DL families).
- :mod:`repro.testgen` — atom-targeted test-case generation and the
  ``GENERATOR_REGISTRY`` of pluggable generation strategies.
- :mod:`repro.evaluation` — attacker distinguishability and
  distinguishing-atom extraction.
- :mod:`repro.synthesis` — ILP-based contract synthesis, metrics, and
  the refinement ranking.
- :mod:`repro.vcd`, :mod:`repro.reporting`, :mod:`repro.experiments` —
  waveforms, tables/figures, and the paper's experiment drivers.
- :mod:`repro.pipeline` — the public entry point: the
  :class:`~repro.pipeline.SynthesisPipeline` builder and the plugin
  registries for cores, attackers, solvers, and templates.
- :mod:`repro.campaign` — resumable grid sweeps: a
  :class:`~repro.campaign.CampaignSpec` expands (core x attacker x
  template x restriction x solver x generator x budget x seed) into
  cells executed through the pipeline with cross-cell dataset reuse
  and a cell-granularity checkpoint manifest.
- :mod:`repro.adaptive` — coverage-guided synthesis loops: rounds of
  generation steered by evaluator feedback, warm-started per-round
  ILP synthesis, pluggable stopping rules, and round-granularity
  checkpointing.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
