"""The RISC-V contract template of §IV-A.

One atom per (instruction type, applicable leakage source):

- **Instruction leakages (IL)** — ``OP``, ``RD``, ``RS1``, ``RS2``,
  ``IMM``: values from the instruction's encoding.
- **Register leakages (RL)** — ``REG_RS1``, ``REG_RS2`` (values before
  execution), ``REG_RD`` (final destination value).
- **Memory leakages (ML)** — ``MEM_R_ADDR``/``MEM_R_DATA`` for loads,
  ``MEM_W_ADDR``/``MEM_W_DATA`` for stores.
- **Alignment leakages (AL)** — ``IS_WORD_ALIGNED`` (address ends in
  ``00``), ``IS_HALF_ALIGNED`` (address does not end in ``11``).
- **Branch leakages (BL)** — ``BRANCH_TAKEN`` for conditional
  branches; ``NEW_PC`` for branches and unconditional jumps.
- **Data-dependency leakages (DL)** — ``RAW_RS1_n``, ``RAW_RS2_n``,
  ``RAW_RD_n``, ``WAW_n`` for distances ``n = 1..4``: whether the
  instruction has the given register dependency within ``n``
  instructions.

The paper's instantiation for RV32IM(C) yields 762 atoms; this RV32IM
instantiation yields 892 because we include all four dependency kinds
for every distance and applicable operand (the paper does not spell
out its exact applicability matrix).  The synthesis pipeline treats
the template size as data, so the difference only affects the atom
count reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.contracts.atoms import ContractAtom, LeakageFamily, make_atom
from repro.contracts.template import ContractTemplate
from repro.isa.instructions import (
    InstructionCategory,
    Opcode,
    OPCODE_INFO,
)
from repro.registry import Registry

#: The paper's base template (§IV-A) and its final refinement.
BASE_FAMILIES = (LeakageFamily.IL, LeakageFamily.RL, LeakageFamily.ML)
FULL_FAMILIES = (
    LeakageFamily.IL,
    LeakageFamily.RL,
    LeakageFamily.ML,
    LeakageFamily.AL,
    LeakageFamily.BL,
    LeakageFamily.DL,
)

#: Maximum dependency distance tracked by the DL atoms.
DEFAULT_MAX_DISTANCE = 4

_DEPENDENCY_PREFIXES = ("RAW_RS1", "RAW_RS2", "RAW_RD", "WAW")


def _applicable_sources(
    opcode: Opcode, max_distance: int, zero_value_atoms: bool = False
) -> List[str]:
    """All leakage sources applicable to ``opcode``, template order."""
    info = OPCODE_INFO[opcode]
    if info.category is InstructionCategory.SYSTEM:
        return []
    sources: List[str] = ["OP"]
    if info.has_rd:
        sources.append("RD")
    if info.has_rs1:
        sources.append("RS1")
    if info.has_rs2:
        sources.append("RS2")
    if info.has_imm:
        sources.append("IMM")
    if info.has_rs1:
        sources.append("REG_RS1")
    if info.has_rs2:
        sources.append("REG_RS2")
    if info.has_rd:
        sources.append("REG_RD")
    if zero_value_atoms:
        if info.has_rs1:
            sources.append("IS_ZERO_RS1")
        if info.has_rs2:
            sources.append("IS_ZERO_RS2")
    if info.category is InstructionCategory.LOAD:
        sources.extend(["MEM_R_ADDR", "MEM_R_DATA"])
    if info.category is InstructionCategory.STORE:
        sources.extend(["MEM_W_ADDR", "MEM_W_DATA"])
    if info.is_memory:
        sources.extend(["IS_WORD_ALIGNED", "IS_HALF_ALIGNED"])
    if info.category is InstructionCategory.BRANCH:
        sources.append("BRANCH_TAKEN")
    if info.is_control:
        sources.append("NEW_PC")
    for prefix in _DEPENDENCY_PREFIXES:
        if prefix == "RAW_RS1" and not info.has_rs1:
            continue
        if prefix == "RAW_RS2" and not info.has_rs2:
            continue
        if prefix in ("RAW_RD", "WAW") and not info.has_rd:
            continue
        for distance in range(1, max_distance + 1):
            sources.append("%s_%d" % (prefix, distance))
    return sources


def build_riscv_template(
    opcodes: Optional[Sequence[Opcode]] = None,
    max_distance: int = DEFAULT_MAX_DISTANCE,
    name: str = "riscv-rv32im",
    zero_value_atoms: bool = False,
) -> ContractTemplate:
    """Build the RV32IM contract template.

    ``opcodes`` restricts the instruction types covered (defaults to
    every non-system RV32IM opcode); ``max_distance`` bounds the
    dependency-leakage distance ``n``; ``zero_value_atoms`` adds the
    ``IS_ZERO_RS1``/``IS_ZERO_RS2`` refinement atoms (a §III-E
    refinement that sharpens operand-gating leaks such as CVA6's
    zero-skip multiplier).
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if opcodes is None:
        opcodes = [
            opcode
            for opcode in Opcode
            if OPCODE_INFO[opcode].category is not InstructionCategory.SYSTEM
        ]
    if zero_value_atoms and name == "riscv-rv32im":
        name = "riscv-rv32im-zref"
    atoms: List[ContractAtom] = []
    for opcode in opcodes:
        for source in _applicable_sources(opcode, max_distance, zero_value_atoms):
            atoms.append(make_atom(len(atoms), opcode, source))
    return ContractTemplate(atoms, name=name)


def template_families(template: ContractTemplate) -> List[LeakageFamily]:
    """The families present in ``template``, in canonical order."""
    present = {atom.family for atom in template}
    return [family for family in LeakageFamily if family in present]


def cumulative_family_sets(
    families: Iterable[LeakageFamily] = FULL_FAMILIES,
) -> List[tuple]:
    """The template-growth sequence of Fig. 2.

    Returns ``[(IL, RL, ML), (IL, RL, ML, AL), ...]`` — the base
    template plus one refinement family at a time.
    """
    ordered = list(families)
    base_length = len(BASE_FAMILIES)
    return [tuple(ordered[:count]) for count in range(base_length, len(ordered) + 1)]


def restriction_label(families: Iterable[LeakageFamily]) -> str:
    """The canonical name of a family restriction (``"IL+RL+ML"``)."""
    return "+".join(family.name for family in families)


#: All registered contract templates, keyed by ``ContractTemplate.name``.
TEMPLATE_REGISTRY = Registry("template", "contract templates")
TEMPLATE_REGISTRY.register(
    "riscv-rv32im",
    build_riscv_template,
    description="the paper's RV32IM template (IL/RL/ML/AL/BL/DL)",
)
TEMPLATE_REGISTRY.register(
    "riscv-rv32im-zref",
    lambda: build_riscv_template(zero_value_atoms=True),
    description="RV32IM template plus IS_ZERO operand refinement atoms",
)


def _build_memory_template() -> ContractTemplate:
    from repro.testgen.opcodes import LOADS, STORES

    return build_riscv_template(opcodes=LOADS + STORES, name="riscv-mem")


TEMPLATE_REGISTRY.register(
    "riscv-mem",
    _build_memory_template,
    description="loads/stores only — the pinned cache-leakage scenario "
    "(saturates quickly; used by the adaptive convergence tests)",
)

#: Template restrictions (family subsets), keyed by canonical label.
#: ``create(name)`` returns the tuple of :class:`LeakageFamily` values;
#: synthesis turns it into allowed atom ids via ``template.restrict``.
RESTRICTION_REGISTRY = Registry("restriction", "template family restrictions")
RESTRICTION_REGISTRY.register(
    "base", lambda: BASE_FAMILIES, description="the base template (IL+RL+ML)"
)
RESTRICTION_REGISTRY.register(
    "full", lambda: FULL_FAMILIES, description="all six leakage families"
)
for _families in cumulative_family_sets():
    RESTRICTION_REGISTRY.register(
        restriction_label(_families),
        (lambda captured: lambda: captured)(_families),
        description="cumulative refinement through %s" % _families[-1].name,
    )
del _families
