"""Columnar (compiled) observation extraction — the evaluation fast path.

The reference semantics in :mod:`repro.contracts.observations` invoke
one observation closure per (atom, record) pair; with ~30 atoms per
opcode that is the dominant cost of test-case evaluation.  This module
compiles a :class:`~repro.contracts.template.ContractTemplate` once
into a columnar form:

- every :class:`~repro.isa.executor.ExecRecord` is lowered to a single
  *feature row* — one tuple holding the value of every simple leakage
  source plus the dependency-window booleans — so that each atom
  observation becomes an indexed lookup into that row instead of a
  closure call;
- each opcode maps to parallel tuples ``(atom_ids, slots, sources)``
  giving, for every applicable atom, the feature-row slot its
  observation lives in.

On top of the rows, :meth:`CompiledTemplate.distinguishing_atoms` is a
*diff-aware merge* over two executions: aligned records with identical
``(opcode, feature row)`` pairs — the overwhelmingly common case, since
a test-case pair differs in one targeted operand — are skipped without
touching any atom; only divergent positions expand into per-slot
comparisons.  Control-flow divergence (different opcodes at the same
retirement index) and unequal trace lengths mark every atom applicable
to the unmatched records as distinguishing, which is exactly the
reference semantics because observation traces embed the retirement
index of every observation.

The reference implementation remains the oracle; equivalence is
asserted in ``tests/contracts/test_compiled_equivalence.py``.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.contracts.atoms import DEPENDENCY_SOURCES, SIMPLE_SOURCES
from repro.contracts.template import ContractTemplate
from repro.isa.executor import ExecRecord
from repro.isa.instructions import Opcode

#: Fixed feature-row layout for the distance-independent sources.  The
#: order is arbitrary but frozen: slot ``i`` of every feature row holds
#: the observation of ``SIMPLE_SLOT_ORDER[i]``.
SIMPLE_SLOT_ORDER: Tuple[str, ...] = (
    "OP",
    "RD",
    "RS1",
    "RS2",
    "IMM",
    "REG_RS1",
    "REG_RS2",
    "REG_RD",
    "IS_ZERO_RS1",
    "IS_ZERO_RS2",
    "MEM_R_ADDR",
    "MEM_R_DATA",
    "MEM_W_ADDR",
    "MEM_W_DATA",
    "IS_WORD_ALIGNED",
    "IS_HALF_ALIGNED",
    "BRANCH_TAKEN",
    "NEW_PC",
)

_SIMPLE_SLOT = {source: slot for slot, source in enumerate(SIMPLE_SLOT_ORDER)}
_SIMPLE_COUNT = len(SIMPLE_SLOT_ORDER)

#: Dependency attributes in feature-row order; mirrors the values of
#: :data:`repro.contracts.atoms.DEPENDENCY_SOURCES`.
_DEP_PREFIX_ORDER: Tuple[str, ...] = ("RAW_RS1", "RAW_RS2", "RAW_RD", "WAW")


class _DependencyRows(dict):
    """Memoized ``distance -> (d<=1, d<=2, ..., d<=max)`` bool tuples.

    Dependency distances take a handful of values (``None`` or
    ``1..window``), so the window booleans of a whole evaluation run
    collapse to a few shared tuples.
    """

    def __init__(self, max_distance: int):
        super().__init__()
        self.max_distance = max_distance
        self[None] = (False,) * max_distance

    def __missing__(self, distance):
        row = tuple(distance <= n for n in range(1, self.max_distance + 1))
        self[distance] = row
        return row


def _slot_of_source(source: str, max_distance: int) -> int:
    """Feature-row slot holding the observation of ``source``."""
    slot = _SIMPLE_SLOT.get(source)
    if slot is not None:
        return slot
    prefix, _, suffix = source.rpartition("_")
    if prefix in DEPENDENCY_SOURCES and suffix.isdigit():
        distance = int(suffix)
        if not 1 <= distance <= max_distance:
            raise ValueError(
                "dependency distance %d outside compiled window %d"
                % (distance, max_distance)
            )
        prefix_index = _DEP_PREFIX_ORDER.index(prefix)
        return _SIMPLE_COUNT + prefix_index * max_distance + (distance - 1)
    raise ValueError("unknown leakage source: %r" % (source,))


def _template_max_distance(template: ContractTemplate) -> int:
    """Largest dependency distance appearing in ``template``."""
    max_distance = 0
    for atom in template:
        if atom.source in SIMPLE_SOURCES:
            continue
        suffix = atom.source.rpartition("_")[2]
        if suffix.isdigit():
            max_distance = max(max_distance, int(suffix))
    return max_distance


class CompiledTemplate:
    """A contract template lowered to columnar feature-row form."""

    def __init__(self, template: ContractTemplate):
        self.template = template
        self.max_distance = _template_max_distance(template)
        self._dep_rows = _DependencyRows(self.max_distance)
        #: opcode -> (atom_ids, slots, sources) parallel tuples.
        self._by_opcode: Dict[Opcode, Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[str, ...]]] = {}
        grouped: Dict[Opcode, List[Tuple[int, int, str]]] = {}
        for atom in template:
            slot = _slot_of_source(atom.source, self.max_distance)
            grouped.setdefault(atom.opcode, []).append(
                (atom.atom_id, slot, atom.source)
            )
        for opcode, entries in grouped.items():
            self._by_opcode[opcode] = (
                tuple(entry[0] for entry in entries),
                tuple(entry[1] for entry in entries),
                tuple(entry[2] for entry in entries),
            )
        #: contract.atom_ids -> per-opcode (source, slot) pairs, for
        #: :meth:`contract_observation_trace`.
        self._contract_plans: Dict[FrozenSet[int], dict] = {}
        #: lazily-built inverse index for the batched engine.
        self._slot_index = None

    def atom_slot_index(self):
        """Inverse index for columnar batch extraction.

        Returns ``(slot_atoms, opcode_atoms)`` where ``slot_atoms``
        maps ``(opcode, slot) -> atom_ids`` (the atoms whose
        observation lives in that feature-row slot) and
        ``opcode_atoms`` maps ``opcode -> all atom_ids`` (the
        divergence/tail contribution).  Memoized — the index is a pure
        function of the template.
        """
        if self._slot_index is None:
            slot_atoms: Dict[Tuple[Opcode, int], Tuple[int, ...]] = {}
            opcode_atoms: Dict[Opcode, Tuple[int, ...]] = {}
            for opcode, (atom_ids, slots, _) in self._by_opcode.items():
                grouped: Dict[int, List[int]] = {}
                for position in range(len(atom_ids)):
                    grouped.setdefault(slots[position], []).append(
                        atom_ids[position]
                    )
                for slot, ids in grouped.items():
                    slot_atoms[(opcode, slot)] = tuple(ids)
                opcode_atoms[opcode] = atom_ids
            self._slot_index = (slot_atoms, opcode_atoms)
        return self._slot_index

    # ------------------------------------------------------------------
    # Row extraction

    def feature_row(self, record: ExecRecord) -> Tuple[Hashable, ...]:
        """Lower one retirement record to its feature row.

        Slot values are exactly the observation values the reference
        ``φ`` closures produce, so ``row[slot_of(source)]`` equals
        ``make_observation_function(source)(record)`` for every source.
        """
        instruction = record.instruction
        rs1_value = record.rs1_value
        rs2_value = record.rs2_value
        mem_read_addr = record.mem_read_addr
        mem_write_addr = record.mem_write_addr
        address = mem_read_addr if mem_read_addr is not None else mem_write_addr
        dep_rows = self._dep_rows
        return (
            instruction.opcode.value,
            instruction.rd,
            instruction.rs1,
            instruction.rs2,
            instruction.imm,
            rs1_value,
            rs2_value,
            record.rd_value,
            rs1_value == 0,
            rs2_value == 0,
            mem_read_addr,
            record.mem_read_data,
            mem_write_addr,
            record.mem_write_data,
            address is not None and (address & 0x3) == 0,
            address is not None and (address & 0x3) != 0x3,
            record.branch_taken,
            record.next_pc,
            *dep_rows[record.raw_rs1_dist],
            *dep_rows[record.raw_rs2_dist],
            *dep_rows[record.war_rd_dist],
            *dep_rows[record.waw_dist],
        )

    def feature_rows(self, records: Sequence[ExecRecord]) -> List[Tuple[Hashable, ...]]:
        """The columnar form of a whole execution."""
        feature_row = self.feature_row
        return [feature_row(record) for record in records]

    # ------------------------------------------------------------------
    # Extraction APIs (reference-equivalent)

    def atom_traces(
        self, records: Sequence[ExecRecord]
    ) -> Dict[int, List[Tuple[int, Hashable]]]:
        """Per-atom observation traces, equal to the reference
        ``_observation_map`` output."""
        traces: Dict[int, List[Tuple[int, Hashable]]] = {}
        by_opcode = self._by_opcode
        feature_row = self.feature_row
        for index, record in enumerate(records):
            entry = by_opcode.get(record.instruction.opcode)
            if entry is None:
                continue
            row = feature_row(record)
            atom_ids, slots, _ = entry
            for position in range(len(atom_ids)):
                traces.setdefault(atom_ids[position], []).append(
                    (index, row[slots[position]])
                )
        return traces

    def distinguishing_atoms(
        self,
        records_a: Sequence[ExecRecord],
        records_b: Sequence[ExecRecord],
    ) -> FrozenSet[int]:
        """Diff-aware merge computing the distinguishing-atom set.

        Sound per-position comparison: every observation carries its
        retirement index, so an atom's traces differ iff its
        contribution differs at some index — present-vs-absent
        (opcode/length divergence) or unequal observation values.
        """
        by_opcode = self._by_opcode
        feature_row = self.feature_row
        distinguishing = set()
        length_a, length_b = len(records_a), len(records_b)
        aligned = length_a if length_a <= length_b else length_b
        for index in range(aligned):
            record_a = records_a[index]
            record_b = records_b[index]
            opcode_a = record_a.instruction.opcode
            opcode_b = record_b.instruction.opcode
            if opcode_a is opcode_b:
                entry = by_opcode.get(opcode_a)
                if entry is None:
                    continue
                row_a = feature_row(record_a)
                row_b = feature_row(record_b)
                if row_a == row_b:
                    continue
                atom_ids, slots, _ = entry
                for position in range(len(atom_ids)):
                    if row_a[slots[position]] != row_b[slots[position]]:
                        distinguishing.add(atom_ids[position])
            else:
                # Control-flow divergence: atoms of either opcode apply
                # on exactly one side, so all of them distinguish.
                entry = by_opcode.get(opcode_a)
                if entry is not None:
                    distinguishing.update(entry[0])
                entry = by_opcode.get(opcode_b)
                if entry is not None:
                    distinguishing.update(entry[0])
        longer = records_a if length_a > length_b else records_b
        for index in range(aligned, len(longer)):
            entry = by_opcode.get(longer[index].instruction.opcode)
            if entry is not None:
                distinguishing.update(entry[0])
        return frozenset(distinguishing)

    def contract_observation_trace(self, contract, records: Sequence[ExecRecord]):
        """Fast ``CTR_S(ISA*(σ))``, equal to the reference trace."""
        if contract.template is not self.template:
            raise ValueError("contract was built from a different template")
        plan = self._contract_plans.get(contract.atom_ids)
        if plan is None:
            plan = {}
            for opcode, (atom_ids, slots, sources) in self._by_opcode.items():
                pairs = tuple(
                    (sources[position], slots[position])
                    for position in range(len(atom_ids))
                    if atom_ids[position] in contract.atom_ids
                )
                if pairs:
                    plan[opcode] = pairs
            if len(self._contract_plans) >= 128:
                self._contract_plans.clear()
            self._contract_plans[contract.atom_ids] = plan
        feature_row = self.feature_row
        empty: FrozenSet = frozenset()
        trace = []
        for record in records:
            pairs = plan.get(record.instruction.opcode)
            if not pairs:
                trace.append(empty)
                continue
            row = feature_row(record)
            trace.append(frozenset((source, row[slot]) for source, slot in pairs))
        return tuple(trace)


_COMPILED_CACHE: "weakref.WeakKeyDictionary[ContractTemplate, CompiledTemplate]" = (
    weakref.WeakKeyDictionary()
)


def compile_template(template: ContractTemplate) -> CompiledTemplate:
    """The (cached) compiled form of ``template``.

    Keyed on template identity so that evaluators, the module-level
    fast paths in :mod:`repro.contracts.observations`, and forked
    worker processes all share one compilation per template object.
    """
    compiled = _COMPILED_CACHE.get(template)
    if compiled is None:
        compiled = CompiledTemplate(template)
        _COMPILED_CACHE[template] = compiled
    return compiled
