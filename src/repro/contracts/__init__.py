"""Leakage contracts: atoms, templates, and observation traces.

Implements §III-A of the paper: a contract atom is a triple
``(π, τ, φ)`` of an applicability predicate, a leakage-source
identifier, and an observation function; a contract template is a set
of atoms; and any subset of the template is a candidate contract.
"""

from repro.contracts.atoms import ContractAtom, LeakageFamily
from repro.contracts.compiled import CompiledTemplate, compile_template
from repro.contracts.template import Contract, ContractTemplate
from repro.contracts.observations import (
    atom_observation_trace,
    contract_observation_trace,
    contract_observation_trace_reference,
    distinguishing_atoms,
    distinguishing_atoms_reference,
)
from repro.contracts.riscv_template import (
    BASE_FAMILIES,
    FULL_FAMILIES,
    build_riscv_template,
)

__all__ = [
    "BASE_FAMILIES",
    "CompiledTemplate",
    "Contract",
    "ContractAtom",
    "ContractTemplate",
    "FULL_FAMILIES",
    "LeakageFamily",
    "atom_observation_trace",
    "build_riscv_template",
    "compile_template",
    "contract_observation_trace",
    "contract_observation_trace_reference",
    "distinguishing_atoms",
    "distinguishing_atoms_reference",
]
