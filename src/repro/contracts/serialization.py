"""Contract serialization and diffing.

Contracts are stored by *atom name* (``opcode:source``) rather than by
numeric id, so a saved contract survives template rebuilds, template
growth (new families), and exchange between toolchain versions — the
form in which a synthesized contract would ship with a processor's
documentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.contracts.template import Contract, ContractTemplate


class ContractFormatError(ValueError):
    """Raised when serialized contract data is malformed."""


def contract_to_dict(contract: Contract, metadata: Dict[str, str] = None) -> dict:
    """A JSON-ready representation of ``contract``."""
    return {
        "format": "repro-leakage-contract/v1",
        "template": contract.template.name,
        "metadata": dict(metadata or {}),
        "atoms": sorted(atom.name for atom in contract.atoms),
    }


def contract_to_json(contract: Contract, metadata: Dict[str, str] = None) -> str:
    return json.dumps(contract_to_dict(contract, metadata), indent=2)


def contract_from_dict(data: dict, template: ContractTemplate) -> Contract:
    """Rebuild a contract over ``template`` from serialized data.

    Atom names must all resolve in the template; unknown names raise
    :class:`ContractFormatError` (a contract must never silently lose
    leakage observations).
    """
    if data.get("format") != "repro-leakage-contract/v1":
        raise ContractFormatError("unknown format: %r" % (data.get("format"),))
    names = data.get("atoms")
    if not isinstance(names, list):
        raise ContractFormatError("missing atom list")
    by_name = {atom.name: atom.atom_id for atom in template}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise ContractFormatError(
            "atoms not in template %r: %s" % (template.name, ", ".join(missing))
        )
    return Contract(template, [by_name[name] for name in names])


def contract_from_json(text: str, template: ContractTemplate) -> Contract:
    return contract_from_dict(json.loads(text), template)


def save_contract(contract: Contract, path: str, metadata: Dict[str, str] = None) -> None:
    with open(path, "w") as stream:
        stream.write(contract_to_json(contract, metadata) + "\n")


def load_contract(path: str, template: ContractTemplate) -> Contract:
    with open(path) as stream:
        return contract_from_json(stream.read(), template)


@dataclass(frozen=True)
class ContractDiff:
    """Atom-level difference between two contracts."""

    only_in_first: Tuple[str, ...]
    only_in_second: Tuple[str, ...]
    common: Tuple[str, ...]

    @property
    def identical(self) -> bool:
        return not self.only_in_first and not self.only_in_second

    def render(self, first_label: str = "first", second_label: str = "second") -> str:
        lines = [
            "%d common atoms, %d only in %s, %d only in %s"
            % (
                len(self.common),
                len(self.only_in_first),
                first_label,
                len(self.only_in_second),
                second_label,
            )
        ]
        for name in self.only_in_first:
            lines.append("  - %s" % name)
        for name in self.only_in_second:
            lines.append("  + %s" % name)
        return "\n".join(lines)


def diff_contracts(first: Contract, second: Contract) -> ContractDiff:
    """Compare two contracts by atom name (templates may differ)."""
    names_first = {atom.name for atom in first.atoms}
    names_second = {atom.name for atom in second.atoms}
    return ContractDiff(
        only_in_first=tuple(sorted(names_first - names_second)),
        only_in_second=tuple(sorted(names_second - names_first)),
        common=tuple(sorted(names_first & names_second)),
    )
