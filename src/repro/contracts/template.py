"""Contract templates and candidate contracts (§III-A).

A :class:`ContractTemplate` is an ordered set of atoms (order fixes the
``atom_id`` numbering used everywhere downstream); a :class:`Contract`
is a subset of a template — the synthesis result.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.contracts.atoms import ContractAtom, LeakageFamily
from repro.isa.instructions import InstructionCategory, Opcode


class ContractTemplate:
    """An immutable, indexed collection of contract atoms."""

    def __init__(self, atoms: Sequence[ContractAtom], name: str = "template"):
        self.name = name
        self._atoms: Tuple[ContractAtom, ...] = tuple(atoms)
        for index, atom in enumerate(self._atoms):
            if atom.atom_id != index:
                raise ValueError(
                    "atom_id %d at position %d; template atoms must be "
                    "numbered contiguously" % (atom.atom_id, index)
                )
        self._by_opcode: Dict[Opcode, Tuple[ContractAtom, ...]] = {}
        grouped: Dict[Opcode, List[ContractAtom]] = {}
        for atom in self._atoms:
            grouped.setdefault(atom.opcode, []).append(atom)
        self._by_opcode = {opcode: tuple(atoms) for opcode, atoms in grouped.items()}

    @property
    def atoms(self) -> Tuple[ContractAtom, ...]:
        return self._atoms

    def atoms_for_opcode(self, opcode: Opcode) -> Tuple[ContractAtom, ...]:
        """All atoms applicable to instructions of type ``opcode``."""
        return self._by_opcode.get(opcode, ())

    def atom(self, atom_id: int) -> ContractAtom:
        return self._atoms[atom_id]

    def ids_by_family(self, families: Iterable[LeakageFamily]) -> FrozenSet[int]:
        """Atom ids whose family is in ``families`` (template restriction)."""
        family_set = set(families)
        return frozenset(
            atom.atom_id for atom in self._atoms if atom.family in family_set
        )

    def restrict(self, families: Iterable[LeakageFamily], name: Optional[str] = None):
        """A view of this template restricted to ``families``.

        Returned as a frozen set of permitted atom ids; synthesis takes
        this as its search space so that atom ids remain stable across
        template variants (needed to reuse evaluation results, as the
        paper does when comparing templates in Fig. 2).
        """
        return self.ids_by_family(families)

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[ContractAtom]:
        return iter(self._atoms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ContractTemplate(%s, %d atoms)" % (self.name, len(self._atoms))


def template_digest(template: ContractTemplate) -> str:
    """An 8-hex digest of the template's atom list.

    The atom list fully determines extraction (and the meaning of atom
    ids), so this is the part of a template's identity its ``name``
    alone cannot vouch for.  Both the dataset cache key and the
    campaign cell manifest embed it to avoid serving results computed
    under a differently-defined template of the same name.
    """
    import hashlib

    return hashlib.md5(
        "|".join(atom.name for atom in template).encode()
    ).hexdigest()[:8]


class Contract:
    """A candidate contract: a subset of a template's atoms (``CTR_S``)."""

    def __init__(self, template: ContractTemplate, atom_ids: Iterable[int]):
        self.template = template
        self.atom_ids: FrozenSet[int] = frozenset(atom_ids)
        for atom_id in self.atom_ids:
            if not 0 <= atom_id < len(template):
                raise ValueError("atom id out of range: %r" % (atom_id,))

    @property
    def atoms(self) -> List[ContractAtom]:
        return [self.template.atom(atom_id) for atom_id in sorted(self.atom_ids)]

    def __contains__(self, atom_id: int) -> bool:
        return atom_id in self.atom_ids

    def __len__(self) -> int:
        return len(self.atom_ids)

    def distinguishes(self, distinguishing_atom_ids: FrozenSet[int]) -> bool:
        """Whether this contract distinguishes a test case, given the
        set of atoms that distinguish it (§III-B: a test case is
        contract distinguishable iff some selected atom distinguishes
        it)."""
        return not self.atom_ids.isdisjoint(distinguishing_atom_ids)

    def by_category_and_family(self):
        """Group selected atoms for the paper's contract tables.

        Returns ``{(InstructionCategory, LeakageFamily): [atoms]}``.
        """
        grouped: Dict[Tuple[InstructionCategory, LeakageFamily], List[ContractAtom]] = {}
        for atom in self.atoms:
            category = _category_of(atom.opcode)
            grouped.setdefault((category, atom.family), []).append(atom)
        return grouped

    def summary(self) -> str:
        """A short, human-readable listing of the contract's atoms."""
        lines = ["Contract with %d atoms:" % len(self.atom_ids)]
        for atom in self.atoms:
            lines.append("  %-24s [%s]" % (atom.name, atom.family.name))
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Contract):
            return NotImplemented
        return self.template is other.template and self.atom_ids == other.atom_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Contract(%d of %d atoms)" % (len(self.atom_ids), len(self.template))


def _category_of(opcode: Opcode) -> InstructionCategory:
    from repro.isa.instructions import OPCODE_INFO

    return OPCODE_INFO[opcode].category
