"""Contract atoms: the building blocks of leakage contracts (§III-A).

A contract atom is a triple ``(π, τ, φ)``:

- ``π`` decides whether the atom is applicable in an architectural
  state.  Following the paper's RISC-V instantiation (§IV-A), ``π``
  tests the *type* (opcode) of the instruction about to execute.
- ``τ`` identifies the leakage source (e.g. ``REG_RS2``).  Atoms of
  different instruction types may share the same source.
- ``φ`` extracts the observation from the architectural state.  Here
  ``φ`` operates on the :class:`~repro.isa.executor.ExecRecord` of the
  retiring instruction, which packages exactly the architectural facts
  the paper extracts from the RVFI (§IV-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.isa.executor import ExecRecord
from repro.isa.instructions import Opcode


class LeakageFamily(enum.Enum):
    """The atom families of the paper's RISC-V template (§IV-A)."""

    IL = "instruction"
    RL = "register"
    ML = "memory"
    AL = "alignment"
    BL = "branch"
    DL = "data-dependency"

    def __lt__(self, other: "LeakageFamily") -> bool:
        return _FAMILY_RANK[self] < _FAMILY_RANK[other]


#: Declaration-order rank table; avoids rebuilding the member list on
#: every comparison (LeakageFamily sorts appear in reporting hot loops).
_FAMILY_RANK = {family: rank for rank, family in enumerate(LeakageFamily)}


#: Observation functions map a retirement record to a hashable value.
ObservationFunction = Callable[[ExecRecord], Hashable]


def _observe_op(record: ExecRecord) -> Hashable:
    return record.opcode.value


def _observe_rd(record: ExecRecord) -> Hashable:
    return record.instruction.rd


def _observe_rs1(record: ExecRecord) -> Hashable:
    return record.instruction.rs1


def _observe_rs2(record: ExecRecord) -> Hashable:
    return record.instruction.rs2


def _observe_imm(record: ExecRecord) -> Hashable:
    return record.instruction.imm


def _observe_reg_rs1(record: ExecRecord) -> Hashable:
    return record.rs1_value


def _observe_reg_rs2(record: ExecRecord) -> Hashable:
    return record.rs2_value


def _observe_reg_rd(record: ExecRecord) -> Hashable:
    return record.rd_value


def _observe_mem_r_addr(record: ExecRecord) -> Hashable:
    return record.mem_read_addr


def _observe_mem_r_data(record: ExecRecord) -> Hashable:
    return record.mem_read_data


def _observe_mem_w_addr(record: ExecRecord) -> Hashable:
    return record.mem_write_addr


def _observe_mem_w_data(record: ExecRecord) -> Hashable:
    return record.mem_write_data


def _observe_is_word_aligned(record: ExecRecord) -> Hashable:
    address = record.memory_address
    return address is not None and (address & 0x3) == 0


def _observe_is_half_aligned(record: ExecRecord) -> Hashable:
    address = record.memory_address
    return address is not None and (address & 0x3) != 0x3


def _observe_is_zero_rs1(record: ExecRecord) -> Hashable:
    return record.rs1_value == 0


def _observe_is_zero_rs2(record: ExecRecord) -> Hashable:
    return record.rs2_value == 0


def _observe_branch_taken(record: ExecRecord) -> Hashable:
    return record.branch_taken


def _observe_new_pc(record: ExecRecord) -> Hashable:
    return record.next_pc


def _make_dependency_observer(attribute: str, distance: int) -> ObservationFunction:
    def observe(record: ExecRecord) -> Hashable:
        value: Optional[int] = getattr(record, attribute)
        return value is not None and value <= distance

    return observe


#: Leakage source identifier -> observation function, for the
#: distance-independent sources.
SIMPLE_SOURCES = {
    "OP": (_observe_op, LeakageFamily.IL),
    "RD": (_observe_rd, LeakageFamily.IL),
    "RS1": (_observe_rs1, LeakageFamily.IL),
    "RS2": (_observe_rs2, LeakageFamily.IL),
    "IMM": (_observe_imm, LeakageFamily.IL),
    "REG_RS1": (_observe_reg_rs1, LeakageFamily.RL),
    "REG_RS2": (_observe_reg_rs2, LeakageFamily.RL),
    "REG_RD": (_observe_reg_rd, LeakageFamily.RL),
    # Refinement atoms (§III-E): operand-zero predicates.  Coarser
    # than REG_RS*, they capture clock-gating fast paths (e.g. a
    # zero-skip multiplier) with far fewer false positives.
    "IS_ZERO_RS1": (_observe_is_zero_rs1, LeakageFamily.RL),
    "IS_ZERO_RS2": (_observe_is_zero_rs2, LeakageFamily.RL),
    "MEM_R_ADDR": (_observe_mem_r_addr, LeakageFamily.ML),
    "MEM_R_DATA": (_observe_mem_r_data, LeakageFamily.ML),
    "MEM_W_ADDR": (_observe_mem_w_addr, LeakageFamily.ML),
    "MEM_W_DATA": (_observe_mem_w_data, LeakageFamily.ML),
    "IS_WORD_ALIGNED": (_observe_is_word_aligned, LeakageFamily.AL),
    "IS_HALF_ALIGNED": (_observe_is_half_aligned, LeakageFamily.AL),
    "BRANCH_TAKEN": (_observe_branch_taken, LeakageFamily.BL),
    "NEW_PC": (_observe_new_pc, LeakageFamily.BL),
}

#: Dependency-source prefixes -> the ExecRecord attribute they test.
DEPENDENCY_SOURCES = {
    "RAW_RS1": "raw_rs1_dist",
    "RAW_RS2": "raw_rs2_dist",
    "RAW_RD": "war_rd_dist",
    "WAW": "waw_dist",
}


def make_observation_function(source: str) -> ObservationFunction:
    """Build ``φ`` for a leakage-source identifier.

    Dependency sources are written ``PREFIX_n`` (e.g. ``RAW_RS1_2``)
    and observe whether the dependency exists within distance ``n``.
    """
    if source in SIMPLE_SOURCES:
        return SIMPLE_SOURCES[source][0]
    prefix, _, suffix = source.rpartition("_")
    if prefix in DEPENDENCY_SOURCES and suffix.isdigit():
        return _make_dependency_observer(DEPENDENCY_SOURCES[prefix], int(suffix))
    raise ValueError("unknown leakage source: %r" % (source,))


def family_of_source(source: str) -> LeakageFamily:
    """The leakage family a source identifier belongs to."""
    if source in SIMPLE_SOURCES:
        return SIMPLE_SOURCES[source][1]
    prefix = source.rpartition("_")[0]
    if prefix in DEPENDENCY_SOURCES:
        return LeakageFamily.DL
    raise ValueError("unknown leakage source: %r" % (source,))


@dataclass(frozen=True)
class ContractAtom:
    """One contract atom ``(π, τ, φ)`` specialized to an opcode.

    ``atom_id`` is the atom's index within its template; it is what
    evaluation results and the ILP refer to.
    """

    atom_id: int
    opcode: Opcode
    source: str
    family: LeakageFamily
    observe: ObservationFunction

    def applies(self, record: ExecRecord) -> bool:
        """``π``: whether this atom observes the given retirement."""
        return record.opcode is self.opcode

    @property
    def name(self) -> str:
        """Stable human-readable identifier, e.g. ``div:REG_RS2``."""
        return "%s:%s" % (self.opcode.value, self.source)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ContractAtom(#%d %s)" % (self.atom_id, self.name)


def make_atom(atom_id: int, opcode: Opcode, source: str) -> ContractAtom:
    """Construct an atom for ``opcode`` and leakage ``source``."""
    return ContractAtom(
        atom_id=atom_id,
        opcode=opcode,
        source=source,
        family=family_of_source(source),
        observe=make_observation_function(source),
    )
