"""Observation traces and atom distinguishability (§III-B, §IV-D).

A single-atom contract ``CTR_{A}`` maps an execution to the sequence
of observations produced at the steps where the atom applies.  Two
executions are *atom distinguishable* iff those sequences differ —
including differing in the *positions* at which observations occur,
since the contract observation of a non-applicable state is the empty
set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.contracts.atoms import ContractAtom
from repro.contracts.compiled import compile_template
from repro.contracts.template import ContractTemplate
from repro.isa.executor import ExecRecord

#: An atom's observation trace: ((step index, observation), ...).
ObservationTrace = Tuple[Tuple[int, Hashable], ...]


def atom_observation_trace(
    atom: ContractAtom, records: Sequence[ExecRecord]
) -> ObservationTrace:
    """The observation sequence of ``CTR_{atom}`` over an execution."""
    return tuple(
        (index, atom.observe(record))
        for index, record in enumerate(records)
        if atom.applies(record)
    )


def _observation_map(
    template: ContractTemplate, records: Sequence[ExecRecord]
) -> Dict[int, List[Tuple[int, Hashable]]]:
    """Per-atom observation traces, computed in one pass.

    Only atoms applicable to each retiring opcode are evaluated
    (``π`` is an opcode test), which keeps full-template evaluation
    linear in ``len(records) * atoms_per_opcode``.
    """
    traces: Dict[int, List[Tuple[int, Hashable]]] = {}
    for index, record in enumerate(records):
        for atom in template.atoms_for_opcode(record.opcode):
            traces.setdefault(atom.atom_id, []).append((index, atom.observe(record)))
    return traces


def contract_observation_trace(
    contract, records: Sequence[ExecRecord], use_fastpath: bool = True
):
    """The leakage trace ``CTR_S(ISA*(σ))`` of a whole contract.

    Returns, per execution step, the frozen set of ``(τ, observation)``
    pairs of the applicable selected atoms — the contract semantics of
    §II-D.  A program handles secrets safely w.r.t. the contract iff
    this trace is identical for all secret values; that is exactly the
    check performed by ``examples/audit_constant_time.py``.

    Routed through the compiled columnar engine by default;
    ``use_fastpath=False`` selects the reference implementation.
    """
    if use_fastpath:
        return compile_template(contract.template).contract_observation_trace(
            contract, records
        )
    return contract_observation_trace_reference(contract, records)


def contract_observation_trace_reference(contract, records: Sequence[ExecRecord]):
    """Reference (per-closure) implementation — the equivalence oracle
    for :meth:`CompiledTemplate.contract_observation_trace`."""
    template = contract.template
    selected = contract.atom_ids
    trace = []
    for record in records:
        observations = frozenset(
            (atom.source, atom.observe(record))
            for atom in template.atoms_for_opcode(record.opcode)
            if atom.atom_id in selected
        )
        trace.append(observations)
    return tuple(trace)


def distinguishing_atoms(
    template: ContractTemplate,
    records_a: Sequence[ExecRecord],
    records_b: Sequence[ExecRecord],
    use_fastpath: bool = True,
) -> FrozenSet[int]:
    """All atoms of ``template`` that distinguish the two executions.

    This is the per-test-case output of the paper's test-case
    evaluation phase (§III-C): ``distinguishing(t) ⊆ T``.

    Routed through the compiled diff-aware merge by default;
    ``use_fastpath=False`` selects the reference implementation.
    """
    if use_fastpath:
        return compile_template(template).distinguishing_atoms(records_a, records_b)
    return distinguishing_atoms_reference(template, records_a, records_b)


def distinguishing_atoms_reference(
    template: ContractTemplate,
    records_a: Sequence[ExecRecord],
    records_b: Sequence[ExecRecord],
) -> FrozenSet[int]:
    """Reference implementation — the equivalence oracle for
    :meth:`CompiledTemplate.distinguishing_atoms`."""
    traces_a = _observation_map(template, records_a)
    traces_b = _observation_map(template, records_b)
    distinguishing = set()
    for atom_id in traces_a.keys() | traces_b.keys():
        if traces_a.get(atom_id, []) != traces_b.get(atom_id, []):
            distinguishing.add(atom_id)
    return frozenset(distinguishing)
