"""Curve data (Figures 2 and 3) with CSV and ASCII rendering.

Also hosts the adaptive-loop convergence curves: per-round atom
coverage and contract size over cumulative evaluated test cases
(:func:`adaptive_round_curves`), consumed by
``AdaptiveResult.curves()`` and the adaptive example/driver plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class Series:
    """One labelled curve: y values over shared x positions."""

    label: str
    points: List[Tuple[float, Optional[float]]]

    @property
    def xs(self) -> List[float]:
        return [x for x, _y in self.points]

    @property
    def ys(self) -> List[Optional[float]]:
        return [y for _x, y in self.points]


def write_csv(path: str, series_list: Sequence[Series]) -> None:
    """Write curves in wide CSV form (x, one column per series)."""
    xs = sorted({x for series in series_list for x in series.xs})
    lookup = [
        {x: y for x, y in series.points}
        for series in series_list
    ]
    with open(path, "w") as stream:
        stream.write(
            "x," + ",".join(series.label for series in series_list) + "\n"
        )
        for x in xs:
            row = ["%g" % x]
            for table in lookup:
                value = table.get(x)
                row.append("" if value is None else "%.6f" % value)
            stream.write(",".join(row) + "\n")


def adaptive_round_curves(records: Sequence) -> List[Series]:
    """Convergence curves of one adaptive run.

    ``records`` are ``repro.adaptive.RoundRecord``-shaped objects (any
    object with ``cumulative_cases``, ``atom_coverage``,
    ``contract_size``, and ``false_positives`` works — the reporting
    layer stays import-independent of the loop).  Three series over
    cumulative evaluated cases: the fraction of targetable atoms
    distinguished so far, the synthesized contract's atom count, and
    its false positives.
    """
    coverage, size, fps = [], [], []
    for record in records:
        x = float(record.cumulative_cases)
        coverage.append((x, record.atom_coverage))
        size.append((x, float(record.contract_size)))
        fps.append((x, float(record.false_positives)))
    return [
        Series("atom-coverage", coverage),
        Series("contract-atoms", size),
        Series("false-positives", fps),
    ]


def render_ascii_chart(
    series_list: Sequence[Series],
    width: int = 70,
    height: int = 16,
    log_x: bool = False,
    y_range: Tuple[float, float] = (0.0, 1.0),
) -> str:
    """A small terminal chart, one glyph per series."""
    glyphs = "*o+x#@"
    y_low, y_high = y_range
    xs = [x for series in series_list for x, y in series.points if y is not None]
    if not xs:
        return "(no data)"
    x_low, x_high = min(xs), max(xs)

    def x_position(x: float) -> int:
        if log_x:
            if x <= 0:
                return 0
            low = math.log10(max(x_low, 1e-9))
            high = math.log10(max(x_high, 1e-9))
        else:
            low, high = x_low, x_high
        span = (high - low) or 1.0
        value = math.log10(x) if log_x else x
        return int(round((value - low) / span * (width - 1)))

    def y_position(y: float) -> int:
        span = (y_high - y_low) or 1.0
        fraction = (y - y_low) / span
        return int(round((1.0 - fraction) * (height - 1)))

    canvas = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        glyph = glyphs[index % len(glyphs)]
        for x, y in series.points:
            if y is None:
                continue
            row = min(max(y_position(y), 0), height - 1)
            column = min(max(x_position(x), 0), width - 1)
            canvas[row][column] = glyph

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = "%.2f" % y_high
        elif row_index == height - 1:
            label = "%.2f" % y_low
        else:
            label = ""
        lines.append("%6s |%s" % (label, "".join(row)))
    lines.append("%6s +%s" % ("", "-" * width))
    lines.append(
        "%6s  %-20s%40s"
        % ("", "%g" % x_low, "%g" % x_high)
    )
    for index, series in enumerate(series_list):
        lines.append(
            "%6s  %s = %s" % ("", glyphs[index % len(glyphs)], series.label)
        )
    return "\n".join(lines)
