"""Contract summary tables in the paper's notation (Tables I and II).

Cells aggregate per-opcode atoms into instruction categories:

- ``•``  every opcode in the category has a selected atom of the family,
- ``•◦`` some opcodes do,
- ``◦``  none do (but atoms of the family would apply),
- ``-``  the family does not apply to the category at all.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

from repro.contracts.atoms import LeakageFamily
from repro.contracts.template import Contract, ContractTemplate
from repro.isa.instructions import InstructionCategory, OPCODE_INFO


class CellMarker(enum.Enum):
    FULL = "•"
    PARTIAL = "•◦"
    NONE = "◦"
    NOT_APPLICABLE = "-"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The table rows of the paper, in order.
TABLE_CATEGORIES: Tuple[Tuple[str, InstructionCategory], ...] = (
    ("Arithmetic instructions", InstructionCategory.ARITHMETIC),
    ("Division, Remainder", InstructionCategory.DIVISION),
    ("Multiplication", InstructionCategory.MULTIPLICATION),
    ("Loads", InstructionCategory.LOAD),
    ("Stores", InstructionCategory.STORE),
    ("Branch instructions", InstructionCategory.BRANCH),
)

#: The table columns, in order.
TABLE_FAMILIES: Tuple[LeakageFamily, ...] = (
    LeakageFamily.IL,
    LeakageFamily.RL,
    LeakageFamily.ML,
    LeakageFamily.AL,
    LeakageFamily.BL,
    LeakageFamily.DL,
)

GridKey = Tuple[InstructionCategory, LeakageFamily]
Grid = Dict[GridKey, CellMarker]


def contract_summary_grid(contract: Contract) -> Grid:
    """Aggregate ``contract`` into the paper's category/family grid."""
    template: ContractTemplate = contract.template
    applicable: Dict[GridKey, set] = {}
    selected: Dict[GridKey, set] = {}
    for atom in template:
        category = OPCODE_INFO[atom.opcode].category
        key = (category, atom.family)
        applicable.setdefault(key, set()).add(atom.opcode)
        if atom.atom_id in contract:
            selected.setdefault(key, set()).add(atom.opcode)

    grid: Grid = {}
    for _label, category in TABLE_CATEGORIES:
        for family in TABLE_FAMILIES:
            key = (category, family)
            applicable_opcodes = applicable.get(key, set())
            if not applicable_opcodes:
                grid[key] = CellMarker.NOT_APPLICABLE
                continue
            covered = selected.get(key, set())
            if not covered:
                grid[key] = CellMarker.NONE
            elif covered == applicable_opcodes:
                grid[key] = CellMarker.FULL
            else:
                grid[key] = CellMarker.PARTIAL
    return grid


def render_contract_table(contract: Contract, title: str = "") -> str:
    """Render the grid as fixed-width text."""
    grid = contract_summary_grid(contract)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "%-26s" % "" + "".join(
        "%6s" % family.name for family in TABLE_FAMILIES
    )
    lines.append(header)
    for label, category in TABLE_CATEGORIES:
        cells = "".join(
            "%6s" % grid[(category, family)].value for family in TABLE_FAMILIES
        )
        lines.append("%-26s%s" % (label, cells))
    lines.append("")
    lines.append("%d atoms selected" % len(contract))
    return "\n".join(lines)


def _paper_grid(rows: Dict[InstructionCategory, str]) -> Grid:
    """Parse a compact per-category marker string into a grid."""
    symbols = {
        "F": CellMarker.FULL,
        "P": CellMarker.PARTIAL,
        "O": CellMarker.NONE,
        "-": CellMarker.NOT_APPLICABLE,
    }
    grid: Grid = {}
    for category, markers in rows.items():
        assert len(markers) == len(TABLE_FAMILIES)
        for family, marker in zip(TABLE_FAMILIES, markers):
            grid[(category, family)] = symbols[marker]
    return grid


#: Table I of the paper (synthesized Ibex contract, 82 atoms).
PAPER_TABLE_1 = _paper_grid(
    {
        InstructionCategory.ARITHMETIC: "PP---P",
        InstructionCategory.DIVISION: "OP---P",
        InstructionCategory.MULTIPLICATION: "PO---F",
        InstructionCategory.LOAD: "POOF-O",
        InstructionCategory.STORE: "POOO-O",
        InstructionCategory.BRANCH: "PO--FO",
    }
)

#: Table II of the paper (synthesized CVA6 contract, 77 atoms).
PAPER_TABLE_2 = _paper_grid(
    {
        InstructionCategory.ARITHMETIC: "PP---P",
        InstructionCategory.DIVISION: "PP---P",
        InstructionCategory.MULTIPLICATION: "OP---P",
        InstructionCategory.LOAD: "POOO-P",
        InstructionCategory.STORE: "OPOO-O",
        InstructionCategory.BRANCH: "OO--FP",
    }
)


def grid_agreement(measured: Grid, reference: Grid) -> Tuple[int, int, List[str]]:
    """Cell-level agreement between a measured grid and the paper's.

    Returns ``(matching cells, total cells, mismatch descriptions)``.
    Cells are compared on the paper's applicable cells only.
    """
    matches = 0
    total = 0
    mismatches: List[str] = []
    for (category, family), expected in reference.items():
        measured_marker = measured.get((category, family), CellMarker.NOT_APPLICABLE)
        total += 1
        if measured_marker is expected:
            matches += 1
        else:
            mismatches.append(
                "%s/%s: measured %s, paper %s"
                % (category.value, family.name, measured_marker.value, expected.value)
            )
    return matches, total, mismatches


def render_comparison_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """A plain aligned text table for cross-configuration comparisons.

    ``headers`` and every row are pre-rendered strings; columns are
    left-aligned and sized to their widest cell.  Campaigns use this to
    compare synthesized contracts across (core x attacker x template x
    solver x budget) cells, but the renderer is deliberately generic.
    """
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                "row has %d cells for %d headers" % (len(row), len(headers))
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
