"""Rendering of contract tables and experiment curves."""

from repro.reporting.tables import (
    CellMarker,
    PAPER_TABLE_1,
    PAPER_TABLE_2,
    TABLE_CATEGORIES,
    contract_summary_grid,
    grid_agreement,
    render_comparison_table,
    render_contract_table,
)
from repro.reporting.curves import Series, render_ascii_chart, write_csv

__all__ = [
    "CellMarker",
    "PAPER_TABLE_1",
    "PAPER_TABLE_2",
    "Series",
    "TABLE_CATEGORIES",
    "contract_summary_grid",
    "grid_agreement",
    "render_ascii_chart",
    "render_comparison_table",
    "render_contract_table",
    "write_csv",
]
