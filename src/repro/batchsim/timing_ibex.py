"""Vectorized Ibex timing: the blocking 2-stage pipeline over all lanes.

The scalar model (:class:`repro.uarch.ibex.IbexCore`) accumulates, per
retirement, ``hazard stall + occupancy + fetch-straddle penalty`` into
a running cycle counter.  That per-record cost is a pure function of
the record's columns, so the whole batch reduces to one masked cost
matrix and a row-wise cumulative sum.  Only the optional data cache is
stateful across retirements; those (extension-config) lanes take a
short per-lane Python walk over their memory operations, replicating
:class:`~repro.uarch.components.cache.DirectMappedCache` inline.

Pinned cycle-identical to ``IbexCore._timing`` by ``tests/batchsim``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.batchsim.decode import (
    IS_BRANCH,
    IS_DIVIDE_QUOTIENT,
    IS_DIVIDE_REMAINDER,
    IS_JUMP,
    IS_LOAD,
    IS_MULTIPLY,
    IS_SHIFT_IMMEDIATE,
    IS_SHIFT_REGISTER,
    IS_SIGNED_DIV,
    IS_STORE,
    MEM_WIDTH,
    N_OPCODES,
    OP_INDEX,
    bit_length,
    magnitude32,
)
from repro.batchsim.engine import BatchExecution
from repro.uarch.ibex import IbexCore, _straddling_indices_cached

NON_FORWARDED = np.zeros(N_OPCODES, dtype=bool)
for _opcode in IbexCore.NON_FORWARDED_CONSUMERS:
    NON_FORWARDED[OP_INDEX[_opcode]] = True
del _opcode


def _multiplier_cycles(config) -> np.ndarray:
    table = np.ones(N_OPCODES, dtype=np.int64)
    for opcode, cycles in config.multiplier.cycles_by_opcode.items():
        table[OP_INDEX[opcode]] = cycles
    return table


def ibex_timing(
    core: IbexCore, execution: BatchExecution
) -> Tuple[np.ndarray, np.ndarray, List[dict]]:
    """Per-lane retirement cycles, total cycles, and uarch states.

    Returns ``(retire [lanes, steps], total [lanes], uarch_states)``;
    retire values past ``execution.counts[lane]`` are meaningless.
    """
    config = core.config
    lanes = execution.lanes
    steps = execution.steps
    counts = execution.counts
    uarch_states: List[dict] = [{} for _ in range(lanes)]
    if steps == 0:
        if config.dcache:
            reset_tags = (None,) * config.dcache_line_count
            uarch_states = [{"dcache_tags": reset_tags} for _ in range(lanes)]
        return (
            np.zeros((lanes, 0), dtype=np.int64),
            np.full(lanes, 2, dtype=np.int64),
            uarch_states,
        )

    op = execution.op
    valid = np.arange(steps) < counts[:, None]

    # Base occupancy: one cycle unless a handler applies.
    occupancy = np.ones((lanes, steps), dtype=np.int64)

    mask = IS_SHIFT_IMMEDIATE[op]
    if mask.any():
        amount = execution.imm[mask] & 0x1F
        occupancy[mask] = 1 + amount // config.shifter.step
    mask = IS_SHIFT_REGISTER[op]
    if mask.any():
        amount = execution.rs2_value[mask] & 0x1F
        occupancy[mask] = 1 + amount // config.shifter.step
    mask = IS_MULTIPLY[op]
    if mask.any():
        occupancy[mask] = _multiplier_cycles(config)[op[mask]]
    mask = IS_DIVIDE_QUOTIENT[op]
    if mask.any():
        divider = config.divider
        signed = IS_SIGNED_DIV[op[mask]]
        dividend = magnitude32(execution.rs1_value[mask], signed)
        divisor = magnitude32(execution.rs2_value[mask], signed)
        latency = divider.base_cycles + bit_length(dividend) - bit_length(divisor) + 1
        latency = np.where(dividend < divisor, divider.trivial_cycles, latency)
        occupancy[mask] = np.where(divisor == 0, divider.zero_cycles, latency)
    mask = IS_DIVIDE_REMAINDER[op]
    if mask.any():
        occupancy[mask] = config.remainder_divider.cycles
    mask = IS_STORE[op]
    if mask.any():
        occupancy[mask] = 1 + config.memory_port.store_cycles
    load_mask = IS_LOAD[op]
    if load_mask.any() and not config.dcache:
        address = execution.mem_read_addr[load_mask]
        crosses = (address & 0x3) + MEM_WIDTH[op[load_mask]] > 4
        occupancy[load_mask] = 1 + config.memory_port.cycles_per_transaction * (
            1 + crosses
        )
    mask = IS_BRANCH[op]
    if mask.any():
        occupancy[mask] = 1 + execution.branch_taken[mask] * (
            config.taken_branch_penalty
        )
    mask = IS_JUMP[op]
    if mask.any():
        occupancy[mask] = 1 + config.jump_penalty

    if config.dcache:
        _dcache_pass(config, execution, valid, occupancy, uarch_states)

    cost = occupancy
    hazard = NON_FORWARDED[op] & (
        (execution.raw_rs1_dist == 1) | (execution.raw_rs2_dist == 1)
    )
    cost += hazard * config.hazard_stall_cycles

    if config.compressed_fetch:
        penalty = config.fetch_straddle_penalty
        for lane in range(lanes):
            straddlers = _straddling_indices_cached(execution.programs[lane])
            if not straddlers:
                continue
            count = int(counts[lane])
            row = execution.pidx[lane, :count]
            cost[lane, :count] += penalty * np.isin(
                row, np.fromiter(straddlers, dtype=np.int64, count=len(straddlers))
            )

    cost = np.where(valid, cost, 0)
    retire = 1 + np.cumsum(cost, axis=1)
    total = 2 + cost.sum(axis=1)
    return retire, total, uarch_states


def _dcache_pass(config, execution, valid, occupancy, uarch_states) -> None:
    """Stateful per-lane cache walk (extension configs only).

    Replays every lane's loads *and* stores in retirement order against
    a private tag array, overwriting load occupancies with the scalar
    model's ``1 + sum(access(...))`` and publishing the final tags —
    including for lanes that never touch memory (their state is the
    all-``None`` reset array, exactly what ``DirectMappedCache`` of an
    untouched core reports).
    """
    line_size = config.dcache_line_size
    line_count = config.dcache_line_count
    hit_cycles = config.dcache_hit_cycles
    miss_cycles = config.dcache_miss_cycles
    cycles_per_transaction = config.memory_port.cycles_per_transaction
    memory_mask = valid & (IS_LOAD[execution.op] | IS_STORE[execution.op])
    lanes_with_memory, step_of = np.nonzero(memory_mask)
    from repro.metrics.registry import current_metrics

    current_metrics().counter("batchsim.fallback.dcache_ops").inc(
        lanes_with_memory.size
    )
    per_lane: Dict[int, List[Tuple[int, int]]] = {}
    for lane, step in zip(lanes_with_memory.tolist(), step_of.tolist()):
        per_lane.setdefault(lane, []).append(step)

    for lane in range(execution.lanes):
        tags: List = [None] * line_count

        def access(address: int) -> int:
            line_address = address // line_size
            index = line_address % line_count
            tag = line_address // line_count
            if tags[index] == tag:
                return hit_cycles
            tags[index] = tag
            return miss_cycles

        for step in per_lane.get(lane, ()):
            opcode_index = int(execution.op[lane, step])
            if IS_LOAD[opcode_index]:
                address = int(execution.mem_read_addr[lane, step])
                width = int(MEM_WIDTH[opcode_index])
                transactions = 2 if (address & 0x3) + width > 4 else 1
                occupancy[lane, step] = 1 + sum(
                    access((address & ~0x3) + 4 * i) for i in range(transactions)
                )
            else:
                access(int(execution.mem_write_addr[lane, step]) & ~0x3)
        uarch_states[lane] = {"dcache_tags": tuple(tags)}
