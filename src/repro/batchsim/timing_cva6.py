"""Vectorized CVA6 timing: the scoreboarded 6-stage pipeline, lock-step.

The scalar model (:class:`repro.uarch.cva6.CVA6Core`) threads mutable
state — operand ready cycles, unit busy times, predictor tables, the
commit port — through a per-record loop.  Here every piece of that
state becomes a per-lane array and the loop runs over *steps* (program
positions, typically < 10) instead of ``lanes * steps`` records: each
iteration advances all lanes' scoreboards with a fixed number of numpy
operations.

Execution-unit latencies are value-dependent but stateless, so they
are precomputed for the whole batch before the lock-step walk.

Pinned cycle-identical to ``CVA6Core._timing`` by ``tests/batchsim``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.batchsim.decode import (
    HAS_RD,
    HAS_RS1,
    HAS_RS2,
    IS_BRANCH,
    IS_DIVIDE,
    IS_LOAD,
    IS_MULTIPLY,
    IS_SHIFT_IMMEDIATE,
    IS_SHIFT_REGISTER,
    IS_SIGNED_DIV,
    IS_STORE,
    JAL_INDEX,
    JALR_INDEX,
    N_OPCODES,
    bit_length,
    magnitude32,
)
from repro.batchsim.engine import BatchExecution
from repro.uarch.cva6 import CVA6Core

#: Dense execution-unit ids: 0 alu, 1 mul, 2 div, 3 lsu.
N_UNITS = 4
CVA6_UNIT = np.zeros(N_OPCODES, dtype=np.int64)
CVA6_UNIT[IS_MULTIPLY] = 1
CVA6_UNIT[IS_DIVIDE] = 2
CVA6_UNIT[IS_LOAD | IS_STORE] = 3


def _exec_latencies(config, execution: BatchExecution) -> np.ndarray:
    """The ``[lanes, steps]`` value-dependent execution latencies."""
    op = execution.op
    latency = np.ones(op.shape, dtype=np.int64)
    step = config.shifter.step
    mask = IS_SHIFT_IMMEDIATE[op]
    if mask.any():
        latency[mask] = 1 + (execution.imm[mask] & 0x1F) // step
    mask = IS_SHIFT_REGISTER[op]
    if mask.any():
        latency[mask] = 1 + (execution.rs2_value[mask] & 0x1F) // step
    mask = IS_MULTIPLY[op]
    if mask.any():
        zero = (execution.rs1_value[mask] == 0) | (execution.rs2_value[mask] == 0)
        latency[mask] = np.where(
            zero, config.multiplier.zero_cycles, config.multiplier.cycles
        )
    mask = IS_DIVIDE[op]
    if mask.any():
        divider = config.divider
        signed = IS_SIGNED_DIV[op[mask]]
        dividend = magnitude32(execution.rs1_value[mask], signed)
        divisor = magnitude32(execution.rs2_value[mask], signed)
        cycles = divider.base_cycles + bit_length(dividend) - bit_length(divisor) + 1
        cycles = np.where(dividend < divisor, divider.trivial_cycles, cycles)
        latency[mask] = np.where(divisor == 0, divider.zero_cycles, cycles)
    mask = IS_LOAD[op]
    if mask.any():
        latency[mask] = config.memory_port.load_cycles
    mask = IS_STORE[op]
    if mask.any():
        latency[mask] = config.memory_port.store_cycles
    return latency


def cva6_timing(
    core: CVA6Core, execution: BatchExecution
) -> Tuple[np.ndarray, np.ndarray, List[dict]]:
    """Per-lane retirement cycles, total cycles, and uarch states.

    Returns ``(retire [lanes, steps], total [lanes], uarch_states)``;
    retire values past ``execution.counts[lane]`` are meaningless.
    """
    config = core.config
    lanes = execution.lanes
    steps = execution.steps
    counts = execution.counts
    uarch_states: List[dict] = [{} for _ in range(lanes)]
    retire = np.zeros((lanes, steps), dtype=np.int64)
    commit_cycle = np.zeros(lanes, dtype=np.int64)
    if steps == 0:
        return retire, commit_cycle + 1, uarch_states

    latency = _exec_latencies(config, execution)
    frontend = config.frontend_depth
    commit_width = config.commit_width
    redirect = config.decode_redirect_penalty
    entries = config.predictor_entries
    predictor = core._predictor
    counter_max = predictor.COUNTER_MAX
    taken_threshold = predictor.TAKEN_THRESHOLD

    ready = np.zeros((lanes, 32), dtype=np.int64)
    unit_free = np.zeros((lanes, N_UNITS), dtype=np.int64)
    next_fetch = np.zeros(lanes, dtype=np.int64)
    prev_issue = np.full(lanes, -1, dtype=np.int64)
    commit_slots_used = np.full(lanes, commit_width, dtype=np.int64)
    counters = np.full((lanes, entries), predictor.initial_counter, dtype=np.int64)
    btb_tags = np.full((lanes, entries), -1, dtype=np.int64)
    btb_targets = np.zeros((lanes, entries), dtype=np.int64)

    for step in range(steps):
        lane_index = np.nonzero(step < counts)[0]
        op = execution.op[lane_index, step]
        rd = execution.rd[lane_index, step]
        rs1 = execution.rs1[lane_index, step]
        rs2 = execution.rs2[lane_index, step]
        pc = execution.pc[lane_index, step]
        next_pc = execution.next_pc[lane_index, step]
        taken = execution.branch_taken[lane_index, step] != 0

        fetch = next_fetch[lane_index]
        fetch_next = fetch + 1

        issue = np.maximum(fetch + frontend, prev_issue[lane_index] + 1)
        wait = np.where(HAS_RS1[op] & (rs1 != 0), ready[lane_index, rs1], 0)
        wait = np.maximum(
            wait, np.where(HAS_RS2[op] & (rs2 != 0), ready[lane_index, rs2], 0)
        )
        issue = np.where(IS_STORE[op], issue, np.maximum(issue, wait))
        unit = CVA6_UNIT[op]
        issue = np.maximum(issue, unit_free[lane_index, unit])
        prev_issue[lane_index] = issue

        done = issue + latency[lane_index, step]
        unit_free[lane_index, unit] = done
        writes = HAS_RD[op] & (rd != 0)
        ready[lane_index[writes], rd[writes]] = done[writes]

        # Control flow: branch/JALR prediction, JAL decode redirect.
        is_branch = IS_BRANCH[op]
        is_jal = op == JAL_INDEX
        is_jalr = op == JALR_INDEX
        index = (pc >> 2) & (entries - 1)
        counter = counters[lane_index, index]
        tag = btb_tags[lane_index, index]
        target = btb_targets[lane_index, index]
        predicted_taken = (counter >= taken_threshold) & (tag == pc)
        mispredicted = (predicted_taken != taken) | (
            predicted_taken & (target != next_pc)
        )
        fetch_next = np.where(
            is_branch, np.where(mispredicted, done + 1, fetch_next), fetch_next
        )
        fetch_next = np.where(is_jal, fetch + 1 + redirect, fetch_next)
        jalr_hit = predicted_taken & (target == next_pc)
        fetch_next = np.where(
            is_jalr, np.where(jalr_hit, fetch + 1, done + 1), fetch_next
        )
        updates = is_branch | is_jalr
        update_taken = (is_branch & taken) | is_jalr
        new_counter = np.where(
            update_taken,
            np.minimum(counter_max, counter + 1),
            np.maximum(0, counter - 1),
        )
        counters[lane_index[updates], index[updates]] = new_counter[updates]
        fills = updates & update_taken
        btb_tags[lane_index[fills], index[fills]] = pc[fills]
        btb_targets[lane_index[fills], index[fills]] = next_pc[fills]
        next_fetch[lane_index] = fetch_next

        # Commit port: up to commit_width retirements per cycle.
        commit = np.maximum(done + 1, commit_cycle[lane_index])
        commit += (commit == commit_cycle[lane_index]) & (
            commit_slots_used[lane_index] >= commit_width
        )
        advanced = commit > commit_cycle[lane_index]
        commit_cycle[lane_index] = np.where(
            advanced, commit, commit_cycle[lane_index]
        )
        commit_slots_used[lane_index] = (
            np.where(advanced, 0, commit_slots_used[lane_index]) + 1
        )
        retire[lane_index, step] = commit

    return retire, commit_cycle + 1, uarch_states
